//! The fleet front: a thin HTTP proxy that spreads `/v1/*` traffic over
//! the live worker set with rendezvous hashing.
//!
//! Request affinity is the point, not just balance. The routing key is the
//! request's `(path, body)` bytes — the same bytes af-serve's tier-B
//! response cache keys on — so identical requests always land on the same
//! worker and hit *that worker's* cache. The worker ring is therefore a
//! consistent-hash tier over the per-worker response caches: adding or
//! removing one worker remaps only that worker's key share (the af-cache
//! `Ring` property), leaving every other worker's warm entries warm.
//!
//! Failures take one extra hop: if the first-ranked worker is unreachable
//! or answers 503, the front retries the second-ranked replica, then gives
//! up with 502. Async route jobs (`POST /v1/route` → 202 + job id) get a
//! front-global id so `GET /v1/jobs/{id}` can be answered later even
//! though job ids are worker-local.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use af_cache::Ring;
use af_serve::http::{read_request, ParseError, Request, Response};
use serde::{Serialize, Value};

use crate::client::{get_json, HttpConn, RawResponse};
use crate::protocol::WorkersResponse;
use crate::FleetError;

/// Front settings.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Bind address (`host:port`; port 0 for ephemeral).
    pub addr: String,
    /// Coordinator address the worker set is polled from.
    pub coordinator: String,
    /// Worker-set refresh interval.
    pub refresh_ms: u64,
}

impl Default for FrontConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            coordinator: String::new(),
            refresh_ms: 500,
        }
    }
}

/// The ring plus the id→addr map it routes to, swapped atomically on each
/// refresh so in-flight requests always see a coherent pair.
#[derive(Default)]
struct RingState {
    ring: Ring,
    addrs: HashMap<String, String>,
    model_hash: String,
}

struct FrontShared {
    coordinator: String,
    ring: RwLock<RingState>,
    /// Front-global job id → (worker id, worker-local job id).
    jobs: Mutex<HashMap<u64, (String, u64)>>,
    next_job: AtomicU64,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    started: Instant,
}

/// Front constructor; see [`Front::bind`].
pub struct Front;

/// A running front.
pub struct FrontHandle {
    shared: Arc<FrontShared>,
    accept: Option<thread::JoinHandle<()>>,
    refresher: Option<thread::JoinHandle<()>>,
}

impl Front {
    /// Binds the front and starts the worker-set refresher. The first
    /// refresh is synchronous so a front that returns from `bind` can
    /// already route (an empty fleet still binds — requests get 503 until
    /// workers appear).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(cfg: FrontConfig) -> Result<FrontHandle, FleetError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(FrontShared {
            coordinator: cfg.coordinator.clone(),
            ring: RwLock::new(RingState::default()),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            addr,
            started: Instant::now(),
        });
        refresh_ring(&shared);

        let refresher = {
            let shared = Arc::clone(&shared);
            let interval = Duration::from_millis(cfg.refresh_ms.max(50));
            thread::Builder::new()
                .name("fleet-front-refresh".to_string())
                .spawn(move || {
                    while !shared.shutting_down.load(Ordering::SeqCst) {
                        thread::sleep(interval);
                        refresh_ring(&shared);
                    }
                })
                .expect("spawn front refresher")
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fleet-front-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        let shared = Arc::clone(&shared);
                        let _ = thread::Builder::new()
                            .name("fleet-front-conn".to_string())
                            .spawn(move || handle_connection(&shared, stream));
                    }
                })
                .expect("spawn front accept")
        };
        Ok(FrontHandle {
            shared,
            accept: Some(accept),
            refresher: Some(refresher),
        })
    }
}

impl FrontHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live serve-capable workers in the current ring view.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.shared
            .ring
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .len()
    }

    /// Initiates shutdown without waiting.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Blocks until the front shuts down — via [`shutdown`] or a
    /// `POST /v1/shutdown` — and joins the accept + refresher threads.
    ///
    /// [`shutdown`]: FrontHandle::shutdown
    pub fn join(mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        if let Some(r) = self.refresher.take() {
            let _ = r.join();
        }
    }
}

/// Polls the coordinator and rebuilds the ring from live, serve-capable,
/// non-skewed workers. A poll failure keeps the previous view — a stale
/// ring routes traffic better than an empty one while the coordinator
/// restarts.
fn refresh_ring(shared: &FrontShared) {
    let resp: Result<WorkersResponse, FleetError> = get_json(&shared.coordinator, "/fleet/workers");
    let Ok(view) = resp else {
        af_obs::counter("fleet.front.refresh_failures", 1);
        return;
    };
    let eligible: Vec<_> = view
        .workers
        .iter()
        .filter(|w| w.caps.serve && !w.skew && !w.addr.is_empty())
        .collect();
    let next = RingState {
        ring: Ring::new(eligible.iter().map(|w| w.id.as_str())),
        addrs: eligible
            .iter()
            .map(|w| (w.id.clone(), w.addr.clone()))
            .collect(),
        model_hash: view.model_hash,
    };
    af_obs::gauge("fleet.front.ring_size", next.ring.len() as f64);
    *shared
        .ring
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = next;
}

fn handle_connection(shared: &FrontShared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    // Per-connection pool of keep-alive upstream connections, keyed by
    // worker address. Thread-per-connection makes this contention-free.
    let mut pool: HashMap<String, HttpConn> = HashMap::new();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(ParseError::Bad(msg)) => {
                let _ = Response::error(400, &msg).with_close().write_to(&mut out);
                return;
            }
            Err(ParseError::TooLarge(msg)) => {
                let _ = Response::error(413, &msg).with_close().write_to(&mut out);
                return;
            }
            Err(ParseError::Io(_)) => return,
        };
        let close = req.wants_close();
        let mut resp = dispatch(shared, &req, &mut pool);
        if close {
            resp = resp.with_close();
        }
        if resp.write_to(&mut out).is_err() || resp.close {
            return;
        }
    }
}

/// `GET /healthz` reply of a front.
#[derive(Debug, Clone, Serialize)]
struct FrontHealth {
    ok: bool,
    role: String,
    uptime_ms: u64,
    workers: u64,
    model_hash: String,
    build: String,
}

fn dispatch(shared: &FrontShared, req: &Request, pool: &mut HashMap<String, HttpConn>) -> Response {
    af_obs::counter("fleet.front.requests", 1);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let (workers, model_hash) = {
                let r = shared
                    .ring
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                (r.ring.len() as u64, r.model_hash.clone())
            };
            json_or_500(
                200,
                &FrontHealth {
                    ok: true,
                    role: "front".to_string(),
                    uptime_ms: shared.started.elapsed().as_millis() as u64,
                    workers,
                    model_hash,
                    build: env!("CARGO_PKG_VERSION").to_string(),
                },
            )
        }
        ("GET", "/metrics") => Response::text(200, &af_serve::metrics::render_metrics()),
        ("POST", "/v1/shutdown") => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            Response::json(200, "{\"ok\":true}".to_string()).with_close()
        }
        ("POST", "/v1/route") => submit_job(shared, req, pool),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_status(shared, path, pool),
        ("POST", path) if path.starts_with("/v1/") => forward_hashed(shared, req, pool),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn json_or_500<T: Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

/// The two routing candidates for a request key: the rendezvous winner and
/// its first replica.
fn candidates(shared: &FrontShared, key: &[u8]) -> Vec<(String, String)> {
    let state = shared
        .ring
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    state
        .ring
        .ranked(key, 2)
        .into_iter()
        .filter_map(|id| {
            state
                .addrs
                .get(id)
                .map(|addr| (id.to_string(), addr.clone()))
        })
        .collect()
}

/// Sends `req` to `addr`, reusing a pooled keep-alive connection when one
/// exists. A pooled connection that fails is dropped and retried once on a
/// fresh connection — distinguishing "idle connection died" (normal) from
/// "worker is down" (the caller's replica logic handles that).
fn send_to(
    pool: &mut HashMap<String, HttpConn>,
    addr: &str,
    req: &Request,
) -> std::io::Result<RawResponse> {
    if let Some(conn) = pool.get_mut(addr) {
        match conn.call(&req.method, &req.path, &[], &req.body) {
            Ok(resp) => {
                if resp.close {
                    pool.remove(addr);
                }
                return Ok(resp);
            }
            Err(_) => {
                pool.remove(addr);
            }
        }
    }
    let mut conn = HttpConn::connect(addr)?;
    let resp = conn.call(&req.method, &req.path, &[], &req.body)?;
    if !resp.close {
        pool.insert(addr.to_string(), conn);
    }
    Ok(resp)
}

/// Converts an upstream response into a downstream one, relaying status,
/// body, cache markers, and stamping which worker answered.
fn relay(upstream: RawResponse, worker: &str) -> Response {
    let body = String::from_utf8_lossy(&upstream.body).into_owned();
    let text_type = upstream
        .header("content-type")
        .is_some_and(|t| t.starts_with("text/"));
    let mut resp = if text_type {
        Response::text(upstream.status, &body)
    } else {
        Response::json(upstream.status, body)
    };
    if let Some(v) = upstream.header("x-cache") {
        resp = resp.with_header("x-cache", v.to_string());
    }
    if let Some(v) = upstream.header("retry-after") {
        resp = resp.with_header("retry-after", v.to_string());
    }
    resp.with_header("x-fleet-worker", worker.to_string())
}

/// Routes a cacheable `/v1/*` request by content key with one replica
/// retry. 503 from the winner (shutting down, queue full is 429 and NOT
/// retried — the replica would only melt too) also fails over.
fn forward_hashed(
    shared: &FrontShared,
    req: &Request,
    pool: &mut HashMap<String, HttpConn>,
) -> Response {
    let mut key = Vec::with_capacity(req.path.len() + 1 + req.body.len());
    key.extend_from_slice(req.path.as_bytes());
    key.push(0);
    key.extend_from_slice(&req.body);
    let ranked = candidates(shared, &key);
    if ranked.is_empty() {
        return Response::error(503, "no live workers in the fleet");
    }
    for (i, (id, addr)) in ranked.iter().enumerate() {
        match send_to(pool, addr, req) {
            Ok(resp) if resp.status == 503 && i + 1 < ranked.len() => {
                af_obs::counter("fleet.front.failovers", 1);
            }
            Ok(resp) => {
                if i > 0 {
                    af_obs::counter("fleet.front.replica_hits", 1);
                }
                return relay(resp, id);
            }
            Err(_) => {
                af_obs::counter("fleet.front.worker_errors", 1);
            }
        }
    }
    Response::error(502, "all replicas for this key are unreachable")
}

/// `POST /v1/route`: forward like any hashed request, but when the worker
/// answers 202 with a worker-local job id, allocate a front-global id and
/// remember the mapping so the job can be polled through this front.
fn submit_job(
    shared: &FrontShared,
    req: &Request,
    pool: &mut HashMap<String, HttpConn>,
) -> Response {
    let mut key = Vec::with_capacity(req.path.len() + 1 + req.body.len());
    key.extend_from_slice(req.path.as_bytes());
    key.push(0);
    key.extend_from_slice(&req.body);
    let ranked = candidates(shared, &key);
    if ranked.is_empty() {
        return Response::error(503, "no live workers in the fleet");
    }
    for (id, addr) in &ranked {
        match send_to(pool, addr, req) {
            Ok(resp) if resp.status == 202 => {
                return match rewrite_job_id(shared, id, &resp.body) {
                    Some(body) => relay(
                        RawResponse {
                            body: body.into_bytes(),
                            ..resp
                        },
                        id,
                    ),
                    None => Response::error(502, "worker returned an unintelligible job ticket"),
                };
            }
            Ok(resp) if resp.status == 503 => {
                af_obs::counter("fleet.front.failovers", 1);
            }
            Ok(resp) => return relay(resp, id),
            Err(_) => {
                af_obs::counter("fleet.front.worker_errors", 1);
            }
        }
    }
    Response::error(502, "all replicas for this key are unreachable")
}

/// Swaps the worker-local `id` in a 202 body for a freshly allocated
/// front-global one and records the mapping.
fn rewrite_job_id(shared: &FrontShared, worker: &str, body: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let mut value = serde_json::value_from_str(text).ok()?;
    let local = match value.get("id") {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) if *i >= 0 => *i as u64,
        _ => return None,
    };
    let global = shared.next_job.fetch_add(1, Ordering::Relaxed);
    shared
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(global, (worker.to_string(), local));
    af_obs::counter("fleet.front.jobs_mapped", 1);
    if let Value::Map(pairs) = &mut value {
        for (k, v) in pairs.iter_mut() {
            if k == "id" {
                *v = Value::UInt(global);
            }
        }
    }
    serde_json::to_string(&value).ok()
}

/// `GET /v1/jobs/{global}`: translate back to the owning worker's local id
/// and proxy the poll there. Job state is worker-resident, so there is no
/// replica to fail over to — a dead worker means the job is gone (410).
fn job_status(shared: &FrontShared, path: &str, pool: &mut HashMap<String, HttpConn>) -> Response {
    let id_text = &path["/v1/jobs/".len()..];
    let Ok(global) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("bad job id {id_text:?}"));
    };
    let Some((worker, local)) = shared
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&global)
        .cloned()
    else {
        return Response::error(404, &format!("no job {global}"));
    };
    let addr = {
        let state = shared
            .ring
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.addrs.get(&worker).cloned()
    };
    let Some(addr) = addr else {
        return Response::error(
            410,
            &format!("worker {worker} holding job {global} is gone"),
        );
    };
    let upstream = Request {
        method: "GET".to_string(),
        path: format!("/v1/jobs/{local}"),
        headers: Vec::new(),
        body: Vec::new(),
    };
    match send_to(pool, &addr, &upstream) {
        Ok(resp) => relay(resp, &worker),
        Err(_) => Response::error(502, &format!("worker {worker} unreachable")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_for_test() -> FrontShared {
        FrontShared {
            coordinator: String::new(),
            ring: RwLock::new(RingState::default()),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            addr: "127.0.0.1:0".parse().unwrap(),
            started: Instant::now(),
        }
    }

    #[test]
    fn job_id_rewrite_allocates_and_maps() {
        let shared = shared_for_test();
        let out = rewrite_job_id(&shared, "w7", br#"{"id":3,"status":"queued"}"#).unwrap();
        assert!(out.contains("\"id\":1"), "{out}");
        assert!(out.contains("queued"));
        let jobs = shared.jobs.lock().unwrap();
        assert_eq!(jobs.get(&1), Some(&("w7".to_string(), 3)));
    }

    #[test]
    fn job_id_rewrite_rejects_garbage() {
        let shared = shared_for_test();
        assert!(rewrite_job_id(&shared, "w", b"not json").is_none());
        assert!(rewrite_job_id(&shared, "w", br#"{"status":"queued"}"#).is_none());
        assert!(rewrite_job_id(&shared, "w", br#"{"id":"three"}"#).is_none());
    }

    #[test]
    fn candidates_follow_ring_membership() {
        let shared = shared_for_test();
        {
            let mut state = shared.ring.write().unwrap();
            state.ring = Ring::new(["w1", "w2", "w3"]);
            state.addrs = [
                ("w1".to_string(), "127.0.0.1:1".to_string()),
                ("w2".to_string(), "127.0.0.1:2".to_string()),
                ("w3".to_string(), "127.0.0.1:3".to_string()),
            ]
            .into_iter()
            .collect();
        }
        let c = candidates(&shared, b"some-key");
        assert_eq!(c.len(), 2);
        assert_ne!(c[0].0, c[1].0, "winner and replica differ");
        // A worker whose addr vanished is skipped rather than dialed blind.
        shared.ring.write().unwrap().addrs.remove(&c[0].0);
        let c2 = candidates(&shared, b"some-key");
        assert_eq!(c2.len(), 1);
    }
}
