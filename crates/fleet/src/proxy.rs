//! The fleet front: a thin HTTP proxy that spreads `/v1/*` traffic over
//! the live worker set with rendezvous hashing.
//!
//! Request affinity is the point, not just balance. The routing key is the
//! request's `(path, body)` bytes — the same bytes af-serve's tier-B
//! response cache keys on — so identical requests always land on the same
//! worker and hit *that worker's* cache. The worker ring is therefore a
//! consistent-hash tier over the per-worker response caches: adding or
//! removing one worker remaps only that worker's key share (the af-cache
//! `Ring` property), leaving every other worker's warm entries warm.
//!
//! Three af-guard policies ride on top of the plain ring:
//!
//! * **Deadline propagation** — a client `x-deadline-ms` header is parsed
//!   once into an absolute budget; the *remaining* budget is recomputed and
//!   forwarded on every upstream hop, and an already-expired request is
//!   shed with `408` before any worker is dialed.
//! * **Circuit breakers** — each worker has a rolling-outcome breaker; a
//!   tripped worker is excluded from candidate selection exactly like a
//!   worker whose lease expired, until half-open probes heal it.
//! * **Hedged requests** — idempotent `/v1/*` forwards race a delayed
//!   duplicate on the next-ranked worker once the primary has been in
//!   flight past the hedge delay, under a token-bucket budget. The winner
//!   is stamped `x-hedged` when the duplicate answered first.
//!
//! Failures take one extra hop: if the first-ranked worker is unreachable
//! or answers 503, the front retries the second-ranked replica. Worker
//! backpressure (`429`, and a final `503`) is relayed verbatim — including
//! `Retry-After` — never converted into a bare 502. Async route jobs
//! (`POST /v1/route` → 202 + job id) get a front-global id so
//! `GET /v1/jobs/{id}` can be answered later even though job ids are
//! worker-local.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use af_cache::Ring;
use af_guard::{
    BreakerConfig, BreakerSet, BreakerStatus, Deadline, HedgeConfig, HedgeStats, Hedger,
    DEADLINE_HEADER, HEDGED_HEADER,
};
use af_serve::http::{read_request, ParseError, Request, Response};
use serde::{Serialize, Value};

use crate::client::{get_json, HttpConn, RawResponse};
use crate::protocol::WorkersResponse;
use crate::FleetError;

/// Front settings.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Bind address (`host:port`; port 0 for ephemeral).
    pub addr: String,
    /// Coordinator address the worker set is polled from.
    pub coordinator: String,
    /// Worker-set refresh interval.
    pub refresh_ms: u64,
    /// Upper clamp on client-supplied `x-deadline-ms` budgets, in
    /// milliseconds (`0` disables the clamp).
    pub deadline_max_ms: u64,
    /// Hedged-request tuning for idempotent `/v1/*` forwards.
    pub hedge: HedgeConfig,
    /// Per-worker circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Master switch for the breakers; `false` installs an untrippable set
    /// (hedging still works — benchmark passes use exactly that split).
    pub breaker_enabled: bool,
}

impl Default for FrontConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            coordinator: String::new(),
            refresh_ms: 500,
            deadline_max_ms: 600_000,
            hedge: HedgeConfig::default(),
            breaker: BreakerConfig::default(),
            breaker_enabled: true,
        }
    }
}

/// The ring plus the id→addr map it routes to, swapped atomically on each
/// refresh so in-flight requests always see a coherent pair.
#[derive(Default)]
struct RingState {
    ring: Ring,
    addrs: HashMap<String, String>,
    model_hash: String,
}

struct FrontShared {
    coordinator: String,
    ring: RwLock<RingState>,
    /// Front-global job id → (worker id, worker-local job id).
    jobs: Mutex<HashMap<u64, (String, u64)>>,
    next_job: AtomicU64,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    started: Instant,
    breakers: BreakerSet,
    hedger: Hedger,
    deadline_max_ms: u64,
}

/// Front constructor; see [`Front::bind`].
pub struct Front;

/// A running front.
pub struct FrontHandle {
    shared: Arc<FrontShared>,
    accept: Option<thread::JoinHandle<()>>,
    refresher: Option<thread::JoinHandle<()>>,
}

impl Front {
    /// Binds the front and starts the worker-set refresher. The first
    /// refresh is synchronous so a front that returns from `bind` can
    /// already route (an empty fleet still binds — requests get 503 until
    /// workers appear).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(cfg: FrontConfig) -> Result<FrontHandle, FleetError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let breakers = if cfg.breaker_enabled {
            BreakerSet::new(cfg.breaker.clone())
        } else {
            BreakerSet::disabled()
        };
        let shared = Arc::new(FrontShared {
            coordinator: cfg.coordinator.clone(),
            ring: RwLock::new(RingState::default()),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            addr,
            started: Instant::now(),
            breakers,
            hedger: Hedger::new(cfg.hedge.clone()),
            deadline_max_ms: cfg.deadline_max_ms,
        });
        refresh_ring(&shared);

        let refresher = {
            let shared = Arc::clone(&shared);
            let interval = Duration::from_millis(cfg.refresh_ms.max(50));
            thread::Builder::new()
                .name("fleet-front-refresh".to_string())
                .spawn(move || {
                    while !shared.shutting_down.load(Ordering::SeqCst) {
                        thread::sleep(interval);
                        refresh_ring(&shared);
                    }
                })
                .expect("spawn front refresher")
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fleet-front-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        let shared = Arc::clone(&shared);
                        let _ = thread::Builder::new()
                            .name("fleet-front-conn".to_string())
                            .spawn(move || handle_connection(&shared, stream));
                    }
                })
                .expect("spawn front accept")
        };
        Ok(FrontHandle {
            shared,
            accept: Some(accept),
            refresher: Some(refresher),
        })
    }
}

impl FrontHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live serve-capable workers in the current ring view.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.shared
            .ring
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .len()
    }

    /// Hedge accounting (issued / wins / suppressed) since the front bound.
    #[must_use]
    pub fn hedge_stats(&self) -> HedgeStats {
        self.shared.hedger.stats()
    }

    /// Point-in-time breaker state for every worker this front has dialed.
    #[must_use]
    pub fn breakers(&self) -> Vec<BreakerStatus> {
        self.shared.breakers.snapshot()
    }

    /// Initiates shutdown without waiting.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Blocks until the front shuts down — via [`shutdown`] or a
    /// `POST /v1/shutdown` — and joins the accept + refresher threads.
    ///
    /// [`shutdown`]: FrontHandle::shutdown
    pub fn join(mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        if let Some(r) = self.refresher.take() {
            let _ = r.join();
        }
    }
}

/// Polls the coordinator and rebuilds the ring from live, serve-capable,
/// non-skewed workers. A poll failure keeps the previous view — a stale
/// ring routes traffic better than an empty one while the coordinator
/// restarts.
fn refresh_ring(shared: &FrontShared) {
    let resp: Result<WorkersResponse, FleetError> = get_json(&shared.coordinator, "/fleet/workers");
    let Ok(view) = resp else {
        af_obs::counter("fleet.front.refresh_failures", 1);
        return;
    };
    let eligible: Vec<_> = view
        .workers
        .iter()
        .filter(|w| w.caps.serve && !w.skew && !w.addr.is_empty())
        .collect();
    let next = RingState {
        ring: Ring::new(eligible.iter().map(|w| w.id.as_str())),
        addrs: eligible
            .iter()
            .map(|w| (w.id.clone(), w.addr.clone()))
            .collect(),
        model_hash: view.model_hash,
    };
    af_obs::gauge("fleet.front.ring_size", next.ring.len() as f64);
    *shared
        .ring
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = next;
}

fn handle_connection(shared: &FrontShared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    // Per-connection pool of keep-alive upstream connections, keyed by
    // worker address. Thread-per-connection makes this contention-free.
    let mut pool: HashMap<String, HttpConn> = HashMap::new();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(ParseError::Bad(msg)) => {
                let _ = Response::error(400, &msg).with_close().write_to(&mut out);
                return;
            }
            Err(ParseError::TooLarge(msg)) => {
                let _ = Response::error(413, &msg).with_close().write_to(&mut out);
                return;
            }
            Err(ParseError::Io(_)) => return,
        };
        let close = req.wants_close();
        let mut resp = dispatch(shared, &req, &mut pool);
        if close {
            resp = resp.with_close();
        }
        if resp.write_to(&mut out).is_err() || resp.close {
            return;
        }
    }
}

/// One worker's breaker as reported by `GET /healthz`.
#[derive(Debug, Clone, Serialize)]
struct BreakerHealth {
    worker: String,
    state: String,
    opened: u64,
}

/// `GET /healthz` reply of a front.
#[derive(Debug, Clone, Serialize)]
struct FrontHealth {
    ok: bool,
    role: String,
    uptime_ms: u64,
    workers: u64,
    model_hash: String,
    build: String,
    breakers: Vec<BreakerHealth>,
}

fn dispatch(shared: &FrontShared, req: &Request, pool: &mut HashMap<String, HttpConn>) -> Response {
    af_obs::counter("fleet.front.requests", 1);
    // The deadline gate runs before routing: a malformed budget is the
    // client's bug (400), an expired one is shed here without dialing any
    // worker (408) — that is the whole point of propagating deadlines.
    let deadline = match req.header(DEADLINE_HEADER) {
        Some(raw) => match Deadline::parse(raw, shared.deadline_max_ms) {
            Ok(d) => Some(d),
            Err(e) => return Response::error(400, &e.to_string()),
        },
        None => None,
    };
    if deadline.is_some_and(|d| d.expired()) {
        af_guard::shed("front");
        return Response::error(408, "request deadline already expired");
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let (workers, model_hash) = {
                let r = shared
                    .ring
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                (r.ring.len() as u64, r.model_hash.clone())
            };
            json_or_500(
                200,
                &FrontHealth {
                    ok: true,
                    role: "front".to_string(),
                    uptime_ms: shared.started.elapsed().as_millis() as u64,
                    workers,
                    model_hash,
                    build: env!("CARGO_PKG_VERSION").to_string(),
                    breakers: shared
                        .breakers
                        .snapshot()
                        .into_iter()
                        .map(|b| BreakerHealth {
                            worker: b.worker,
                            state: b.state,
                            opened: b.opened,
                        })
                        .collect(),
                },
            )
        }
        ("GET", "/metrics") => Response::text(200, &af_serve::metrics::render_metrics()),
        ("POST", "/v1/shutdown") => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            Response::json(200, "{\"ok\":true}".to_string()).with_close()
        }
        ("POST", "/v1/route") => submit_job(shared, req, pool, deadline),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_status(shared, path, pool, deadline),
        ("POST", path) if path.starts_with("/v1/") => forward_hashed(shared, req, pool, deadline),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn json_or_500<T: Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

/// The full rendezvous ranking for a request key, as (id, addr) pairs.
fn candidates(shared: &FrontShared, key: &[u8]) -> Vec<(String, String)> {
    let state = shared
        .ring
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let n = state.ring.len();
    state
        .ring
        .ranked(key, n)
        .into_iter()
        .filter_map(|id| {
            state
                .addrs
                .get(id)
                .map(|addr| (id.to_string(), addr.clone()))
        })
        .collect()
}

/// Filters a ranking through the per-worker breakers and keeps the primary
/// plus one failover replica. When every candidate is tripped the raw
/// ranking is used instead — failing open beats returning 503 for a
/// condition the breakers will heal on their own (a permitted call doubles
/// as the half-open probe, so simply trying is what heals them).
fn routable(shared: &FrontShared, ranked: Vec<(String, String)>) -> Vec<(String, String)> {
    let allowed: Vec<(String, String)> = ranked
        .iter()
        .filter(|(id, _)| shared.breakers.allow(id))
        .cloned()
        .collect();
    if allowed.is_empty() && !ranked.is_empty() {
        af_obs::counter("fleet.front.breaker_bypass", 1);
        return ranked.into_iter().take(2).collect();
    }
    if allowed.len() < ranked.len() {
        af_obs::counter(
            "fleet.front.breaker_skips",
            (ranked.len() - allowed.len()) as u64,
        );
    }
    allowed.into_iter().take(2).collect()
}

/// The upstream headers for one forwarding attempt: the *remaining* budget
/// at this instant, so a worker always sees a strictly smaller deadline
/// than the front did (monotone shrink across hops).
fn forward_headers(deadline: Option<&Deadline>) -> Vec<(String, String)> {
    deadline
        .map(|d| vec![(DEADLINE_HEADER.to_string(), d.header_value())])
        .unwrap_or_default()
}

/// One exchange on a possibly pooled connection. A pooled connection that
/// fails is retried once on a fresh one — distinguishing "idle connection
/// died" (normal) from "worker is down" (the caller's replica logic handles
/// that). Returns the connection when it is still reusable.
fn call_once(
    conn: Option<HttpConn>,
    addr: &str,
    method: &str,
    path: &str,
    extra: &[(String, String)],
    body: &[u8],
) -> (std::io::Result<RawResponse>, Option<HttpConn>) {
    if let Some(mut c) = conn {
        if let Ok(resp) = c.call(method, path, extra, body) {
            let keep = !resp.close;
            return (Ok(resp), keep.then_some(c));
        }
    }
    match HttpConn::connect(addr) {
        Ok(mut c) => match c.call(method, path, extra, body) {
            Ok(resp) => {
                let keep = !resp.close;
                (Ok(resp), keep.then_some(c))
            }
            Err(e) => (Err(e), None),
        },
        Err(e) => (Err(e), None),
    }
}

/// Sends `req` to `addr`, reusing a pooled keep-alive connection when one
/// exists.
fn send_to(
    pool: &mut HashMap<String, HttpConn>,
    addr: &str,
    req: &Request,
    extra: &[(String, String)],
) -> std::io::Result<RawResponse> {
    let (result, conn) = call_once(
        pool.remove(addr),
        addr,
        &req.method,
        &req.path,
        extra,
        &req.body,
    );
    if let Some(c) = conn {
        pool.insert(addr.to_string(), c);
    }
    result
}

/// One leg of a hedged exchange: leg index, exchange result, the reusable
/// connection (if any), and the address it belongs to.
type LegOutcome = (
    usize,
    std::io::Result<RawResponse>,
    Option<HttpConn>,
    String,
);

/// Races `primary` against a delayed duplicate on `secondary`. The
/// primary's pooled connection (if any) moves into its leg thread and
/// comes back through the channel on a clean exchange; a losing leg is
/// abandoned — its thread finishes into a dropped receiver and its
/// connection is dropped with it, never returned to the pool.
///
/// Returns `(winner id, result, hedged)` where `hedged` means the
/// duplicate produced the winning response.
fn hedged_send(
    shared: &FrontShared,
    req: &Request,
    pool: &mut HashMap<String, HttpConn>,
    primary: &(String, String),
    secondary: &(String, String),
    extra: &[(String, String)],
) -> (String, std::io::Result<RawResponse>, bool) {
    let (tx, rx) = mpsc::channel::<LegOutcome>();
    let spawn_leg =
        |idx: usize, addr: String, conn: Option<HttpConn>, tx: mpsc::Sender<LegOutcome>| {
            let method = req.method.clone();
            let path = req.path.clone();
            let body = req.body.clone();
            let extra = extra.to_vec();
            let _ = thread::Builder::new()
                .name("fleet-front-hedge".to_string())
                .spawn(move || {
                    let (result, conn) = call_once(conn, &addr, &method, &path, &extra, &body);
                    let _ = tx.send((idx, result, conn, addr));
                });
        };
    spawn_leg(0, primary.1.clone(), pool.remove(&primary.1), tx.clone());
    let delay = shared.hedger.delay();
    let (idx, result, conn, addr) = match rx.recv_timeout(delay) {
        Ok(outcome) => outcome,
        Err(_) => {
            // The primary has been in flight past the hedge delay. That is
            // the breaker's slow signal — recorded here, unconditionally,
            // because an abandoned loser never reports back — and, budget
            // permitting, the cue to race the duplicate.
            shared
                .breakers
                .record(&primary.0, false, delay.as_secs_f64() * 1e3);
            if shared.hedger.try_hedge() {
                spawn_leg(
                    1,
                    secondary.1.clone(),
                    pool.remove(&secondary.1),
                    tx.clone(),
                );
            }
            drop(tx);
            // First clean response wins; an errored leg defers to the
            // other while it is still running.
            let mut errored: Option<LegOutcome> = None;
            loop {
                match rx.recv() {
                    Ok(o) if o.1.is_ok() => break o,
                    Ok(o) => errored = Some(o),
                    Err(_) => match errored.take() {
                        Some(o) => break o,
                        None => {
                            break (
                                0,
                                Err(std::io::Error::other("hedge legs vanished")),
                                None,
                                primary.1.clone(),
                            )
                        }
                    },
                }
            }
        }
    };
    if result.is_ok() {
        if let Some(c) = conn {
            pool.insert(addr, c);
        }
    }
    let hedged = idx == 1;
    if hedged && result.is_ok() {
        shared.hedger.record_win();
    }
    let winner = if hedged { &secondary.0 } else { &primary.0 };
    (winner.clone(), result, hedged)
}

/// Converts an upstream response into a downstream one, relaying status,
/// body, cache markers, and stamping which worker answered.
fn relay(upstream: RawResponse, worker: &str) -> Response {
    let body = String::from_utf8_lossy(&upstream.body).into_owned();
    let text_type = upstream
        .header("content-type")
        .is_some_and(|t| t.starts_with("text/"));
    let mut resp = if text_type {
        Response::text(upstream.status, &body)
    } else {
        Response::json(upstream.status, body)
    };
    if let Some(v) = upstream.header("x-cache") {
        resp = resp.with_header("x-cache", v.to_string());
    }
    if let Some(v) = upstream.header("retry-after") {
        resp = resp.with_header("retry-after", v.to_string());
    }
    resp.with_header("x-fleet-worker", worker.to_string())
}

/// Routes a cacheable `/v1/*` request by content key with one replica
/// retry and optional hedging.
///
/// 503 from the winner (shutting down) fails over; `429` is backpressure
/// and is relayed verbatim — `Retry-After` intact — because the replica
/// would only melt too. When every candidate sheds with 503 the *last 503
/// itself* is relayed (again `Retry-After` intact) rather than a bare 502;
/// 502 is reserved for "nothing even answered".
fn forward_hashed(
    shared: &FrontShared,
    req: &Request,
    pool: &mut HashMap<String, HttpConn>,
    deadline: Option<Deadline>,
) -> Response {
    let mut key = Vec::with_capacity(req.path.len() + 1 + req.body.len());
    key.extend_from_slice(req.path.as_bytes());
    key.push(0);
    key.extend_from_slice(&req.body);
    let ranked = candidates(shared, &key);
    if ranked.is_empty() {
        return Response::error(503, "no live workers in the fleet");
    }
    let targets = routable(shared, ranked);
    let mut backpressure: Option<(RawResponse, String)> = None;
    for (i, (id, addr)) in targets.iter().enumerate() {
        if deadline.is_some_and(|d| d.expired()) {
            af_guard::shed("front");
            return Response::error(408, "request deadline expired at the front");
        }
        let extra = forward_headers(deadline.as_ref());
        let start = Instant::now();
        let (winner, result, hedged) = if i == 0 && shared.hedger.enabled() && targets.len() > 1 {
            hedged_send(shared, req, pool, &targets[0], &targets[1], &extra)
        } else {
            (id.clone(), send_to(pool, addr, req, &extra), false)
        };
        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok(resp) => {
                shared
                    .breakers
                    .record(&winner, resp.status < 500, latency_ms);
                if resp.status == 429 {
                    return relay(resp, &winner);
                }
                if resp.status == 503 {
                    if i + 1 < targets.len() {
                        af_obs::counter("fleet.front.failovers", 1);
                    }
                    backpressure = Some((resp, winner));
                    continue;
                }
                shared.hedger.observe(latency_ms);
                if i > 0 {
                    af_obs::counter("fleet.front.replica_hits", 1);
                }
                let mut out = relay(resp, &winner);
                if hedged {
                    out = out.with_header(HEDGED_HEADER, "1".to_string());
                }
                return out;
            }
            Err(_) => {
                shared.breakers.record(&winner, false, latency_ms);
                af_obs::counter("fleet.front.worker_errors", 1);
            }
        }
    }
    match backpressure {
        Some((resp, id)) => relay(resp, &id),
        None => Response::error(502, "all replicas for this key are unreachable"),
    }
}

/// `POST /v1/route`: forward like any hashed request, but when the worker
/// answers 202 with a worker-local job id, allocate a front-global id and
/// remember the mapping so the job can be polled through this front. Job
/// submission is *not* idempotent, so it is never hedged — a duplicate
/// would enqueue the route twice.
fn submit_job(
    shared: &FrontShared,
    req: &Request,
    pool: &mut HashMap<String, HttpConn>,
    deadline: Option<Deadline>,
) -> Response {
    let mut key = Vec::with_capacity(req.path.len() + 1 + req.body.len());
    key.extend_from_slice(req.path.as_bytes());
    key.push(0);
    key.extend_from_slice(&req.body);
    let ranked = candidates(shared, &key);
    if ranked.is_empty() {
        return Response::error(503, "no live workers in the fleet");
    }
    let targets = routable(shared, ranked);
    let mut backpressure: Option<(RawResponse, String)> = None;
    for (id, addr) in &targets {
        if deadline.is_some_and(|d| d.expired()) {
            af_guard::shed("front");
            return Response::error(408, "request deadline expired at the front");
        }
        let extra = forward_headers(deadline.as_ref());
        let start = Instant::now();
        let result = send_to(pool, addr, req, &extra);
        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok(resp) if resp.status == 202 => {
                shared.breakers.record(id, true, latency_ms);
                return match rewrite_job_id(shared, id, &resp.body) {
                    Some(body) => relay(
                        RawResponse {
                            body: body.into_bytes(),
                            ..resp
                        },
                        id,
                    ),
                    None => Response::error(502, "worker returned an unintelligible job ticket"),
                };
            }
            Ok(resp) if resp.status == 503 => {
                shared.breakers.record(id, true, latency_ms);
                af_obs::counter("fleet.front.failovers", 1);
                backpressure = Some((resp, id.clone()));
            }
            Ok(resp) => {
                shared.breakers.record(id, resp.status < 500, latency_ms);
                return relay(resp, id);
            }
            Err(_) => {
                shared.breakers.record(id, false, latency_ms);
                af_obs::counter("fleet.front.worker_errors", 1);
            }
        }
    }
    match backpressure {
        Some((resp, id)) => relay(resp, &id),
        None => Response::error(502, "all replicas for this key are unreachable"),
    }
}

/// Swaps the worker-local `id` in a 202 body for a freshly allocated
/// front-global one and records the mapping.
fn rewrite_job_id(shared: &FrontShared, worker: &str, body: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let mut value = serde_json::value_from_str(text).ok()?;
    let local = match value.get("id") {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) if *i >= 0 => *i as u64,
        _ => return None,
    };
    let global = shared.next_job.fetch_add(1, Ordering::Relaxed);
    shared
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(global, (worker.to_string(), local));
    af_obs::counter("fleet.front.jobs_mapped", 1);
    if let Value::Map(pairs) = &mut value {
        for (k, v) in pairs.iter_mut() {
            if k == "id" {
                *v = Value::UInt(global);
            }
        }
    }
    serde_json::to_string(&value).ok()
}

/// `GET /v1/jobs/{global}`: translate back to the owning worker's local id
/// and proxy the poll there. Job state is worker-resident, so there is no
/// replica to fail over to — a dead worker means the job is gone (410).
fn job_status(
    shared: &FrontShared,
    path: &str,
    pool: &mut HashMap<String, HttpConn>,
    deadline: Option<Deadline>,
) -> Response {
    let id_text = &path["/v1/jobs/".len()..];
    let Ok(global) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("bad job id {id_text:?}"));
    };
    let Some((worker, local)) = shared
        .jobs
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&global)
        .cloned()
    else {
        return Response::error(404, &format!("no job {global}"));
    };
    let addr = {
        let state = shared
            .ring
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.addrs.get(&worker).cloned()
    };
    let Some(addr) = addr else {
        return Response::error(
            410,
            &format!("worker {worker} holding job {global} is gone"),
        );
    };
    let upstream = Request {
        method: "GET".to_string(),
        path: format!("/v1/jobs/{local}"),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let extra = forward_headers(deadline.as_ref());
    match send_to(pool, &addr, &upstream, &extra) {
        Ok(resp) => relay(resp, &worker),
        Err(_) => Response::error(502, &format!("worker {worker} unreachable")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_guard::parse_header_ms;

    fn shared_with(breakers: BreakerSet, hedger: Hedger) -> FrontShared {
        FrontShared {
            coordinator: String::new(),
            ring: RwLock::new(RingState::default()),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            addr: "127.0.0.1:0".parse().unwrap(),
            started: Instant::now(),
            breakers,
            hedger,
            deadline_max_ms: 0,
        }
    }

    fn shared_for_test() -> FrontShared {
        shared_with(BreakerSet::disabled(), Hedger::off())
    }

    fn set_ring(shared: &FrontShared, workers: &[(&str, &str)]) {
        let mut state = shared.ring.write().unwrap();
        state.ring = Ring::new(workers.iter().map(|(id, _)| *id));
        state.addrs = workers
            .iter()
            .map(|(id, addr)| ((*id).to_string(), (*addr).to_string()))
            .collect();
    }

    /// A minimal keep-alive mock worker: answers every request through
    /// `behavior` until the test process exits.
    fn spawn_mock(behavior: impl Fn(&Request) -> Response + Send + Sync + 'static) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let behavior = Arc::new(behavior);
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let behavior = Arc::clone(&behavior);
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut out = stream;
                    while let Ok(Some(req)) = read_request(&mut reader) {
                        let resp = behavior(&req);
                        if resp.write_to(&mut out).is_err() || resp.close {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn header(resp: &Response, name: &str) -> Option<String> {
        resp.extra_headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    #[test]
    fn job_id_rewrite_allocates_and_maps() {
        let shared = shared_for_test();
        let out = rewrite_job_id(&shared, "w7", br#"{"id":3,"status":"queued"}"#).unwrap();
        assert!(out.contains("\"id\":1"), "{out}");
        assert!(out.contains("queued"));
        let jobs = shared.jobs.lock().unwrap();
        assert_eq!(jobs.get(&1), Some(&("w7".to_string(), 3)));
    }

    #[test]
    fn job_id_rewrite_rejects_garbage() {
        let shared = shared_for_test();
        assert!(rewrite_job_id(&shared, "w", b"not json").is_none());
        assert!(rewrite_job_id(&shared, "w", br#"{"status":"queued"}"#).is_none());
        assert!(rewrite_job_id(&shared, "w", br#"{"id":"three"}"#).is_none());
    }

    #[test]
    fn candidates_follow_ring_membership() {
        let shared = shared_for_test();
        set_ring(
            &shared,
            &[
                ("w1", "127.0.0.1:1"),
                ("w2", "127.0.0.1:2"),
                ("w3", "127.0.0.1:3"),
            ],
        );
        let c = candidates(&shared, b"some-key");
        assert_eq!(c.len(), 3, "full ranking over the ring");
        assert_ne!(c[0].0, c[1].0, "winner and replica differ");
        // A worker whose addr vanished is skipped rather than dialed blind.
        shared.ring.write().unwrap().addrs.remove(&c[0].0);
        let c2 = candidates(&shared, b"some-key");
        assert_eq!(c2.len(), 2);
    }

    #[test]
    fn routable_excludes_tripped_worker_and_fails_open() {
        let cfg = BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_ratio: 0.5,
            open_ms: 60_000,
            ..BreakerConfig::default()
        };
        let shared = shared_with(BreakerSet::new(cfg), Hedger::off());
        set_ring(&shared, &[("w1", "127.0.0.1:1"), ("w2", "127.0.0.1:2")]);
        let ranked = candidates(&shared, b"k");
        let primary = ranked[0].0.clone();
        for _ in 0..4 {
            shared.breakers.record(&primary, false, 1.0);
        }
        let t = routable(&shared, candidates(&shared, b"k"));
        assert_eq!(t.len(), 1, "tripped primary excluded");
        assert_ne!(t[0].0, primary);
        // Trip the other one too: the front fails open to the raw ranking.
        let other = t[0].0.clone();
        for _ in 0..4 {
            shared.breakers.record(&other, false, 1.0);
        }
        let t = routable(&shared, candidates(&shared, b"k"));
        assert_eq!(t.len(), 2, "fully tripped ring falls back to ranking");
    }

    #[test]
    fn backpressure_429_is_relayed_verbatim_with_retry_after() {
        let addr = spawn_mock(|_req| {
            Response::error(429, "queue full").with_header("retry-after", "7".to_string())
        });
        let shared = shared_for_test();
        set_ring(&shared, &[("w1", addr.as_str())]);
        let mut pool = HashMap::new();
        let resp = forward_hashed(&shared, &post("/v1/predict", b"{}"), &mut pool, None);
        assert_eq!(resp.status, 429);
        assert_eq!(header(&resp, "retry-after").as_deref(), Some("7"));
        assert_eq!(header(&resp, "x-fleet-worker").as_deref(), Some("w1"));
    }

    #[test]
    fn exhausted_failover_relays_last_503_not_bare_502() {
        let mk = || {
            spawn_mock(|_req| {
                Response::error(503, "shutting down").with_header("retry-after", "3".to_string())
            })
        };
        let (a1, a2) = (mk(), mk());
        let shared = shared_for_test();
        set_ring(&shared, &[("w1", a1.as_str()), ("w2", a2.as_str())]);
        let mut pool = HashMap::new();
        let resp = forward_hashed(&shared, &post("/v1/predict", b"{}"), &mut pool, None);
        assert_eq!(resp.status, 503, "503 relayed, not synthesized 502");
        assert_eq!(header(&resp, "retry-after").as_deref(), Some("3"));
    }

    #[test]
    fn forwarded_deadline_budget_shrinks_monotonically() {
        // The mock echoes the x-deadline-ms it received back in the body.
        let addr = spawn_mock(|req| {
            let got = req.header(DEADLINE_HEADER).unwrap_or("none").to_string();
            Response::json(200, format!("{{\"got\":\"{got}\"}}"))
        });
        let shared = shared_for_test();
        set_ring(&shared, &[("w1", addr.as_str())]);
        let mut pool = HashMap::new();
        let deadline = Deadline::after(5_000);
        let resp = forward_hashed(
            &shared,
            &post("/v1/predict", b"{}"),
            &mut pool,
            Some(deadline),
        );
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body.clone()).unwrap();
        let echoed: u64 = body
            .split('"')
            .nth(3)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no echoed budget in {body}"));
        assert!(echoed <= 5_000, "forwarded budget {echoed} above original");
        assert!(
            echoed > 4_000,
            "forwarded budget {echoed} implausibly small"
        );
        assert!(parse_header_ms(&deadline.header_value(), 0, 0).is_ok());
    }

    #[test]
    fn expired_deadline_sheds_before_dialing() {
        // No mock worker at all: if the front tried to dial, it would 502.
        let shared = shared_for_test();
        set_ring(&shared, &[("w1", "127.0.0.1:1")]);
        let mut pool = HashMap::new();
        let resp = forward_hashed(
            &shared,
            &post("/v1/predict", b"{}"),
            &mut pool,
            Some(Deadline::after(0)),
        );
        assert_eq!(resp.status, 408);
    }

    #[test]
    fn hedge_wins_against_slow_primary() {
        let slow = spawn_mock(|_req| {
            thread::sleep(Duration::from_millis(300));
            Response::json(200, "{\"from\":\"slow\"}".to_string())
        });
        let fast = spawn_mock(|_req| Response::json(200, "{\"from\":\"fast\"}".to_string()));
        let hedger = Hedger::new(HedgeConfig {
            delay_ms: 15,
            seed: 1,
            ..HedgeConfig::default()
        });
        let shared = shared_with(BreakerSet::disabled(), hedger);
        set_ring(&shared, &[("w1", slow.as_str()), ("w2", fast.as_str())]);
        // Find a key whose rendezvous primary is the slow worker.
        let mut body = Vec::new();
        for i in 0..64u32 {
            let candidate = format!("{{\"n\":{i}}}").into_bytes();
            let mut key = Vec::new();
            key.extend_from_slice(b"/v1/predict");
            key.push(0);
            key.extend_from_slice(&candidate);
            if candidates(&shared, &key)[0].0 == "w1" {
                body = candidate;
                break;
            }
        }
        assert!(!body.is_empty(), "no key ranked the slow worker first");
        let mut pool = HashMap::new();
        let resp = forward_hashed(&shared, &post("/v1/predict", &body), &mut pool, None);
        assert_eq!(resp.status, 200);
        assert_eq!(
            String::from_utf8_lossy(&resp.body),
            "{\"from\":\"fast\"}",
            "duplicate on the fast replica should win"
        );
        assert_eq!(header(&resp, HEDGED_HEADER).as_deref(), Some("1"));
        assert_eq!(header(&resp, "x-fleet-worker").as_deref(), Some("w2"));
        let stats = shared.hedger.stats();
        assert_eq!(stats.issued, 1);
        assert_eq!(stats.wins, 1);
    }
}
