//! af-fleet: coordinator/worker multi-process serving and distributed
//! dataset generation, built entirely on the workspace's std-only HTTP
//! stack (no async runtime, no RPC framework, no new dependencies).
//!
//! # Roles
//!
//! A fleet has three process roles, all speaking the JSON protocol in
//! [`protocol`]:
//!
//! - **Coordinator** ([`Coordinator`]): the only stateful party. Tracks
//!   worker membership through registrations and heartbeats with
//!   deterministic lease expiry ([`registry`]), hands out dataset-shard
//!   leases ([`leases`]), and aggregates worker metrics for one-stop
//!   `/metrics` scraping. All its state is reconstructible: workers
//!   re-register after a coordinator restart, and the lease table rebuilds
//!   from the checkpoint directory.
//! - **Worker**: an af-serve model server (and/or gen loop) plus a
//!   [`client::WorkerAgent`] background thread that registers and
//!   heartbeats. Gen workers run [`gen::run_gen_worker`].
//! - **Front** ([`Front`]): a stateless-ish proxy that routes `/v1/*`
//!   by rendezvous-hashing the request's `(path, body)` — the same key
//!   af-serve's response cache uses — so the worker ring doubles as a
//!   consistent-hash tier over the per-worker caches. One replica retry,
//!   then 502.
//!
//! # Healing
//!
//! Failure handling leans on one invariant: every dataset shard is a pure
//! function of `(spec, shard_index)`. A killed worker needs no recovery
//! protocol — its membership lease expires, its shard lease expires, and
//! whoever re-leases the shard produces bit-identical bytes. Serving heals
//! the same way: the ring drops the dead worker on the next refresh and
//! only its key share remaps.

use std::fmt;

pub mod client;
pub mod coordinator;
pub mod gen;
pub mod leases;
pub mod protocol;
pub mod proxy;
pub mod registry;

pub use client::{
    get_json, post_json, HttpConn, ModelHooks, PromoteFn, RawResponse, ResidentHashFn, WorkerAgent,
    WorkerIdentity,
};
pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle};
pub use gen::{run_gen_worker, spec_config, spec_design, GenSummary};
pub use leases::LeaseTable;
pub use protocol::{GenSpec, WorkerCaps, PROTOCOL_VERSION};
pub use proxy::{Front, FrontConfig, FrontHandle};
pub use registry::Registry;

/// Fleet-level failure.
#[derive(Debug)]
pub enum FleetError {
    /// Transport-level failure (connect, read, write, framing).
    Io(std::io::Error),
    /// A peer answered with a non-success HTTP status.
    Status(u16, String),
    /// A peer's reply was syntactically or semantically unintelligible.
    Protocol(String),
    /// A spec or configuration problem on our side.
    Config(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet transport failure: {e}"),
            FleetError::Status(code, body) => {
                write!(f, "fleet peer answered {code}: {body}")
            }
            FleetError::Protocol(msg) => write!(f, "fleet protocol violation: {msg}"),
            FleetError::Config(msg) => write!(f, "fleet configuration error: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}
