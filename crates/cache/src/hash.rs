//! Stable 128-bit content hashing for canonical cache keys.
//!
//! [`ContentHasher`] is a streaming MurmurHash3-x64-128-style construction:
//! 16-byte blocks mixed into two 64-bit lanes with independent rotation and
//! multiplication constants, finalized with the classic `fmix64` avalanche.
//! It is **not** wire-compatible with any external implementation and does
//! not need to be: the only contract is that the same logical content hashes
//! to the same [`ContentHash`] on every platform and in every future version
//! of this workspace. That contract is pinned by golden test vectors below —
//! changing the algorithm breaks those tests, which is the point (on-disk
//! caches and model headers persist these hashes).
//!
//! Typed `write_*` helpers are length/tag-disciplined so that adjacent
//! fields cannot alias (`"ab" + "c"` vs `"a" + "bc"` hash differently), and
//! floats are hashed by their exact IEEE-754 bit pattern so keying is as
//! bit-precise as the computations being memoized.

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ab2d_d3be_e6e5;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// A 128-bit content hash: two 64-bit lanes, rendered as 32 lowercase hex
/// digits. Used as the canonical cache key for designs, requests, guidance
/// vectors, and persisted model bodies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentHash(pub [u64; 2]);

impl ContentHash {
    /// Hashes a byte slice in one shot (seed 0).
    #[must_use]
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = ContentHasher::new();
        h.write(bytes);
        h.finish()
    }

    /// The 32-character lowercase hex rendering (lane 0 then lane 1).
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parses the [`to_hex`](Self::to_hex) rendering back into a hash.
    /// Returns `None` unless the input is exactly 32 hex digits.
    #[must_use]
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let lane0 = u64::from_str_radix(&hex[..16], 16).ok()?;
        let lane1 = u64::from_str_radix(&hex[16..], 16).ok()?;
        Some(Self([lane0, lane1]))
    }

    /// Folds the two lanes into one `u64` (for shard selection or seeding).
    #[must_use]
    pub fn fold64(&self) -> u64 {
        self.0[0] ^ self.0[1].rotate_left(32)
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({})", self.to_hex())
    }
}

/// Streaming 128-bit hasher. Feed content through the typed `write_*`
/// methods and call [`finish`](Self::finish). Splitting the same byte
/// stream across any number of `write` calls yields the same hash.
pub struct ContentHasher {
    h1: u64,
    h2: u64,
    buf: [u8; 16],
    buf_len: usize,
    total: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// A hasher with seed 0 (the canonical keying seed).
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// A hasher with an explicit seed (both lanes start from it). Distinct
    /// seeds give independent hash families.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            h1: seed,
            h2: seed,
            buf: [0u8; 16],
            buf_len: 0,
            total: 0,
        }
    }

    #[inline]
    fn mix_block(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 16);
        let mut k1 = u64::from_le_bytes(block[..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(block[8..].try_into().unwrap());
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        self.h1 ^= k1;
        self.h1 = self
            .h1
            .rotate_left(27)
            .wrapping_add(self.h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        self.h2 ^= k2;
        self.h2 = self
            .h2
            .rotate_left(31)
            .wrapping_add(self.h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5ab5);
    }

    /// Appends raw bytes to the stream.
    pub fn write(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        if self.buf_len > 0 {
            let need = 16 - self.buf_len;
            let take = need.min(bytes.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.mix_block(&block);
                self.buf_len = 0;
            }
        }
        while bytes.len() >= 16 {
            let (block, rest) = bytes.split_at(16);
            self.mix_block(block);
            bytes = rest;
        }
        if !bytes.is_empty() {
            self.buf[..bytes.len()].copy_from_slice(bytes);
            self.buf_len = bytes.len();
        }
    }

    /// Appends a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Appends a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Appends an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Appends an `f64` by exact IEEE-754 bit pattern. `-0.0` and `0.0`
    /// therefore hash differently, as do distinct NaN payloads — keying is
    /// exactly as strict as bit-identity.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a length-prefixed `f64` slice (bitwise).
    pub fn write_f64_slice(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string. The prefix prevents adjacent
    /// strings from aliasing.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Finalizes the stream: mixes the buffered tail and total length, then
    /// avalanches both lanes.
    #[must_use]
    pub fn finish(mut self) -> ContentHash {
        if self.buf_len > 0 {
            let mut k1 = 0u64;
            let mut k2 = 0u64;
            for i in (0..self.buf_len).rev() {
                if i >= 8 {
                    k2 = (k2 << 8) | u64::from(self.buf[i]);
                } else {
                    k1 = (k1 << 8) | u64::from(self.buf[i]);
                }
            }
            if self.buf_len > 8 {
                k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
                self.h2 ^= k2;
            }
            k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
            self.h1 ^= k1;
        }
        self.h1 ^= self.total;
        self.h2 ^= self.total;
        self.h1 = self.h1.wrapping_add(self.h2);
        self.h2 = self.h2.wrapping_add(self.h1);
        self.h1 = fmix64(self.h1);
        self.h2 = fmix64(self.h2);
        self.h1 = self.h1.wrapping_add(self.h2);
        self.h2 = self.h2.wrapping_add(self.h1);
        ContentHash([self.h1, self.h2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_invariant() {
        let data: Vec<u8> = (0u8..=255).collect();
        let whole = ContentHash::of_bytes(&data);
        for split in [1usize, 3, 7, 15, 16, 17, 100, 255] {
            let mut h = ContentHasher::new();
            for chunk in data.chunks(split) {
                h.write(chunk);
            }
            assert_eq!(h.finish(), whole, "split {split} diverged");
        }
    }

    #[test]
    fn hex_round_trips() {
        let h = ContentHash::of_bytes(b"analogfold");
        let hex = h.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(ContentHash::from_hex(&hex), Some(h));
        assert_eq!(ContentHash::from_hex("zz"), None);
        assert_eq!(ContentHash::from_hex(&hex[..31]), None);
    }

    #[test]
    fn typed_writes_do_not_alias() {
        let mut a = ContentHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = ContentHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut x = ContentHasher::new();
        x.write_f64(0.0);
        let mut y = ContentHasher::new();
        y.write_f64(-0.0);
        assert_ne!(x.finish(), y.finish());
    }

    #[test]
    fn seeds_are_independent() {
        let mut a = ContentHasher::with_seed(1);
        a.write(b"same");
        let mut b = ContentHasher::with_seed(2);
        b.write(b"same");
        assert_ne!(a.finish(), b.finish());
    }

    /// Golden vectors: these pin the hash for on-disk artifacts (model
    /// headers, spilled shards). If this test fails the algorithm changed,
    /// which silently invalidates every persisted cache — bump the relevant
    /// format versions instead of updating the constants casually.
    #[test]
    fn golden_vectors_are_stable() {
        let empty = ContentHash::of_bytes(b"");
        let hello = ContentHash::of_bytes(b"hello, analog world");
        let mut typed = ContentHasher::new();
        typed.write_str("netlist");
        typed.write_u64(42);
        typed.write_f64_slice(&[1.0, -2.5, 3.25]);
        let typed = typed.finish();
        // Computed once by this implementation; stable forever after.
        assert_eq!(empty.to_hex(), golden::EMPTY);
        assert_eq!(hello.to_hex(), golden::HELLO);
        assert_eq!(typed.to_hex(), golden::TYPED);
    }

    /// Golden constants live in a child module so a deliberate regeneration
    /// is a single, visible diff.
    mod golden {
        pub const EMPTY: &str = "00000000000000000000000000000000";
        pub const HELLO: &str = "1265d662f113e9977be4783ae5631261";
        pub const TYPED: &str = "69fbe3f1fbc7ed37908d8bd2dcdd3911";
    }
}
