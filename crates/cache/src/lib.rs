#![warn(missing_docs)]
//! **af-cache** — concurrent, memory-bounded memoization for the AnalogFold
//! workspace.
//!
//! The paper's hottest path evaluates `f_θ(G_H, C)` thousands of times per
//! design while most of the inputs never change; af-serve replays identical
//! predict/guide requests under load; dataset generation re-routes identical
//! guidance on resume. This crate is the shared answer: a sharded LRU core
//! with size-aware admission, optional TTL, generation-based invalidation,
//! and a stable 128-bit content hash for canonical keying, plus an optional
//! disk-spill trait for cross-run warm caches.
//!
//! Design rules:
//!
//! - **Deterministic by construction.** The cache only ever returns a value
//!   that was previously inserted for the *exact same* key, and keys are
//!   exact (bit-level for floats). Memoizing a pure function through it is
//!   therefore bit-identical to calling the function — cache-on vs
//!   cache-off output equality is enforced in `tests/determinism.rs` at the
//!   workspace root.
//! - **Bounded.** Capacity is a hard ceiling in weight units (usually
//!   bytes, via [`Weigher`]); an entry that can never fit is rejected
//!   outright, and insertion evicts from the LRU tail until the new entry
//!   fits. The bound holds per shard so the global bound holds too.
//! - **Observable.** When an [`af_obs`] sink is installed, every cache
//!   emits `cache.hits` / `cache.misses` / `cache.evictions` /
//!   `cache.insertions` / `cache.rejected` / `cache.expired` counters, a
//!   `cache.bytes` gauge, and a `cache.lookup_us` latency histogram (plus
//!   the same set name-scoped under `cache.<name>.*`). With no sink the
//!   hot path costs one relaxed atomic load.
//! - **Zero dependencies** beyond `af-obs` (itself dependency-free), so any
//!   workspace layer can memoize without cycles.
//!
//! ```
//! use af_cache::{CacheBuilder, FnWeigher};
//!
//! let cache = CacheBuilder::new("doc").capacity_bytes(1 << 20).build_weighed(
//!     FnWeigher(|_k: &u64, v: &String| v.len() as u64 + 8),
//! );
//! cache.insert(1, "one".to_string());
//! assert_eq!(cache.get(&1), Some("one".to_string()));
//! assert_eq!(cache.get(&2), None);
//! let v = cache.get_or_insert_with(2, || "two".to_string());
//! assert_eq!(v, "two");
//! let reused = cache.get_or_insert_with(2, || unreachable!("memoized"));
//! assert_eq!(reused, "two");
//! assert_eq!(cache.stats().hits, 2); // the get(&1) and the memoized reuse
//! ```

mod hash;
pub mod persist;
pub mod ring;

pub use hash::{ContentHash, ContentHasher};
pub use ring::Ring;

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Computes the admission weight of an entry, in the unit the cache's
/// capacity is expressed in (bytes for size-aware caches, `1` for
/// count-bounded ones). Weights are sampled once at insertion; values must
/// not change weight while cached.
pub trait Weigher<K, V>: Send + Sync {
    /// The weight of `(key, value)`. Zero-weight entries are allowed and
    /// never evicted by size pressure alone (only by LRU order, TTL, or
    /// invalidation).
    fn weigh(&self, key: &K, value: &V) -> u64;
}

/// Every entry weighs 1: capacity bounds the entry *count*.
pub struct UnitWeigher;

impl<K, V> Weigher<K, V> for UnitWeigher {
    fn weigh(&self, _key: &K, _value: &V) -> u64 {
        1
    }
}

/// Adapts a closure into a [`Weigher`].
pub struct FnWeigher<F>(pub F);

impl<K, V, F: Fn(&K, &V) -> u64 + Send + Sync> Weigher<K, V> for FnWeigher<F> {
    fn weigh(&self, key: &K, value: &V) -> u64 {
        (self.0)(key, value)
    }
}

/// Monotonic nanosecond clock used for TTL decisions. Injectable so tests
/// can expire entries without sleeping.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// A point-in-time snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live value.
    pub hits: u64,
    /// Lookups that found nothing (including expired / invalidated entries).
    pub misses: u64,
    /// Values admitted into the cache.
    pub insertions: u64,
    /// Entries removed to make room for newer ones.
    pub evictions: u64,
    /// Entries dropped because their TTL had lapsed when touched.
    pub expired: u64,
    /// Insertions refused because a single entry outweighed a whole shard.
    pub rejected: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Total weight of live entries right now.
    pub bytes: u64,
}

impl CacheStats {
    /// Hits over total lookups; `0.0` before any lookup happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    weight: u64,
    expires_at: Option<u64>,
    generation: u64,
    prev: usize,
    next: usize,
}

struct Shard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: u64,
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.slots[idx].as_ref().expect("linked slot must be live");
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("live prev").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("live next").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let e = self.slots[idx].as_mut().expect("pushed slot must be live");
            e.prev = NIL;
            e.next = self.head;
        }
        if self.head != NIL {
            self.slots[self.head].as_mut().expect("live head").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Unlinks and frees `idx`, returning its weight.
    fn remove(&mut self, idx: usize) -> u64 {
        self.unlink(idx);
        let entry = self.slots[idx].take().expect("removed slot must be live");
        self.map.remove(&entry.key);
        self.free.push(idx);
        self.bytes -= entry.weight;
        entry.weight
    }

    fn insert_front(&mut self, entry: Entry<K, V>) {
        let weight = entry.weight;
        let key = entry.key.clone();
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(entry);
                i
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.bytes += weight;
    }
}

/// Builds a [`Cache`]. All knobs have sensible defaults: 16 MiB capacity,
/// a power-of-two shard count sized to available parallelism, no TTL, a
/// monotonic process clock.
pub struct CacheBuilder {
    name: String,
    capacity: u64,
    shards: usize,
    ttl: Option<Duration>,
    clock: Option<Clock>,
}

impl CacheBuilder {
    /// Starts a builder. `name` scopes this cache's obs metrics
    /// (`cache.<name>.hits` etc.) and appears in spill filenames.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            capacity: 16 << 20,
            shards: 0,
            ttl: None,
            clock: None,
        }
    }

    /// Total capacity in weight units (bytes for size-aware weighers).
    #[must_use]
    pub fn capacity_bytes(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Total capacity in MiB — the unit exposed by `--cache-mb`.
    #[must_use]
    pub fn capacity_mb(self, mb: u64) -> Self {
        self.capacity_bytes(mb << 20)
    }

    /// Shard count; rounded up to a power of two, minimum 1. `0` (default)
    /// picks from available parallelism.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Entries expire this long after insertion. Default: never. TTL uses
    /// the cache clock, so results stay deterministic under the default
    /// monotonic clock only if entries cannot expire mid-run — prefer no
    /// TTL for memoization tiers and reserve TTL for serving.
    #[must_use]
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Replaces the monotonic clock (nanoseconds, starting anywhere) used
    /// for TTL. Tests inject a hand-cranked clock to expire entries
    /// deterministically.
    #[must_use]
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Builds a count-bounded cache: every entry weighs 1, so the capacity
    /// is an entry count.
    #[must_use]
    pub fn build<K: Hash + Eq + Clone, V: Clone>(self) -> Cache<K, V> {
        self.build_weighed(UnitWeigher)
    }

    /// Builds a cache with an explicit [`Weigher`] (size-aware admission).
    #[must_use]
    pub fn build_weighed<K: Hash + Eq + Clone, V: Clone>(
        self,
        weigher: impl Weigher<K, V> + 'static,
    ) -> Cache<K, V> {
        let requested = if self.shards == 0 {
            std::thread::available_parallelism().map_or(8, usize::from)
        } else {
            self.shards
        };
        let n_shards = requested.next_power_of_two().max(1);
        let clock = self.clock.unwrap_or_else(|| {
            let start = Instant::now();
            Arc::new(move || u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
        });
        Cache {
            name: self.name,
            shards: (0..n_shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_mask: n_shards - 1,
            per_shard_capacity: (self.capacity / n_shards as u64).max(1),
            weigher: Box::new(weigher),
            ttl_nanos: self
                .ttl
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
            clock,
            generation: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }
}

/// A thread-safe, memory-bounded, sharded LRU cache.
///
/// Values are returned by clone — cache cheap-to-clone values (`Arc` them
/// if large). See the crate docs for the determinism and bounding rules.
pub struct Cache<K, V> {
    name: String,
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_mask: usize,
    per_shard_capacity: u64,
    weigher: Box<dyn Weigher<K, V>>,
    ttl_nanos: Option<u64>,
    clock: Clock,
    generation: AtomicU64,
    bytes: AtomicU64,
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
    rejected: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> Cache<K, V> {
    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        // DefaultHasher with default keys is deterministic within a process;
        // shard choice never affects observable results, only contention.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.shard_mask]
    }

    fn obs_counter(&self, metric: &str, delta: u64) {
        if af_obs::enabled() {
            af_obs::counter(&format!("cache.{metric}"), delta);
            af_obs::counter(&format!("cache.{}.{metric}", self.name), delta);
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. Expired or
    /// invalidated entries are removed and count as misses.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        let timer = af_obs::enabled().then(Instant::now);
        let now = (self.clock)();
        let generation = self.generation.load(Ordering::Acquire);
        let mut shard = self
            .shard_for(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let result = match shard.map.get(key).copied() {
            None => None,
            Some(idx) => {
                let (stale, dead) = {
                    let e = shard.slots[idx].as_ref().expect("mapped slot is live");
                    let dead = e.expires_at.is_some_and(|t| now >= t);
                    (e.generation != generation, dead)
                };
                if stale || dead {
                    let freed = shard.remove(idx);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.bytes.fetch_sub(freed, Ordering::Relaxed);
                    if dead {
                        self.expired.fetch_add(1, Ordering::Relaxed);
                        self.obs_counter("expired", 1);
                    }
                    None
                } else {
                    shard.unlink(idx);
                    shard.push_front(idx);
                    Some(
                        shard.slots[idx]
                            .as_ref()
                            .expect("refreshed slot is live")
                            .value
                            .clone(),
                    )
                }
            }
        };
        drop(shard);
        if result.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs_counter("hits", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.obs_counter("misses", 1);
        }
        if let Some(t0) = timer {
            af_obs::hist("cache.lookup_us", t0.elapsed().as_secs_f64() * 1e6);
        }
        result
    }

    /// Inserts `key → value`, evicting LRU entries until it fits. An entry
    /// heavier than a whole shard's capacity is rejected (counted in
    /// [`CacheStats::rejected`]) — the cache never exceeds its bound to
    /// admit one value.
    pub fn insert(&self, key: K, value: V) {
        let weight = self.weigher.weigh(&key, &value);
        if weight > self.per_shard_capacity {
            // Even a rejected insert must not leave a stale mapping behind:
            // after any insert attempt the cache holds either the new value
            // or nothing for this key.
            let mut shard = self
                .shard_for(&key)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(idx) = shard.map.get(&key).copied() {
                let freed = shard.remove(idx);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.bytes.fetch_sub(freed, Ordering::Relaxed);
            }
            drop(shard);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.obs_counter("rejected", 1);
            return;
        }
        let now = (self.clock)();
        let generation = self.generation.load(Ordering::Acquire);
        let mut evicted = 0u64;
        {
            // Global byte/entry accounting happens under the shard lock so
            // the totals can never transiently undercount a removal that
            // races an in-flight insert (which would wrap the unsigned
            // counters and break the capacity invariant observers rely on).
            let mut shard = self
                .shard_for(&key)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let mut freed = 0u64;
            let mut removed = 0u64;
            if let Some(idx) = shard.map.get(&key).copied() {
                removed += 1;
                freed += shard.remove(idx);
            }
            while shard.bytes + weight > self.per_shard_capacity {
                let tail = shard.tail;
                if tail == NIL {
                    break;
                }
                freed += shard.remove(tail);
                evicted += 1;
                removed += 1;
            }
            shard.insert_front(Entry {
                key,
                value,
                weight,
                expires_at: self.ttl_nanos.map(|ttl| now.saturating_add(ttl)),
                generation,
                prev: NIL,
                next: NIL,
            });
            if removed > 0 {
                self.entries.fetch_sub(removed, Ordering::Relaxed);
            }
            self.entries.fetch_add(1, Ordering::Relaxed);
            if weight >= freed {
                self.bytes.fetch_add(weight - freed, Ordering::Relaxed);
            } else {
                self.bytes.fetch_sub(freed - weight, Ordering::Relaxed);
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.obs_counter("insertions", 1);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs_counter("evictions", evicted);
        }
        if af_obs::enabled() {
            af_obs::gauge("cache.bytes", self.bytes.load(Ordering::Relaxed) as f64);
            af_obs::gauge(
                &format!("cache.{}.bytes", self.name),
                self.bytes.load(Ordering::Relaxed) as f64,
            );
        }
    }

    /// Memoizes `compute` under `key`: returns the cached value on a hit,
    /// otherwise computes, inserts, and returns it. `compute` runs
    /// *outside* the shard lock, so two threads racing on the same cold key
    /// may both compute; for pure functions (the only sound use) they
    /// produce identical values and the second insert is a no-op overwrite.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let value = compute();
        self.insert(key, value.clone());
        value
    }

    /// Logically drops every current entry in O(1) by bumping the cache
    /// generation; stale entries are reclaimed lazily on access or by size
    /// pressure. Use after anything that changes the meaning of existing
    /// keys (model reload, tech change).
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.obs_counter("invalidations", 1);
    }

    /// Eagerly removes every entry and returns the memory immediately.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let removed = shard.map.len() as u64;
            let freed = shard.bytes;
            shard.map.clear();
            shard.slots.clear();
            shard.free.clear();
            shard.head = NIL;
            shard.tail = NIL;
            shard.bytes = 0;
            self.entries.fetch_sub(removed, Ordering::Relaxed);
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Live entry count.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// `true` when no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total live weight (bytes for size-aware weighers).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The total capacity in weight units (per-shard capacity × shards).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.per_shard_capacity * self.shards.len() as u64
    }

    /// The name this cache registers its obs metrics under.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshots all counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_cache(capacity: u64) -> Cache<u64, u64> {
        CacheBuilder::new("test")
            .capacity_bytes(capacity)
            .shards(1)
            .build()
    }

    #[test]
    fn get_after_put_round_trips() {
        let c = count_cache(8);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.get(&3), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 2));
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = count_cache(2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.get(&1), Some(1)); // refresh 1 → 2 is now LRU
        c.insert(3, 3);
        assert_eq!(c.get(&2), None, "LRU entry must be the one evicted");
        assert_eq!(c.get(&1), Some(1));
        assert_eq!(c.get(&3), Some(3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn replacing_a_key_updates_in_place() {
        let c = count_cache(2);
        c.insert(1, 1);
        c.insert(1, 100);
        assert_eq!(c.get(&1), Some(100));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn weigher_bounds_bytes_and_rejects_oversize() {
        let c: Cache<u64, Vec<u8>> = CacheBuilder::new("weighed")
            .capacity_bytes(100)
            .shards(1)
            .build_weighed(FnWeigher(|_k: &u64, v: &Vec<u8>| v.len() as u64));
        c.insert(1, vec![0u8; 60]);
        c.insert(2, vec![0u8; 60]); // must evict 1 to fit
        assert!(c.bytes() <= 100);
        assert_eq!(c.get(&1), None);
        assert!(c.get(&2).is_some());
        c.insert(3, vec![0u8; 200]); // heavier than the whole cache
        assert_eq!(c.get(&3), None);
        assert_eq!(c.stats().rejected, 1);
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn ttl_never_serves_expired_entries() {
        let now = Arc::new(AtomicU64::new(0));
        let clock_now = Arc::clone(&now);
        let c: Cache<u64, u64> = CacheBuilder::new("ttl")
            .capacity_bytes(16)
            .shards(1)
            .ttl(Duration::from_nanos(100))
            .clock(Arc::new(move || clock_now.load(Ordering::SeqCst)))
            .build();
        c.insert(1, 1);
        now.store(99, Ordering::SeqCst);
        assert_eq!(c.get(&1), Some(1), "still live just before the deadline");
        now.store(100, Ordering::SeqCst);
        assert_eq!(c.get(&1), None, "expired exactly at the deadline");
        assert_eq!(c.stats().expired, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn invalidate_all_hides_old_generation() {
        let c = count_cache(8);
        c.insert(1, 1);
        c.insert(2, 2);
        c.invalidate_all();
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), None, "stale entry reclaimed lazily");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_frees_everything_eagerly() {
        let c = count_cache(8);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.get(&1), None);
        c.insert(3, 3);
        assert_eq!(c.get(&3), Some(3));
    }

    #[test]
    fn memoization_runs_compute_once_per_key() {
        let c = count_cache(8);
        let mut calls = 0;
        let v1 = c.get_or_insert_with(7, || {
            calls += 1;
            70
        });
        let v2 = c.get_or_insert_with(7, || {
            calls += 1;
            71
        });
        assert_eq!((v1, v2, calls), (70, 70, 1));
    }

    #[test]
    fn hit_ratio_reflects_traffic() {
        let c = count_cache(8);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.insert(1, 1);
        let _ = c.get(&1);
        let _ = c.get(&2);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sharded_cache_respects_global_capacity() {
        let c: Cache<u64, u64> = CacheBuilder::new("sharded")
            .capacity_bytes(64)
            .shards(4)
            .build();
        for k in 0..1000 {
            c.insert(k, k);
        }
        assert!(c.len() <= 64);
        assert!(c.bytes() <= 64);
    }
}
