//! Disk spill for cross-run warm caches.
//!
//! The in-memory [`Cache`](crate::Cache) is process-local; long-lived
//! artifacts (routed-sample labels, canonical design evaluations) are worth
//! keeping across runs. [`SpillBackend`] is the minimal byte-oriented
//! contract a cache tier composes with: callers serialize at their own
//! layer (this crate stays encoding-agnostic and dependency-free) and key
//! spilled blobs by [`ContentHash`], so a stale or renamed file can never
//! be confused with live content.
//!
//! [`DirSpill`] is the built-in backend: one file per key under a
//! directory, written atomically (temp file + rename) so a crash mid-write
//! leaves either the old blob or none. `analogfold` additionally adapts its
//! checkpoint `ShardStore` to this trait so flow/dataset caches spill next
//! to the dataset shards they memoize.

use crate::ContentHash;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A byte-oriented, content-addressed spill target. Implementations must be
/// safe to call from multiple threads; last-writer-wins semantics are
/// acceptable because a given key only ever maps to one logical content.
pub trait SpillBackend: Send + Sync {
    /// Persists `bytes` under `key`, replacing any previous blob.
    fn put(&self, key: &ContentHash, bytes: &[u8]) -> io::Result<()>;
    /// Fetches the blob for `key`; `Ok(None)` when absent or unreadable
    /// (spill is an optimization — corruption must degrade to a miss, not
    /// an error).
    fn get(&self, key: &ContentHash) -> io::Result<Option<Vec<u8>>>;
}

/// One-file-per-key spill under a directory; atomic writes, misses on
/// corruption.
pub struct DirSpill {
    dir: PathBuf,
}

impl DirSpill {
    /// Opens (creating if needed) a spill directory.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path_for(&self, key: &ContentHash) -> PathBuf {
        self.dir.join(format!("{}.spill", key.to_hex()))
    }
}

impl SpillBackend for DirSpill {
    fn put(&self, key: &ContentHash, bytes: &[u8]) -> io::Result<()> {
        let final_path = self.path_for(key);
        // Writer-unique temp name: concurrent writers of the same key each
        // rename their own file; either full blob winning is fine.
        let tmp = self.dir.join(format!(
            "{}.{:x}.tmp",
            key.to_hex(),
            std::process::id() as u64 ^ (std::ptr::from_ref(self) as u64)
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &final_path)
    }

    fn get(&self, key: &ContentHash) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.path_for(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("af-cache-spill-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips() {
        let dir = tmp_dir("roundtrip");
        let spill = DirSpill::new(&dir).unwrap();
        let key = ContentHash::of_bytes(b"some canonical content");
        assert_eq!(spill.get(&key).unwrap(), None);
        spill.put(&key, b"payload").unwrap();
        assert_eq!(spill.get(&key).unwrap().as_deref(), Some(&b"payload"[..]));
        spill.put(&key, b"replaced").unwrap();
        assert_eq!(spill.get(&key).unwrap().as_deref(), Some(&b"replaced"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let dir = tmp_dir("distinct");
        let spill = DirSpill::new(&dir).unwrap();
        let a = ContentHash::of_bytes(b"a");
        let b = ContentHash::of_bytes(b"b");
        spill.put(&a, b"A").unwrap();
        spill.put(&b, b"B").unwrap();
        assert_eq!(spill.get(&a).unwrap().as_deref(), Some(&b"A"[..]));
        assert_eq!(spill.get(&b).unwrap().as_deref(), Some(&b"B"[..]));
        let _ = fs::remove_dir_all(&dir);
    }
}
