//! Rendezvous (highest-random-weight) hashing over named members.
//!
//! [`Ring`] deterministically assigns keys to a set of member ids: every
//! observer with the same member set agrees on the owner of every key, with
//! no coordination and no stored assignment table. The construction is the
//! classic HRW scheme — score every `(member, key)` pair with a stable
//! 128-bit content hash and pick the member with the highest score — which
//! gives the two properties a fleet needs from its request router and its
//! distributed cache tier:
//!
//! - **Minimal disruption.** Removing a member only reassigns the keys that
//!   member owned (they fall to their second-ranked member); every other
//!   key keeps its owner, so warm cache entries survive membership churn.
//!   Adding a member only steals the keys the newcomer now wins.
//! - **Balance.** Scores are i.i.d. uniform per member, so load splits
//!   evenly in expectation across any member count.
//!
//! [`Ring::ranked`] returns the full preference order, which doubles as the
//! replica list: the first entry is the owner, the second is the
//! retry-on-other-replica target when the owner is unreachable.
//!
//! Hashing goes through [`ContentHasher`](crate::ContentHasher), whose
//! output is pinned by golden vectors — assignments are stable across
//! platforms and workspace versions, which on-disk spill tiers and fleet
//! smoke tests rely on.

use crate::ContentHasher;

/// Deterministic rendezvous-hash ring over string member ids.
///
/// # Examples
///
/// ```
/// use af_cache::ring::Ring;
///
/// let ring = Ring::new(["a", "b", "c"]);
/// let owner = ring.assign(b"some-key").unwrap().to_string();
/// // Same members (any insertion order) => same owner.
/// let again = Ring::new(["c", "a", "b"]);
/// assert_eq!(again.assign(b"some-key").unwrap(), owner);
/// // Removing a *different* member never moves the key.
/// let mut smaller = ring.clone();
/// let other = ring
///     .members()
///     .iter()
///     .find(|m| **m != owner)
///     .unwrap()
///     .clone();
/// smaller.remove(&other);
/// assert_eq!(smaller.assign(b"some-key").unwrap(), owner);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// Sorted, deduplicated member ids. Sorting makes construction-order
    /// irrelevant so two observers building from the same set agree.
    members: Vec<String>,
}

impl Ring {
    /// Builds a ring from an iterator of member ids (duplicates collapse).
    pub fn new<I, S>(members: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut ring = Self {
            members: members.into_iter().map(Into::into).collect(),
        };
        ring.members.sort();
        ring.members.dedup();
        ring
    }

    /// The current member ids, sorted.
    #[must_use]
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a member (no-op if already present). Returns `true` when added.
    pub fn add(&mut self, id: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(id)) {
            Ok(_) => false,
            Err(pos) => {
                self.members.insert(pos, id.to_string());
                true
            }
        }
    }

    /// Removes a member. Returns `true` when it was present.
    pub fn remove(&mut self, id: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(id)) {
            Ok(pos) => {
                self.members.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The rendezvous score of `(member, key)`: uniform per pair, stable
    /// forever. Ties (astronomically unlikely with 128-bit scores) break by
    /// member id so the ranking is still a total order.
    fn score(member: &str, key: &[u8]) -> [u64; 2] {
        let mut h = ContentHasher::new();
        h.write_str("af-fleet.ring.v1");
        h.write_str(member);
        h.write(key);
        h.finish().0
    }

    /// The owner of `key`, or `None` on an empty ring.
    #[must_use]
    pub fn assign(&self, key: &[u8]) -> Option<&str> {
        self.members
            .iter()
            .max_by(|a, b| {
                Self::score(a, key)
                    .cmp(&Self::score(b, key))
                    .then_with(|| a.cmp(b))
            })
            .map(String::as_str)
    }

    /// The top-`n` members for `key` in preference order (owner first).
    /// Returns fewer than `n` when the ring is smaller.
    #[must_use]
    pub fn ranked(&self, key: &[u8], n: usize) -> Vec<&str> {
        let mut scored: Vec<(_, &str)> = self
            .members
            .iter()
            .map(|m| (Self::score(m, key), m.as_str()))
            .collect();
        // Descending by score, id as the (unreachable) tiebreak.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        scored.into_iter().take(n).map(|(_, m)| m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i}").into_bytes()).collect()
    }

    fn counts(ring: &Ring, keys: &[Vec<u8>]) -> HashMap<String, usize> {
        let mut out = HashMap::new();
        for k in keys {
            *out.entry(ring.assign(k).unwrap().to_string()).or_insert(0) += 1;
        }
        out
    }

    #[test]
    fn empty_ring_assigns_nothing() {
        let ring = Ring::default();
        assert!(ring.is_empty());
        assert_eq!(ring.assign(b"k"), None);
        assert!(ring.ranked(b"k", 2).is_empty());
    }

    #[test]
    fn assignment_is_deterministic_and_order_free() {
        let a = Ring::new(["w1", "w2", "w3", "w4"]);
        let b = Ring::new(["w4", "w2", "w1", "w3", "w2"]);
        for k in keys(200) {
            assert_eq!(a.assign(&k), b.assign(&k));
            assert_eq!(a.ranked(&k, 4), b.ranked(&k, 4));
        }
    }

    #[test]
    fn ranked_owner_matches_assign_and_is_a_permutation() {
        let ring = Ring::new(["w1", "w2", "w3"]);
        for k in keys(50) {
            let ranked = ring.ranked(&k, 8);
            assert_eq!(ranked.len(), 3, "ranked caps at ring size");
            assert_eq!(ranked[0], ring.assign(&k).unwrap());
            let mut sorted: Vec<_> = ranked.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, ["w1", "w2", "w3"]);
        }
    }

    #[test]
    fn balance_within_20_percent_for_2_to_8_members() {
        let ks = keys(4000);
        for n in 2..=8usize {
            let ring = Ring::new((0..n).map(|i| format!("worker-{i}")));
            let by = counts(&ring, &ks);
            let ideal = ks.len() as f64 / n as f64;
            for (m, c) in &by {
                let dev = (*c as f64 - ideal).abs() / ideal;
                assert!(
                    dev <= 0.20,
                    "member {m} holds {c} of {} keys at n={n} ({:.1}% off ideal)",
                    ks.len(),
                    dev * 100.0
                );
            }
            assert_eq!(by.len(), n, "every member owns some keys at n={n}");
        }
    }

    #[test]
    fn removal_remaps_only_the_removed_members_keys() {
        let ring = Ring::new(["w1", "w2", "w3", "w4", "w5"]);
        let ks = keys(1000);
        for gone in ring.members().to_vec() {
            let mut smaller = ring.clone();
            assert!(smaller.remove(&gone));
            for k in &ks {
                let before = ring.assign(k).unwrap();
                let after = smaller.assign(k).unwrap();
                if before == gone {
                    // Orphaned keys fall to their second-ranked member.
                    assert_eq!(after, ring.ranked(k, 2)[1]);
                } else {
                    assert_eq!(after, before, "unrelated key moved off {before}");
                }
            }
        }
    }

    #[test]
    fn add_is_the_inverse_of_remove() {
        let mut ring = Ring::new(["w1", "w2", "w3"]);
        let ks = keys(300);
        let before: Vec<_> = ks
            .iter()
            .map(|k| ring.assign(k).unwrap().to_string())
            .collect();
        assert!(ring.remove("w2"));
        assert!(!ring.remove("w2"), "double-remove is a no-op");
        assert!(ring.add("w2"));
        assert!(!ring.add("w2"), "double-add is a no-op");
        for (k, want) in ks.iter().zip(&before) {
            assert_eq!(ring.assign(k).unwrap(), want);
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Builds `n` distinct member ids salted so different cases exercise
        /// different id sets (and therefore different score landscapes).
        fn members(n: usize, salt: u64) -> Vec<String> {
            (0..n).map(|i| format!("m{salt:x}-{i}")).collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn assignment_deterministic_under_shuffle(
                n in 2usize..=8,
                salt in 0u64..1_000_000,
                key in prop::collection::vec(0u8..=255, 0..64),
                rot in 0usize..8,
            ) {
                let ids = members(n, salt);
                let a = Ring::new(ids.clone());
                let mut shuffled = ids;
                let len = shuffled.len();
                shuffled.rotate_left(rot % len);
                let b = Ring::new(shuffled);
                prop_assert_eq!(a.assign(&key), b.assign(&key));
                prop_assert_eq!(a.ranked(&key, n), b.ranked(&key, n));
            }

            #[test]
            fn balanced_within_20_percent(n in 2usize..=8, salt in 0u64..1_000_000) {
                let ring = Ring::new(members(n, salt));
                let ks = keys(4000);
                let by = counts(&ring, &ks);
                let ideal = ks.len() as f64 / n as f64;
                for c in by.values() {
                    let dev = (*c as f64 - ideal).abs() / ideal;
                    prop_assert!(dev <= 0.20, "deviation {:.3} at n={}", dev, n);
                }
            }

            #[test]
            fn removal_minimal_remap(
                n in 2usize..=8,
                salt in 0u64..1_000_000,
                victim in 0usize..8,
            ) {
                let ring = Ring::new(members(n, salt));
                let gone = ring.members()[victim % n].to_string();
                let mut smaller = ring.clone();
                smaller.remove(&gone);
                for k in keys(500) {
                    let before = ring.assign(&k).unwrap();
                    if before == gone {
                        // Orphans fall to their second choice (if any remain).
                        if let Some(after) = smaller.assign(&k) {
                            prop_assert_eq!(after, ring.ranked(&k, 2)[1]);
                        }
                    } else {
                        prop_assert_eq!(smaller.assign(&k).unwrap(), before);
                    }
                }
            }
        }
    }
}
