//! Property-based tests of the LRU/admission core: capacity is a hard
//! ceiling under arbitrary operation interleavings, get-after-put round
//! trips, TTL never serves an expired entry, and concurrent hammering
//! neither panics nor deadlocks.

use af_cache::{Cache, CacheBuilder, FnWeigher};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Applies a random op sequence to a size-weighed cache and a reference
/// model, checking the invariants after every step.
fn run_ops(capacity: u64, shards: usize, ops: &[(u8, u64, u8)]) {
    let cache: Cache<u64, Vec<u8>> = CacheBuilder::new("prop")
        .capacity_bytes(capacity)
        .shards(shards)
        .build_weighed(FnWeigher(|_k: &u64, v: &Vec<u8>| v.len() as u64));
    // Model: key → value it must hold *if present*. LRU may evict at will,
    // so presence is not asserted — but a present value must be the last
    // one inserted, and totals must respect the bound.
    let mut last_put: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
    for &(kind, key, size) in ops {
        match kind % 3 {
            0 | 1 => {
                let value = vec![key as u8; size as usize];
                last_put.insert(key, value.clone());
                cache.insert(key, value);
            }
            _ => {
                if let Some(got) = cache.get(&key) {
                    assert_eq!(
                        Some(&got),
                        last_put.get(&key),
                        "hit must return the last inserted value for key {key}"
                    );
                }
            }
        }
        assert!(
            cache.bytes() <= cache.capacity(),
            "bytes {} exceeded capacity {}",
            cache.bytes(),
            cache.capacity()
        );
    }
    let s = cache.stats();
    assert_eq!(s.entries, cache.len());
    assert!(s.insertions <= ops.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_is_never_exceeded(
        capacity in 1u64..512,
        shards in 1usize..8,
        ops in prop::collection::vec((0u8..3, 0u64..32, 0u8..64), 0..200),
    ) {
        run_ops(capacity, shards, &ops);
    }

    #[test]
    fn get_after_put_round_trips(
        keys in prop::collection::vec(0u64..1000, 1..50),
    ) {
        // Capacity comfortably above the working set: every put must be
        // readable back verbatim.
        let cache: Cache<u64, u64> = CacheBuilder::new("prop-rt")
            .capacity_bytes(4096)
            .build();
        for &k in &keys {
            cache.insert(k, k.wrapping_mul(31));
        }
        for &k in &keys {
            prop_assert_eq!(cache.get(&k), Some(k.wrapping_mul(31)));
        }
    }

    #[test]
    fn ttl_never_serves_expired_entries(
        ttl in 1u64..1000,
        steps in prop::collection::vec((0u64..50, 0u64..300), 1..100),
    ) {
        let now = Arc::new(AtomicU64::new(0));
        let clock_now = Arc::clone(&now);
        let cache: Cache<u64, u64> = CacheBuilder::new("prop-ttl")
            .capacity_bytes(4096)
            .ttl(Duration::from_nanos(ttl))
            .clock(Arc::new(move || clock_now.load(Ordering::SeqCst)))
            .build();
        let mut inserted_at: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &(key, advance) in &steps {
            let t = now.load(Ordering::SeqCst) + advance;
            now.store(t, Ordering::SeqCst);
            if key % 2 == 0 {
                cache.insert(key, key);
                inserted_at.insert(key, t);
            } else if let Some(v) = cache.get(&key) {
                let born = inserted_at[&key];
                prop_assert!(
                    t < born + ttl,
                    "served key {} at t={} but it expired at {}",
                    key, t, born + ttl
                );
                prop_assert_eq!(v, key);
            }
        }
    }

    #[test]
    fn concurrent_hammering_never_panics_or_deadlocks(
        seed in 0u64..1000,
        n_threads in 2usize..6,
    ) {
        let cache: Arc<Cache<u64, Vec<u8>>> = Arc::new(
            CacheBuilder::new("prop-conc")
                .capacity_bytes(2048)
                .shards(4)
                .build_weighed(FnWeigher(|_k: &u64, v: &Vec<u8>| v.len() as u64)),
        );
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let mut x = seed.wrapping_add(t as u64).wrapping_mul(2862933555777941757).wrapping_add(1);
                    for i in 0..500u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let key = x % 64;
                        match x % 5 {
                            0 | 1 => cache.insert(key, vec![key as u8; (x % 48) as usize]),
                            2 => {
                                if let Some(v) = cache.get(&key) {
                                    assert!(v.iter().all(|&b| b == key as u8));
                                }
                            }
                            3 => {
                                let v = cache.get_or_insert_with(key, || vec![key as u8; 8]);
                                assert!(v.iter().all(|&b| b == key as u8));
                            }
                            _ => {
                                if i % 97 == 0 {
                                    cache.invalidate_all();
                                } else if i % 193 == 0 {
                                    cache.clear();
                                }
                            }
                        }
                        assert!(
                            cache.bytes() <= cache.capacity(),
                            "capacity bound violated under concurrency"
                        );
                    }
                });
            }
        });
        // Post-quiescence the strict bound must hold.
        prop_assert!(cache.bytes() <= cache.capacity());
    }
}
