//! A minimal, self-contained JSON parser used to *validate* emitted event
//! lines (`obs-check`, unit tests) without pulling any dependency into
//! `af-obs`. This is a checker, not a data-binding layer — the workspace's
//! vendored `serde_json` remains the interchange library elsewhere.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether the value is a number or `null` (the encoding of non-finite
    /// floats).
    #[must_use]
    pub fn is_num_or_null(&self) -> bool {
        matches!(self, Json::Num(_) | Json::Null)
    }
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// A message describing the first syntax error and its byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Validates one JSONL event line against the `af-obs` schema; returns the
/// event's `(type, name-or-path)` on success.
///
/// # Errors
///
/// A message describing the schema violation.
pub fn validate_event_line(line: &str) -> Result<(String, String), String> {
    let v = parse(line)?;
    let ty = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string field `type`")?
        .to_string();
    let seq = v.get("seq").ok_or("missing field `seq`")?;
    if seq.as_num().is_none_or(|s| s < 0.0 || s.fract() != 0.0) {
        return Err("`seq` must be a non-negative integer".into());
    }
    let require_str = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let require_num_or_null = |key: &str| -> Result<(), String> {
        match v.get(key) {
            Some(x) if x.is_num_or_null() => Ok(()),
            _ => Err(format!("field `{key}` must be a number or null")),
        }
    };
    match ty.as_str() {
        "span" => {
            let path = require_str("path")?;
            let wall = v
                .get("wall_us")
                .and_then(Json::as_num)
                .ok_or("missing numeric field `wall_us`")?;
            if wall < 0.0 || wall.fract() != 0.0 {
                return Err("`wall_us` must be a non-negative integer".into());
            }
            Ok((ty, path))
        }
        "counter" => {
            let name = require_str("name")?;
            let val = v
                .get("value")
                .and_then(Json::as_num)
                .ok_or("missing numeric field `value`")?;
            if val < 0.0 || val.fract() != 0.0 {
                return Err("counter `value` must be a non-negative integer".into());
            }
            Ok((ty, name))
        }
        "gauge" => {
            let name = require_str("name")?;
            require_num_or_null("value")?;
            Ok((ty, name))
        }
        "log" => {
            require_str("level")?;
            let message = require_str("message")?;
            Ok((ty, message))
        }
        "histogram" => {
            let name = require_str("name")?;
            let count = v
                .get("count")
                .and_then(Json::as_num)
                .ok_or("missing numeric field `count`")?;
            if count < 0.0 || count.fract() != 0.0 {
                return Err("histogram `count` must be a non-negative integer".into());
            }
            for key in ["sum", "min", "max", "mean", "p50", "p90", "p99"] {
                require_num_or_null(key)?;
            }
            Ok((ty, name))
        }
        other => Err(format!("unknown event type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,null,true],"b":{"c":"x\n"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap(), &{
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Null,
                Json::Bool(true),
            ])
        });
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{broken").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn validates_every_event_kind() {
        for e in [
            crate::Event::Span {
                path: "a/b#1".into(),
                wall_us: 3,
                seq: 0,
            },
            crate::Event::Counter {
                name: "c".into(),
                value: 9,
                seq: 1,
            },
            crate::Event::Gauge {
                name: "g".into(),
                value: -1.5,
                seq: 2,
            },
            crate::Event::Histogram {
                name: "h".into(),
                count: 2,
                sum: 3.0,
                min: 1.0,
                max: 2.0,
                mean: 1.5,
                p50: 1.0,
                p90: 2.0,
                p99: 2.0,
                seq: 3,
            },
            crate::Event::Log {
                level: "warn".into(),
                message: "shard 3 corrupt".into(),
                seq: 4,
            },
        ] {
            let (ty, name) = validate_event_line(&e.to_json()).unwrap();
            assert_eq!(ty, e.kind());
            assert_eq!(name, e.name());
        }
    }

    #[test]
    fn validation_rejects_schema_violations() {
        assert!(validate_event_line("{\"type\":\"span\"}").is_err());
        assert!(validate_event_line("{\"type\":\"blob\",\"seq\":0}").is_err());
        assert!(
            validate_event_line("{\"type\":\"counter\",\"name\":\"x\",\"value\":1.5,\"seq\":0}")
                .is_err(),
            "fractional counter"
        );
        assert!(validate_event_line("not json").is_err());
    }
}
