//! The lock-striped in-memory metric registry.
//!
//! Worker threads from every corner of the workspace (the `afrt` pool
//! included) record into the same registry; striping by name hash keeps
//! unrelated metrics from contending on one lock. All locks recover from
//! poisoning, so a panic inside an instrumented, panic-isolated task never
//! wedges observability for the rest of the process.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use crate::event::Event;

/// Number of independent lock stripes.
const STRIPES: usize = 16;

/// Histogram values retained verbatim for percentile estimation; beyond
/// this, only count/sum/min/max keep updating (documented in DESIGN.md §8).
const HIST_CAPACITY: usize = 8192;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of closes recorded for this path.
    pub count: u64,
    /// Total wall-clock seconds across closes.
    pub total_s: f64,
    /// Longest single close, seconds.
    pub max_s: f64,
}

/// Aggregated statistics of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistStat {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Minimum recorded value.
    pub min: f64,
    /// Maximum recorded value.
    pub max: f64,
    values: Vec<f64>,
}

impl HistStat {
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if self.values.len() < HIST_CAPACITY {
            self.values.push(v);
        }
    }

    /// Arithmetic mean of all recorded values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank percentile over the retained values (`q` in `[0, 100]`).
    /// Sorting makes the estimate independent of cross-thread arrival order.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let rank = ((q / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }
}

/// One stripe of the registry: each metric family keyed by name.
#[derive(Default)]
struct Stripe {
    spans: HashMap<String, SpanStat>,
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    hists: HashMap<String, HistStat>,
}

/// The striped registry.
pub struct Registry {
    stripes: Vec<Mutex<Stripe>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
        }
    }
}

/// FNV-1a; dependency-free and stable across runs (`DefaultHasher` makes no
/// cross-version promise, and stripe choice should not change under us).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    fn stripe(&self, name: &str) -> MutexGuard<'_, Stripe> {
        lock_recover(&self.stripes[(fnv1a(name) % STRIPES as u64) as usize])
    }

    /// Records one span close under its aggregation path.
    pub fn record_span(&self, path: &str, seconds: f64) {
        let mut s = self.stripe(path);
        let stat = s.spans.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_s += seconds;
        stat.max_s = stat.max_s.max(seconds);
    }

    /// Adds to a counter.
    pub fn add_counter(&self, name: &str, delta: u64) {
        *self
            .stripe(name)
            .counters
            .entry(name.to_string())
            .or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.stripe(name).gauges.insert(name.to_string(), value);
    }

    /// Records a histogram value.
    pub fn record_hist(&self, name: &str, value: f64) {
        self.stripe(name)
            .hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Name-sorted snapshot of all span statistics.
    #[must_use]
    pub fn span_snapshot(&self) -> Vec<(String, SpanStat)> {
        let mut out: Vec<(String, SpanStat)> = Vec::new();
        for stripe in &self.stripes {
            let s = lock_recover(stripe);
            out.extend(s.spans.iter().map(|(k, v)| (k.clone(), *v)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Name-sorted snapshot of all counters.
    #[must_use]
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for stripe in &self.stripes {
            let s = lock_recover(stripe);
            out.extend(s.counters.iter().map(|(k, v)| (k.clone(), *v)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Name-sorted snapshot of all gauges.
    #[must_use]
    pub fn gauge_snapshot(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for stripe in &self.stripes {
            let s = lock_recover(stripe);
            out.extend(s.gauges.iter().map(|(k, v)| (k.clone(), *v)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Name-sorted snapshot of all histograms.
    #[must_use]
    pub fn hist_snapshot(&self) -> Vec<(String, HistStat)> {
        let mut out: Vec<(String, HistStat)> = Vec::new();
        for stripe in &self.stripes {
            let s = lock_recover(stripe);
            out.extend(s.hists.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Flush events for every counter, gauge, and histogram, in a
    /// deterministic (kind, name) order. `next_seq` assigns sequence
    /// numbers.
    pub fn metric_events(&self, mut next_seq: impl FnMut() -> u64) -> Vec<Event> {
        let mut events = Vec::new();
        for (name, value) in self.counter_snapshot() {
            events.push(Event::Counter {
                name,
                value,
                seq: next_seq(),
            });
        }
        for (name, value) in self.gauge_snapshot() {
            events.push(Event::Gauge {
                name,
                value,
                seq: next_seq(),
            });
        }
        for (name, h) in self.hist_snapshot() {
            events.push(Event::Histogram {
                seq: next_seq(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                mean: h.mean(),
                p50: h.percentile(50.0),
                p90: h.percentile(90.0),
                p99: h.percentile(99.0),
                name,
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::default();
        r.add_counter("a", 2);
        r.add_counter("a", 3);
        r.add_counter("b", 1);
        assert_eq!(r.counter_snapshot(), vec![("a".into(), 5), ("b".into(), 1)]);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let r = Registry::default();
        for v in 1..=100 {
            r.record_hist("h", f64::from(v));
        }
        let snap = r.hist_snapshot();
        let (_, h) = &snap[0];
        assert_eq!(h.count, 100);
        assert!((h.percentile(50.0) - 50.0).abs() < 1e-12);
        assert!((h.percentile(90.0) - 90.0).abs() < 1e-12);
        assert!((h.percentile(99.0) - 99.0).abs() < 1e-12);
        assert!((h.percentile(100.0) - 100.0).abs() < 1e-12);
        assert!((h.mean() - 50.5).abs() < 1e-12);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn span_stats_aggregate_by_path() {
        let r = Registry::default();
        r.record_span("relax/restart", 0.5);
        r.record_span("relax/restart", 1.5);
        let snap = r.span_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.count, 2);
        assert!((snap[0].1.total_s - 2.0).abs() < 1e-12);
        assert!((snap[0].1.max_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cross_thread_aggregation() {
        let r = std::sync::Arc::new(Registry::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..100 {
                        r.add_counter("hits", 1);
                        r.record_hist("vals", f64::from(i));
                    }
                });
            }
        });
        assert_eq!(r.counter_snapshot(), vec![("hits".into(), 800)]);
        assert_eq!(r.hist_snapshot()[0].1.count, 800);
    }

    #[test]
    fn metric_events_are_name_sorted() {
        let r = Registry::default();
        r.add_counter("z", 1);
        r.add_counter("a", 1);
        r.set_gauge("m", 2.0);
        r.record_hist("h", 1.0);
        let mut seq = 0u64;
        let events = r.metric_events(|| {
            seq += 1;
            seq - 1
        });
        let names: Vec<&str> = events.iter().map(crate::Event::name).collect();
        assert_eq!(names, vec!["a", "z", "m", "h"]);
        assert!(events.iter().enumerate().all(|(i, e)| e.seq() == i as u64));
    }
}
