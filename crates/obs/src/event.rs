//! The machine-readable event model: everything a sink ever sees.

use std::fmt::Write as _;

/// One observability event, emitted on span close or metric flush.
///
/// The JSONL encoding (one [`Event::to_json`] object per line) is the
/// stable interchange schema; `obs-check` validates it and DESIGN.md §8
/// documents it. Every event carries a monotonically increasing `seq`
/// assigned at emission, so logs can be re-ordered after multi-threaded
/// writes.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A timed span closed. `path` is the full hierarchical path
    /// (`flow/training`), possibly suffixed with an instance index
    /// (`relax/restart#3`).
    Span {
        /// Hierarchical span path.
        path: String,
        /// Wall-clock duration in microseconds.
        wall_us: u64,
        /// Global emission sequence number.
        seq: u64,
    },
    /// A monotonic counter's aggregated value at flush time.
    Counter {
        /// Counter name (`route.ripup_iterations`).
        name: String,
        /// Total accumulated value.
        value: u64,
        /// Global emission sequence number.
        seq: u64,
    },
    /// A gauge's last-written value at flush time.
    Gauge {
        /// Gauge name.
        name: String,
        /// Last recorded value.
        value: f64,
        /// Global emission sequence number.
        seq: u64,
    },
    /// A histogram's aggregate statistics at flush time.
    Histogram {
        /// Histogram name (`relax.potential_final`).
        name: String,
        /// Number of recorded values.
        count: u64,
        /// Sum of recorded values.
        sum: f64,
        /// Minimum recorded value.
        min: f64,
        /// Maximum recorded value.
        max: f64,
        /// Arithmetic mean.
        mean: f64,
        /// 50th percentile (nearest-rank over retained values).
        p50: f64,
        /// 90th percentile.
        p90: f64,
        /// 99th percentile.
        p99: f64,
        /// Global emission sequence number.
        seq: u64,
    },
    /// A log line surfaced through the event stream (e.g. a corrupt shard
    /// warning). Unlike metrics, logs are emitted immediately, not at
    /// flush.
    Log {
        /// Severity (`warn` is the only level emitted today).
        level: String,
        /// Human-readable message.
        message: String,
        /// Global emission sequence number.
        seq: u64,
    },
}

impl Event {
    /// The event's `type` tag in the JSONL schema.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Span { .. } => "span",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Histogram { .. } => "histogram",
            Event::Log { .. } => "log",
        }
    }

    /// The span path or metric name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Event::Span { path, .. } => path,
            Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Histogram { name, .. } => name,
            Event::Log { message, .. } => message,
        }
    }

    /// The emission sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            Event::Span { seq, .. }
            | Event::Counter { seq, .. }
            | Event::Gauge { seq, .. }
            | Event::Histogram { seq, .. }
            | Event::Log { seq, .. } => *seq,
        }
    }

    /// Encodes the event as one compact JSON object (no trailing newline).
    ///
    /// Non-finite floats encode as `null`, matching `serde_json`'s
    /// convention, so every emitted line is valid JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"type\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            Event::Span { path, wall_us, seq } => {
                push_str_field(&mut out, "path", path);
                let _ = write!(out, ",\"wall_us\":{wall_us},\"seq\":{seq}");
            }
            Event::Counter { name, value, seq } => {
                push_str_field(&mut out, "name", name);
                let _ = write!(out, ",\"value\":{value},\"seq\":{seq}");
            }
            Event::Gauge { name, value, seq } => {
                push_str_field(&mut out, "name", name);
                out.push_str(",\"value\":");
                push_f64(&mut out, *value);
                let _ = write!(out, ",\"seq\":{seq}");
            }
            Event::Histogram {
                name,
                count,
                sum,
                min,
                max,
                mean,
                p50,
                p90,
                p99,
                seq,
            } => {
                push_str_field(&mut out, "name", name);
                let _ = write!(out, ",\"count\":{count}");
                for (key, v) in [
                    ("sum", sum),
                    ("min", min),
                    ("max", max),
                    ("mean", mean),
                    ("p50", p50),
                    ("p90", p90),
                    ("p99", p99),
                ] {
                    out.push_str(",\"");
                    out.push_str(key);
                    out.push_str("\":");
                    push_f64(&mut out, *v);
                }
                let _ = write!(out, ",\"seq\":{seq}");
            }
            Event::Log {
                level,
                message,
                seq,
            } => {
                push_str_field(&mut out, "level", level);
                push_str_field(&mut out, "message", message);
                let _ = write!(out, ",\"seq\":{seq}");
            }
        }
        out.push('}');
        out
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest-round-trip float rendering.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_json_shape() {
        let e = Event::Span {
            path: "flow/training".into(),
            wall_us: 1234,
            seq: 7,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"span\",\"path\":\"flow/training\",\"wall_us\":1234,\"seq\":7}"
        );
        assert_eq!(e.kind(), "span");
        assert_eq!(e.name(), "flow/training");
        assert_eq!(e.seq(), 7);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::Gauge {
            name: "g".into(),
            value: f64::NAN,
            seq: 0,
        };
        assert!(e.to_json().contains("\"value\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::Counter {
            name: "weird\"name\\with\nstuff".into(),
            value: 1,
            seq: 0,
        };
        let json = e.to_json();
        assert!(json.contains("weird\\\"name\\\\with\\nstuff"));
        assert!(crate::json::parse(&json).is_ok());
    }
}
