//! Shared table formatting used by the obs tree report, the bench binaries'
//! Table 1/2 output, and `RoutedLayout::report`, so every human-readable
//! table in the workspace aligns the same way: a left-aligned label column
//! followed by right-aligned value columns.

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Right-aligned text.
    Text(String),
    /// A float rendered with the given number of decimals.
    Float(f64, usize),
    /// An integer.
    Int(i64),
    /// A placeholder for "no value".
    Dash,
}

impl Cell {
    fn render(&self, width: usize) -> String {
        match self {
            Cell::Text(s) => format!("{s:>width$}"),
            Cell::Float(v, prec) => format!("{v:>width$.prec$}"),
            Cell::Int(v) => format!("{v:>width$}"),
            Cell::Dash => format!("{:>width$}", "-"),
        }
    }
}

/// A fixed-geometry table: indent, label column width, per-column widths.
#[derive(Debug, Clone)]
pub struct Table {
    indent: usize,
    label_width: usize,
    col_widths: Vec<usize>,
}

impl Table {
    /// A table whose label column is `label_width` characters wide.
    #[must_use]
    pub fn new(label_width: usize) -> Self {
        Self {
            indent: 0,
            label_width,
            col_widths: Vec::new(),
        }
    }

    /// Indents every line by `n` spaces.
    #[must_use]
    pub fn indent(mut self, n: usize) -> Self {
        self.indent = n;
        self
    }

    /// Appends one value column of the given width.
    #[must_use]
    pub fn col(mut self, width: usize) -> Self {
        self.col_widths.push(width);
        self
    }

    /// Appends `n` value columns of the same width.
    #[must_use]
    pub fn cols(mut self, width: usize, n: usize) -> Self {
        self.col_widths.extend(std::iter::repeat_n(width, n));
        self
    }

    /// A header line: the label and right-aligned column titles.
    #[must_use]
    pub fn header(&self, label: &str, names: &[&str]) -> String {
        self.row(
            label,
            &names
                .iter()
                .map(|n| Cell::Text((*n).to_string()))
                .collect::<Vec<_>>(),
        )
    }

    /// One data line. Extra cells beyond the declared columns reuse the last
    /// declared width; missing cells leave their columns blank.
    #[must_use]
    pub fn row(&self, label: &str, cells: &[Cell]) -> String {
        let mut out = String::new();
        out.push_str(&" ".repeat(self.indent));
        out.push_str(&format!("{label:<width$}", width = self.label_width));
        let last = self.col_widths.last().copied().unwrap_or(12);
        for (i, cell) in cells.iter().enumerate() {
            let width = self.col_widths.get(i).copied().unwrap_or(last);
            out.push_str(&cell.render(width));
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align_with_header() {
        let t = Table::new(10).cols(8, 2);
        let h = t.header("name", &["a", "b"]);
        let r = t.row("x", &[Cell::Float(1.5, 2), Cell::Int(3)]);
        assert_eq!(h, format!("{:<10}{:>8}{:>8}", "name", "a", "b"));
        assert_eq!(r, format!("{:<10}{:>8.2}{:>8}", "x", 1.5, 3));
    }

    #[test]
    fn indent_and_dash() {
        let t = Table::new(4).col(6).indent(2);
        assert_eq!(t.row("x", &[Cell::Dash]), format!("  {:<4}{:>6}", "x", "-"));
    }

    #[test]
    fn mixed_column_widths() {
        let t = Table::new(12).col(12).col(8).col(10);
        let line = t.row("net0", &[Cell::Float(1.25, 2), Cell::Int(4), Cell::Int(9)]);
        assert_eq!(
            line,
            format!("{:<12}{:>12.2}{:>8}{:>10}", "net0", 1.25, 4, 9)
        );
    }

    #[test]
    fn trailing_whitespace_is_trimmed() {
        let t = Table::new(10).cols(8, 2);
        let line = t.row("only", &[Cell::Int(1)]);
        assert_eq!(line, format!("{:<10}{:>8}", "only", 1));
    }
}
