//! Prometheus text-format exposition of the registry.
//!
//! Renders the full registry — counters, gauges, histograms (as summaries
//! with p50/p90/p99 quantiles), and span aggregates (as `_seconds`
//! summaries) — in the Prometheus text format, version 0.0.4. `af-serve`
//! exposes this at `GET /metrics`.
//!
//! Metric names are sanitized to the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and a
//! leading digit gets an `_` prefix. Lines are name-sorted within each
//! family so the output is deterministic.
//!
//! # Labels
//!
//! af-obs metric names are flat strings, but an emitter can smuggle one
//! label through the name with a `|key=value` suffix:
//! `fleet.worker_load|worker=w1` renders as
//! `fleet_worker_load{worker="w1"}`. Entries sharing a base name group
//! under one `# TYPE` line, which is how the fleet coordinator aggregates
//! per-worker series on its `/metrics` without a registry redesign. A
//! malformed suffix (no `=`) stays part of the sanitized name.

use std::fmt::Write as _;

use crate::registry::Registry;

/// Splits an optional `|key=value` label suffix off an af-obs metric name,
/// returning the base name and the label pair.
#[must_use]
pub fn split_label(name: &str) -> (&str, Option<(&str, &str)>) {
    if let Some((base, tail)) = name.split_once('|') {
        if let Some((k, v)) = tail.split_once('=') {
            if !k.is_empty() {
                return (base, Some((k, v)));
            }
        }
    }
    (name, None)
}

/// The Prometheus series name for an af-obs metric name: sanitized base
/// plus an optional `{key="value"}` selector from the `|key=value` suffix.
/// Label values escape `\`, `"` and newlines per the text format.
fn series(name: &str) -> (String, String) {
    let (base, label) = split_label(name);
    let base = sanitize(base);
    let selector = match label {
        Some((k, v)) => {
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            format!("{{{}=\"{}\"}}", sanitize(k), escaped)
        }
        None => String::new(),
    };
    (base, selector)
}

/// Converts an af-obs metric name (`persist.shard_corrupt`,
/// `serve/handler`) to a valid Prometheus metric name.
#[must_use]
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v:?}");
    }
}

/// Renders the whole registry in Prometheus text format.
///
/// Counters map to `counter`, gauges to `gauge`, histograms to `summary`
/// (quantiles 0.5 / 0.9 / 0.99 over retained values, plus `_sum` and
/// `_count`), and span aggregates to `<path>_seconds` summaries carrying
/// `_sum`/`_count` only (af-obs keeps no per-close values for spans).
#[must_use]
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    // Labeled series sharing a base name sort adjacently (the `|` suffix
    // sorts after the bare name), so tracking the last emitted base is
    // enough to write each `# TYPE` exactly once per family.
    let mut last_type: Option<String> = None;
    for (name, value) in registry.counter_snapshot() {
        let (n, sel) = series(&name);
        if last_type.as_deref() != Some(n.as_str()) {
            let _ = writeln!(out, "# TYPE {n} counter");
            last_type = Some(n.clone());
        }
        let _ = writeln!(out, "{n}{sel} {value}");
    }
    last_type = None;
    for (name, value) in registry.gauge_snapshot() {
        let (n, sel) = series(&name);
        if last_type.as_deref() != Some(n.as_str()) {
            let _ = writeln!(out, "# TYPE {n} gauge");
            last_type = Some(n.clone());
        }
        out.push_str(&n);
        out.push_str(&sel);
        out.push(' ');
        push_f64(&mut out, value);
        out.push('\n');
    }
    for (name, h) in registry.hist_snapshot() {
        let n = sanitize(&name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [
            ("0.5", h.percentile(50.0)),
            ("0.9", h.percentile(90.0)),
            ("0.99", h.percentile(99.0)),
        ] {
            let _ = write!(out, "{n}{{quantile=\"{q}\"}} ");
            push_f64(&mut out, v);
            out.push('\n');
        }
        let _ = write!(out, "{n}_sum ");
        push_f64(&mut out, h.sum);
        out.push('\n');
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    for (path, s) in registry.span_snapshot() {
        let n = format!("{}_seconds", sanitize(&path));
        let _ = writeln!(out, "# TYPE {n} summary");
        let _ = write!(out, "{n}_sum ");
        push_f64(&mut out, s.total_s);
        out.push('\n');
        let _ = writeln!(out, "{n}_count {}", s.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("persist.shard_corrupt"), "persist_shard_corrupt");
        assert_eq!(sanitize("serve/handler#3"), "serve_handler_3");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn renders_every_family() {
        let r = Registry::default();
        r.add_counter("serve.requests", 7);
        r.set_gauge("serve.queue.depth", 3.0);
        for v in 1..=100 {
            r.record_hist("serve.latency_us", f64::from(v));
        }
        r.record_span("serve/predict", 0.25);
        let text = render(&r);
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 7\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3.0\n"));
        assert!(text.contains("serve_latency_us{quantile=\"0.5\"} 50.0\n"));
        assert!(text.contains("serve_latency_us{quantile=\"0.99\"} 99.0\n"));
        assert!(text.contains("serve_latency_us_count 100\n"));
        assert!(text.contains("serve_predict_seconds_sum 0.25\n"));
        assert!(text.contains("serve_predict_seconds_count 1\n"));
    }

    #[test]
    fn label_suffix_renders_as_selector() {
        let r = Registry::default();
        r.set_gauge("fleet.worker_load|worker=w1", 0.5);
        r.set_gauge("fleet.worker_load|worker=w2", 0.25);
        r.add_counter("fleet.requests|worker=w-1", 3);
        r.add_counter("plain", 1);
        let text = render(&r);
        assert!(text.contains("fleet_worker_load{worker=\"w1\"} 0.5\n"));
        assert!(text.contains("fleet_worker_load{worker=\"w2\"} 0.25\n"));
        assert!(text.contains("fleet_requests{worker=\"w-1\"} 3\n"));
        assert!(text.contains("plain 1\n"));
        assert_eq!(
            text.matches("# TYPE fleet_worker_load gauge").count(),
            1,
            "one TYPE line per labeled family"
        );
    }

    #[test]
    fn split_label_handles_malformed_suffixes() {
        assert_eq!(split_label("a.b"), ("a.b", None));
        assert_eq!(split_label("a|k=v"), ("a", Some(("k", "v"))));
        assert_eq!(split_label("a|novalue"), ("a|novalue", None));
        assert_eq!(split_label("a|=v"), ("a|=v", None));
        assert_eq!(split_label("a|k=v=w"), ("a", Some(("k", "v=w"))));
    }

    #[test]
    fn non_finite_values_render_as_prometheus_literals() {
        let r = Registry::default();
        r.set_gauge("g", f64::INFINITY);
        let text = render(&r);
        assert!(text.contains("g +Inf\n"));
    }

    #[test]
    fn output_is_deterministically_sorted() {
        let r = Registry::default();
        r.add_counter("z", 1);
        r.add_counter("a", 1);
        let text = render(&r);
        let za = text.find("\nz 1").unwrap();
        let aa = text.find("a 1").unwrap();
        assert!(aa < za);
    }
}
