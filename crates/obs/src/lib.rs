#![warn(missing_docs)]
//! `af-obs`: the workspace-wide observability layer.
//!
//! A zero-dependency, thread-safe facility for hierarchical timed spans,
//! typed counters/gauges/histograms, and two sinks (a human-readable tree
//! report and a machine-readable JSONL event log). It sits below every
//! other workspace crate — including the `afrt` runtime — so any of them
//! can record without dependency cycles.
//!
//! Recording is **disabled by default** and costs one relaxed atomic load
//! per call site while disabled. [`install`] turns it on for the lifetime
//! of the returned [`ObsGuard`]; dropping the guard flushes aggregated
//! metrics to the sink as one event per counter/gauge/histogram, then
//! disables recording again.
//!
//! Span paths are `/`-separated (`flow/relaxation/restart`); per-instance
//! spans append `#idx` to the emitted event path but aggregate under the
//! base path. Wall times are measured with the monotonic clock and *never*
//! feed back into seeded computation, so enabling observability cannot
//! perturb determinism.
//!
//! ```
//! let sink = std::sync::Arc::new(af_obs::MemorySink::new());
//! let guard = af_obs::install(sink.clone());
//! {
//!     let _outer = af_obs::span!("flow");
//!     let _inner = af_obs::span!("dataset");
//!     af_obs::counter("dataset.samples", 12);
//! }
//! drop(guard);
//! assert!(sink.events().iter().any(|e| e.name() == "flow/dataset"));
//! ```

pub mod event;
pub mod fmt;
pub mod json;
pub mod prometheus;
pub mod registry;
pub mod report;
pub mod sink;

pub use event::Event;
pub use registry::{HistStat, Registry, SpanStat};
pub use sink::{JsonlSink, MemorySink, Sink, TeeSink};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Fast-path switch: every recording call site checks this first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed registry + sink. Guarded by `ENABLED` so the read lock is
/// only ever taken while recording is on.
static STATE: RwLock<Option<Arc<Inner>>> = RwLock::new(None);

struct Inner {
    registry: Registry,
    sink: Arc<dyn Sink>,
    seq: AtomicU64,
}

impl Inner {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }
}

thread_local! {
    /// Stack of full span paths open on this thread; the top is the parent
    /// of the next span. Entries are full paths, not segments.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Whether recording is currently enabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_state<R>(f: impl FnOnce(&Inner) -> R) -> Option<R> {
    let guard = STATE
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.as_ref().map(|inner| f(inner))
}

/// Installs `sink` and enables recording until the returned guard drops.
///
/// Replaces any previously installed sink. On drop the guard flushes every
/// counter, gauge, and histogram as one event each (name-sorted, so flush
/// order is deterministic), flushes the sink, and disables recording.
#[must_use]
pub fn install(sink: Arc<dyn Sink>) -> ObsGuard {
    let inner = Arc::new(Inner {
        registry: Registry::default(),
        sink,
        seq: AtomicU64::new(0),
    });
    *STATE
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(inner);
    ENABLED.store(true, Ordering::SeqCst);
    ObsGuard {
        flushed: std::cell::Cell::new(false),
    }
}

/// Keeps recording enabled while alive; see [`install`].
pub struct ObsGuard {
    flushed: std::cell::Cell<bool>,
}

impl ObsGuard {
    /// Flushes aggregated metrics to the sink now (normally done on drop).
    /// Subsequent drops will not re-flush.
    pub fn flush(&self) {
        if self.flushed.replace(true) {
            return;
        }
        with_state(|i| {
            for e in i.registry.metric_events(|| i.next_seq()) {
                i.sink.emit(&e);
            }
            i.sink.flush();
        });
    }

    /// The human-readable tree report of everything recorded so far.
    #[must_use]
    pub fn report_text(&self) -> String {
        with_state(|i| report::render(&i.registry)).unwrap_or_default()
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        self.flush();
        ENABLED.store(false, Ordering::SeqCst);
        *STATE
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// The full path of the innermost span open on this thread (`""` if none).
#[must_use]
pub fn current_path() -> String {
    if !enabled() {
        return String::new();
    }
    SPAN_STACK.with(|s| s.borrow().last().cloned().unwrap_or_default())
}

/// Runs `f` with `parent` installed as this thread's span context.
///
/// This is how pool workers (`afrt`) inherit the submitting thread's span
/// path: the submitter captures [`current_path`], the worker wraps each
/// task in `with_parent`. The context is restored even if `f` panics, so
/// panic-isolated tasks cannot corrupt another task's span stack.
pub fn with_parent<R>(parent: &str, f: impl FnOnce() -> R) -> R {
    if !enabled() || parent.is_empty() {
        return f();
    }
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(parent.to_string()));
    let _pop = PopOnDrop;
    f()
}

/// A timed span, open until dropped. Created by [`span`] / [`span_idx`] /
/// the [`span!`] macro.
///
/// While open, the span is the parent of any span opened later on the same
/// thread (or on a pool worker via [`with_parent`]). On close it records
/// its wall time under its base path in the registry and emits one
/// [`Event::Span`] (with the `#idx` instance suffix, if any) to the sink.
pub struct SpanGuard {
    /// Base aggregation path; `None` when recording was disabled at open.
    path: Option<String>,
    /// Event path (base plus optional `#idx`).
    event_path: String,
    start: Instant,
    /// When set, recorded instead of the measured elapsed time so a caller
    /// can keep span totals bit-identical to its own measurement.
    override_s: std::cell::Cell<Option<f64>>,
}

impl SpanGuard {
    fn open(name: &str, idx: Option<usize>) -> SpanGuard {
        let start = Instant::now();
        if !enabled() {
            return SpanGuard {
                path: None,
                event_path: String::new(),
                start,
                override_s: std::cell::Cell::new(None),
            };
        }
        let parent = SPAN_STACK.with(|s| s.borrow().last().cloned());
        let path = match parent {
            Some(p) if !p.is_empty() => format!("{p}/{name}"),
            _ => name.to_string(),
        };
        SPAN_STACK.with(|s| s.borrow_mut().push(path.clone()));
        let event_path = match idx {
            Some(i) => format!("{path}#{i}"),
            None => path.clone(),
        };
        SpanGuard {
            path: Some(path),
            event_path,
            start,
            override_s: std::cell::Cell::new(None),
        }
    }

    /// The span's base path (empty if recording was disabled at open).
    #[must_use]
    pub fn path(&self) -> &str {
        self.path.as_deref().unwrap_or("")
    }

    /// Closes the span recording exactly `seconds` instead of the measured
    /// elapsed time. Used where an existing breakdown measures the same
    /// interval, so both report the identical number.
    pub fn close_with(self, seconds: f64) {
        self.override_s.set(Some(seconds));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let seconds = self
            .override_s
            .get()
            .unwrap_or_else(|| self.start.elapsed().as_secs_f64());
        with_state(|i| {
            i.registry.record_span(&path, seconds);
            i.sink.emit(&Event::Span {
                path: std::mem::take(&mut self.event_path),
                wall_us: (seconds * 1e6).max(0.0) as u64,
                seq: i.next_seq(),
            });
        });
    }
}

/// Opens a span named `name` under the current thread's span context.
#[must_use]
pub fn span(name: &str) -> SpanGuard {
    SpanGuard::open(name, None)
}

/// Opens the `idx`-th instance of a repeated span: aggregates under the
/// base path, emits `path#idx` events.
#[must_use]
pub fn span_idx(name: &str, idx: usize) -> SpanGuard {
    SpanGuard::open(name, Some(idx))
}

/// Opens a span, runs `f`, and returns `(result, elapsed_seconds)`.
///
/// The elapsed time is measured whether or not recording is enabled, and
/// the span (when enabled) records *that same measurement*, so e.g. the
/// `flow/*` stage totals in the obs report are bit-identical to
/// `RuntimeBreakdown`.
pub fn timed_span<R>(name: &str, f: impl FnOnce() -> R) -> (R, f64) {
    let g = span(name);
    let start = Instant::now();
    let r = f();
    let seconds = start.elapsed().as_secs_f64();
    g.close_with(seconds);
    (r, seconds)
}

/// Records a span close of `seconds` under `name` (resolved against the
/// current span context) without timing anything — for intervals measured
/// elsewhere.
pub fn record_span(name: &str, seconds: f64) {
    if !enabled() {
        return;
    }
    let g = span(name);
    g.close_with(seconds);
}

/// Adds `delta` to the counter `name`.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_state(|i| i.registry.add_counter(name, delta));
}

/// Sets the gauge `name` to `value`.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_state(|i| i.registry.set_gauge(name, value));
}

/// Records `value` into the histogram `name`.
#[inline]
pub fn hist(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_state(|i| i.registry.record_hist(name, value));
}

/// Emits a warning event to the sink immediately (warnings are not
/// aggregated — each one is a distinct occurrence worth surfacing).
#[inline]
pub fn warn(message: &str) {
    if !enabled() {
        return;
    }
    with_state(|i| {
        i.sink.emit(&Event::Log {
            level: "warn".to_string(),
            message: message.to_string(),
            seq: i.next_seq(),
        });
    });
}

/// Runs `f` against the live registry, returning `None` when recording is
/// disabled. This is how exporters (e.g. `af-serve`'s `/metrics` endpoint)
/// snapshot metrics mid-run without waiting for the flush-on-drop.
pub fn with_registry<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    with_state(|i| f(&i.registry))
}

/// Opens a span: `span!("name")` or `span!("name", idx)` for repeated
/// instances. Bind the result (`let _s = span!(...)`) — the span closes
/// when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $idx:expr) => {
        $crate::span_idx($name, $idx)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that install the global state.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _l = locked();
        assert!(!enabled());
        let g = span!("nothing");
        assert_eq!(g.path(), "");
        counter("c", 1);
        hist("h", 1.0);
        assert_eq!(current_path(), "");
    }

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let _l = locked();
        let sink = Arc::new(MemorySink::new());
        let guard = install(sink.clone());
        {
            let outer = span!("flow");
            assert_eq!(outer.path(), "flow");
            assert_eq!(current_path(), "flow");
            {
                let inner = span!("relaxation");
                assert_eq!(inner.path(), "flow/relaxation");
                let r = span!("restart", 3);
                assert_eq!(r.path(), "flow/relaxation/restart");
            }
            assert_eq!(current_path(), "flow");
        }
        drop(guard);
        let names: Vec<String> = sink.events().iter().map(|e| e.name().to_string()).collect();
        // Children close before parents; the #idx instance is on the event.
        assert_eq!(
            names,
            vec!["flow/relaxation/restart#3", "flow/relaxation", "flow"]
        );
    }

    #[test]
    fn cross_thread_aggregation_via_with_parent() {
        let _l = locked();
        let sink = Arc::new(MemorySink::new());
        let guard = install(sink.clone());
        {
            let _outer = span!("flow");
            let parent = current_path();
            std::thread::scope(|scope| {
                for i in 0..4 {
                    let parent = parent.clone();
                    scope.spawn(move || {
                        with_parent(&parent, || {
                            let _s = span!("task", i);
                            counter("tasks", 1);
                        });
                    });
                }
            });
        }
        let report = guard.report_text();
        drop(guard);
        let events = sink.events();
        let task_spans: Vec<&Event> = events
            .iter()
            .filter(|e| e.name().starts_with("flow/task#"))
            .collect();
        assert_eq!(task_spans.len(), 4);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Counter { name, value: 4, .. } if name == "tasks")));
        assert!(report.contains("task"), "aggregated under base path");
    }

    #[test]
    fn histograms_flush_with_percentiles() {
        let _l = locked();
        let sink = Arc::new(MemorySink::new());
        let guard = install(sink.clone());
        for v in 1..=10 {
            hist("relax.potential_final", f64::from(v));
        }
        drop(guard);
        let events = sink.events();
        let h = events
            .iter()
            .find(|e| matches!(e, Event::Histogram { .. }))
            .expect("histogram event");
        if let Event::Histogram {
            count, p50, p90, ..
        } = h
        {
            assert_eq!(*count, 10);
            assert!((p50 - 5.0).abs() < 1e-12);
            assert!((p90 - 9.0).abs() < 1e-12);
        }
    }

    #[test]
    fn timed_span_records_its_own_measurement() {
        let _l = locked();
        let sink = Arc::new(MemorySink::new());
        let guard = install(sink.clone());
        let (value, secs) = timed_span("stage", || 42);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
        record_span("other_stage", 1.5);
        drop(guard);
        let events = sink.events();
        let stage = events.iter().find(|e| e.name() == "stage").unwrap();
        if let Event::Span { wall_us, .. } = stage {
            assert_eq!(*wall_us, (secs * 1e6) as u64, "same measurement");
        }
        let other = events.iter().find(|e| e.name() == "other_stage").unwrap();
        if let Event::Span { wall_us, .. } = other {
            assert_eq!(*wall_us, 1_500_000);
        }
    }

    #[test]
    fn guard_drop_disables_and_flush_is_once() {
        let _l = locked();
        let sink = Arc::new(MemorySink::new());
        let guard = install(sink.clone());
        counter("c", 2);
        guard.flush();
        let n = sink.events().len();
        drop(guard);
        assert_eq!(sink.events().len(), n, "drop after flush adds nothing");
        assert!(!enabled());
    }

    #[test]
    fn span_survives_task_panic() {
        let _l = locked();
        let sink = Arc::new(MemorySink::new());
        let guard = install(sink.clone());
        {
            let _outer = span!("flow");
            let parent = current_path();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_parent(&parent, || {
                    counter("before_panic", 1);
                    panic!("task died");
                })
            }));
            assert!(result.is_err());
            // The panicking task's context was unwound; ours is intact.
            assert_eq!(current_path(), "flow");
            counter("after_panic", 1);
        }
        drop(guard);
        let events = sink.events();
        assert!(events.iter().any(|e| e.name() == "before_panic"));
        assert!(events.iter().any(|e| e.name() == "after_panic"));
        assert!(events.iter().any(|e| e.name() == "flow"));
    }
}
