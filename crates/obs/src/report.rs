//! The human-readable tree report (`--obs-report`).

use crate::fmt::{Cell, Table};
use crate::registry::Registry;

/// Renders the registry as a span tree plus metric tables.
///
/// Spans are grouped by their `/`-separated path; a child is indented under
/// its parent and siblings print in lexicographic order, which is also
/// emission-stable because span paths are deterministic. Stage rows show the
/// number of closes, total seconds, and the longest single close — the
/// `flow/*` totals are the same measurements `RuntimeBreakdown` reports.
#[must_use]
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    let spans = registry.span_snapshot();
    if !spans.is_empty() {
        out.push_str("spans\n");
        let table = Table::new(40).col(8).cols(12, 2).indent(2);
        out.push_str(&table.header("path", &["count", "total(s)", "max(s)"]));
        out.push('\n');
        for (path, stat) in &spans {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{leaf}", "  ".repeat(depth));
            out.push_str(&table.row(
                &label,
                &[
                    Cell::Int(stat.count as i64),
                    Cell::Float(stat.total_s, 3),
                    Cell::Float(stat.max_s, 3),
                ],
            ));
            out.push('\n');
        }
    }
    let counters = registry.counter_snapshot();
    if !counters.is_empty() {
        out.push_str("counters\n");
        let table = Table::new(40).col(12).indent(2);
        for (name, value) in &counters {
            out.push_str(&table.row(name, &[Cell::Int(*value as i64)]));
            out.push('\n');
        }
    }
    let gauges = registry.gauge_snapshot();
    if !gauges.is_empty() {
        out.push_str("gauges\n");
        let table = Table::new(40).col(12).indent(2);
        for (name, value) in &gauges {
            out.push_str(&table.row(name, &[Cell::Float(*value, 4)]));
            out.push('\n');
        }
    }
    let hists = registry.hist_snapshot();
    if !hists.is_empty() {
        out.push_str("histograms\n");
        // Duration histograms hold microsecond values that can reach eight
        // integer digits, so these columns are wider than the span table's.
        let table = Table::new(40).col(8).cols(14, 4).indent(2);
        out.push_str(&table.header("name", &["count", "mean", "p50", "p90", "max"]));
        out.push('\n');
        for (name, h) in &hists {
            out.push_str(&table.row(
                name,
                &[
                    Cell::Int(h.count as i64),
                    Cell::Float(h.mean(), 3),
                    Cell::Float(h.percentile(50.0), 3),
                    Cell::Float(h.percentile(90.0), 3),
                    Cell::Float(h.max, 3),
                ],
            ));
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no observability data recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_indents_children_under_parents() {
        let r = Registry::default();
        r.record_span("flow", 2.0);
        r.record_span("flow/dataset", 1.0);
        r.record_span("flow/training", 0.5);
        r.add_counter("route.nets", 7);
        let text = render(&r);
        let lines: Vec<&str> = text.lines().collect();
        let flow = lines.iter().position(|l| l.contains("flow")).unwrap();
        assert!(
            lines[flow + 1].starts_with("    dataset") || lines[flow + 1].contains("  dataset")
        );
        assert!(text.contains("counters"));
        assert!(text.contains("route.nets"));
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        let r = Registry::default();
        assert!(render(&r).contains("no observability data"));
    }
}
