//! `obs-check`: validates an `af-obs` JSONL event log against the schema.
//!
//! Usage: `obs-check <events.jsonl> [--require <span-path>]...`
//!
//! Every line must parse as one event object (see DESIGN.md §8). Each
//! `--require PATH` additionally demands at least one span event whose path
//! (ignoring any `#idx` instance suffix) equals PATH — CI uses this to
//! prove the flow emitted all five stage spans.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("obs-check: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut path: Option<&str> = None;
    let mut required: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--require" {
            required.push(
                it.next()
                    .ok_or("--require needs a span path argument")?
                    .clone(),
            );
        } else if path.is_none() {
            path = Some(a);
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let path = path.ok_or("usage: obs-check <events.jsonl> [--require <span-path>]...")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;

    let mut counts = std::collections::BTreeMap::<String, usize>::new();
    let mut span_paths = std::collections::BTreeSet::<String>::new();
    let mut lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (ty, name) = af_obs::json::validate_event_line(line)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if ty == "span" {
            // Strip the per-instance suffix so `relax/restart#3` satisfies
            // a `--require relax/restart`.
            let base = name.split('#').next().unwrap_or(&name).to_string();
            span_paths.insert(base);
        }
        *counts.entry(ty).or_insert(0) += 1;
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("`{path}` contains no events"));
    }
    let missing: Vec<&String> = required
        .iter()
        .filter(|r| !span_paths.contains(*r))
        .collect();
    if !missing.is_empty() {
        let have: Vec<&String> = span_paths.iter().collect();
        return Err(format!(
            "missing required span path(s) {missing:?}; spans present: {have:?}"
        ));
    }
    let breakdown: Vec<String> = counts.iter().map(|(k, v)| format!("{v} {k}")).collect();
    Ok(format!(
        "ok: {lines} events ({}), {} distinct span paths",
        breakdown.join(", "),
        span_paths.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    #[test]
    fn accepts_valid_log_and_requirements() {
        let p = write_tmp(
            "obs_check_ok.jsonl",
            "{\"type\":\"span\",\"path\":\"flow/dataset#0\",\"wall_us\":5,\"seq\":0}\n\
             {\"type\":\"counter\",\"name\":\"c\",\"value\":1,\"seq\":1}\n",
        );
        let args = vec![
            p.to_string_lossy().into_owned(),
            "--require".into(),
            "flow/dataset".into(),
        ];
        let out = run(&args).unwrap();
        assert!(out.starts_with("ok: 2 events"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_bad_lines_and_missing_spans() {
        let p = write_tmp("obs_check_bad.jsonl", "{\"type\":\"span\"}\n");
        let args = vec![p.to_string_lossy().into_owned()];
        assert!(run(&args).unwrap_err().starts_with("line 1:"));
        std::fs::write(
            &p,
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":1,\"seq\":0}\n",
        )
        .unwrap();
        let args = vec![
            p.to_string_lossy().into_owned(),
            "--require".into(),
            "flow".into(),
        ];
        assert!(run(&args).unwrap_err().contains("missing required"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn empty_file_is_an_error() {
        let p = write_tmp("obs_check_empty.jsonl", "");
        let args = vec![p.to_string_lossy().into_owned()];
        assert!(run(&args).unwrap_err().contains("no events"));
        std::fs::remove_file(p).ok();
    }
}
