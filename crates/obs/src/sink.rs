//! Event sinks: where observability events go once emitted.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// A destination for observability events.
///
/// Sinks must be thread-safe: events arrive from every instrumented thread,
/// including `afrt` pool workers. Implementations should tolerate being
/// called after a panic elsewhere in the process (the registry recovers
/// poisoned locks for exactly this reason).
pub trait Sink: Send + Sync {
    /// Receives one event. Called at span close and at metric flush.
    fn emit(&self, event: &Event);

    /// Flushes buffered output. Default: no-op.
    fn flush(&self) {}
}

/// An in-memory sink for tests: captures every event.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty memory sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all events captured so far, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

/// A sink that appends one JSON object per line to a file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Ignore write errors: observability must never abort the flow.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = w.flush();
    }
}

/// Fans one event stream out to several sinks.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl TeeSink {
    /// Creates an empty tee.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a downstream sink.
    #[must_use]
    pub fn with(mut self, sink: Box<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Number of downstream sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the tee has no downstream sinks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for TeeSink {
    fn emit(&self, event: &Event) {
        for s in &self.sinks {
            s.emit(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures_in_order() {
        let sink = MemorySink::new();
        for seq in 0..3 {
            sink.emit(&Event::Counter {
                name: "c".into(),
                value: seq,
                seq,
            });
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().enumerate().all(|(i, e)| e.seq() == i as u64));
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let dir = std::env::temp_dir().join("af_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Event::Span {
            path: "a/b".into(),
            wall_us: 5,
            seq: 0,
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            crate::json::validate_event_line(line).unwrap();
        }
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tee_fans_out() {
        let a = std::sync::Arc::new(MemorySink::new());
        let b = std::sync::Arc::new(MemorySink::new());
        struct Fwd(std::sync::Arc<MemorySink>);
        impl Sink for Fwd {
            fn emit(&self, event: &Event) {
                self.0.emit(event);
            }
        }
        let tee = TeeSink::new()
            .with(Box::new(Fwd(std::sync::Arc::clone(&a))))
            .with(Box::new(Fwd(std::sync::Arc::clone(&b))));
        assert_eq!(tee.len(), 2);
        tee.emit(&Event::Gauge {
            name: "g".into(),
            value: 1.0,
            seq: 0,
        });
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }
}
