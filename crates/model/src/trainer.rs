//! The continuous train→serve loop: fold routed traffic into a growing
//! dataset, fine-tune from the incumbent, register the candidate.
//!
//! The trainer closes the loop the paper's automated data engine leaves
//! open. Every completed `/v1/route` job already carries exactly what a
//! training sample needs — the guidance the router followed and the
//! simulated post-layout performance — so the trainer tails the serve job
//! store, appends one dataset shard per new job through the existing
//! [`ShardStore`] checkpoint path, and periodically fine-tunes starting
//! from the incumbent's weights.
//!
//! # Determinism contract
//!
//! A training run is a pure function of `(incumbent weights, shard set,
//! seed, epochs)`: jobs are ingested in ascending id order, the shard set
//! orders the dataset, and [`ThreeDGnn::train`] is deterministic given its
//! seed. Two trainers pointed at the same inputs register the same content
//! hash — which is also why a crash between registration and state update
//! is harmless: the retry re-registers idempotently.
//!
//! The trainer deliberately does **not** depend on `af-serve`. It reads job
//! shards through minimal mirror structs (the vendored serde derive ignores
//! unknown fields), so the two processes share only the on-disk format.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use af_fault::{RetryPolicy, Supervisor};
use af_netlist::benchmarks;
use af_place::{place, PlacementVariant};
use af_sim::Performance;
use af_tech::Technology;
use analogfold::{
    content_hash_of, holdout_mse, Dataset, GnnConfig, HeteroGraph, PersistError, Sample,
    SampleRecord, ShardStore, ThreeDGnn,
};
use serde::{Deserialize, Serialize};

use crate::registry::{write_durable, Lineage, ModelRegistry, RegistryError};

/// Trainer failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrainerError {
    /// Invalid configuration (unknown benchmark or variant).
    Config(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Dataset/state (de)serialization failure.
    Persist(PersistError),
    /// Registry failure.
    Registry(RegistryError),
}

impl std::fmt::Display for TrainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainerError::Config(msg) => write!(f, "trainer config: {msg}"),
            TrainerError::Io(e) => write!(f, "io error: {e}"),
            TrainerError::Persist(e) => write!(f, "persist error: {e}"),
            TrainerError::Registry(e) => write!(f, "registry error: {e}"),
        }
    }
}

impl std::error::Error for TrainerError {}

impl From<std::io::Error> for TrainerError {
    fn from(e: std::io::Error) -> Self {
        TrainerError::Io(e)
    }
}

impl From<PersistError> for TrainerError {
    fn from(e: PersistError) -> Self {
        TrainerError::Persist(e)
    }
}

impl From<RegistryError> for TrainerError {
    fn from(e: RegistryError) -> Self {
        TrainerError::Registry(e)
    }
}

/// Background-trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Model registry directory.
    pub registry: PathBuf,
    /// Serve job-store directory to tail for completed routes.
    pub jobs: PathBuf,
    /// Growing-dataset directory (shards + ingest state).
    pub dataset: PathBuf,
    /// Benchmark circuit name (must match what the server routes).
    pub bench: String,
    /// Placement variant label.
    pub variant: String,
    /// Sleep between training passes, in milliseconds.
    pub interval_ms: u64,
    /// Minimum samples ingested since the last registered candidate before
    /// fine-tuning again (avoids re-training on every single job).
    pub min_new_samples: usize,
    /// Fine-tune epochs per pass.
    pub epochs: usize,
    /// Training seed (part of the determinism contract).
    pub seed: u64,
    /// Supervisor restart backoff, in milliseconds.
    pub backoff_ms: u64,
    /// Supervisor recovery grace window, in milliseconds.
    pub grace_ms: u64,
}

impl TrainerConfig {
    /// Defaults for everything but the paths and circuit identity.
    #[must_use]
    pub fn new(
        registry: impl Into<PathBuf>,
        jobs: impl Into<PathBuf>,
        dataset: impl Into<PathBuf>,
        bench: &str,
        variant: &str,
    ) -> Self {
        Self {
            registry: registry.into(),
            jobs: jobs.into(),
            dataset: dataset.into(),
            bench: bench.to_string(),
            variant: variant.to_string(),
            interval_ms: 5_000,
            min_new_samples: 1,
            epochs: 10,
            seed: 7,
            backoff_ms: 50,
            grace_ms: 500,
        }
    }
}

/// What one training pass did.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainOutcome {
    /// A candidate was fine-tuned and registered.
    Registered {
        /// The candidate's content hash (its registry id).
        hash: String,
        /// Training-set size.
        samples: usize,
        /// Normalized MSE of the candidate over the training set.
        eval_mse: f64,
    },
    /// The dataset is unchanged since the last registered candidate.
    Unchanged,
    /// Not enough new samples yet (`have` of `need` since last train).
    Insufficient {
        /// New samples since the last training pass.
        have: usize,
        /// Configured [`TrainerConfig::min_new_samples`].
        need: usize,
    },
}

/// Durable ingest state: which job ids are already in the dataset, the next
/// free dataset shard index, and the dataset hash of the last training run.
/// Lives in the dataset directory so dataset and state travel together.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct IngestState {
    ingested: Vec<u64>,
    next_shard: u64,
    last_trained_hash: Option<String>,
    samples_at_last_train: Option<u64>,
}

const STATE_FILE: &str = "ingested.json";

fn load_state(dataset_dir: &std::path::Path) -> Result<IngestState, TrainerError> {
    match std::fs::read_to_string(dataset_dir.join(STATE_FILE)) {
        Ok(text) => Ok(serde_json::from_str(&text).map_err(PersistError::from)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(IngestState::default()),
        Err(e) => Err(e.into()),
    }
}

fn save_state(dataset_dir: &std::path::Path, state: &IngestState) -> Result<(), TrainerError> {
    let bytes = serde_json::to_string(state).map_err(PersistError::from)?;
    write_durable(
        dataset_dir,
        &dataset_dir.join(".ingested.tmp"),
        &dataset_dir.join(STATE_FILE),
        bytes.as_bytes(),
    )?;
    Ok(())
}

/// Minimal mirror of a serve `JobRecord` shard: the trainer needs only the
/// status and the routed outcome. Extra fields in the shard (id, error,
/// model hash, …) are ignored by the vendored derive.
#[derive(Debug, Deserialize)]
struct JobShard {
    status: String,
    result: Option<JobOutcome>,
}

/// Minimal mirror of a serve `RouteResult`.
#[derive(Debug, Deserialize)]
struct JobOutcome {
    guidance: Vec<f64>,
    performance: Performance,
}

/// Scans the job store for completed jobs not yet ingested and appends each
/// as one dataset shard, in ascending job-id order. Returns how many
/// samples were added.
fn ingest_new_jobs(cfg: &TrainerConfig, state: &mut IngestState) -> Result<usize, TrainerError> {
    let jobs = ShardStore::new(&cfg.jobs);
    let dataset = ShardStore::new(&cfg.dataset);
    let mut added = 0usize;
    for idx in jobs.existing_shards() {
        let id = idx as u64;
        if state.ingested.contains(&id) {
            continue;
        }
        // Corrupt or missing shards are already counted and warned about by
        // the shard layer; skip without marking so a later repair can land.
        let Ok(Some(job)) = jobs.load_shard::<JobShard>(idx) else {
            continue;
        };
        if job.status != "done" {
            // Terminal failures will never become samples; remember them so
            // the scan stays O(new), not O(all jobs ever).
            if job.status == "failed" {
                state.ingested.push(id);
            }
            continue;
        }
        let Some(outcome) = job.result else {
            state.ingested.push(id);
            continue;
        };
        let record = vec![SampleRecord {
            guidance: outcome.guidance,
            performance: Some(outcome.performance),
            error: None,
        }];
        dataset.save_shard(state.next_shard as usize, &record)?;
        state.next_shard += 1;
        state.ingested.push(id);
        added += 1;
    }
    if added > 0 {
        save_state(&cfg.dataset, state)?;
        af_obs::counter("model.trainer.ingested", added as u64);
    }
    Ok(added)
}

/// Loads every dataset shard back into one [`Dataset`], in shard order.
fn assemble(cfg: &TrainerConfig) -> Result<Dataset, TrainerError> {
    let store = ShardStore::new(&cfg.dataset);
    let mut samples: Vec<Sample> = Vec::new();
    for idx in store.existing_shards() {
        let Ok(Some(records)) = store.load_shard::<Vec<SampleRecord>>(idx) else {
            continue;
        };
        samples.extend(records.into_iter().filter_map(SampleRecord::into_sample));
    }
    Ok(Dataset { samples })
}

/// One training pass: ingest → (maybe) fine-tune → register.
///
/// Safe to call concurrently with a serving process — all coordination is
/// through the append-only job shards, the durable ingest state, and the
/// registry's atomic publication.
///
/// # Errors
///
/// Configuration, filesystem, or registry failures. A failed pass leaves
/// the dataset and registry consistent (see module docs).
pub fn train_once(cfg: &TrainerConfig) -> Result<TrainOutcome, TrainerError> {
    let circuit = benchmarks::by_name(&cfg.bench)
        .ok_or_else(|| TrainerError::Config(format!("unknown benchmark `{}`", cfg.bench)))?;
    let variant = PlacementVariant::from_label(&cfg.variant).ok_or_else(|| {
        TrainerError::Config(format!("unknown placement variant `{}`", cfg.variant))
    })?;
    let tech = Technology::nm40();
    let placement = place(&circuit, variant);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);

    let mut state = load_state(&cfg.dataset)?;
    ingest_new_jobs(cfg, &mut state)?;
    let dataset = assemble(cfg)?;
    if dataset.samples.is_empty() {
        return Ok(TrainOutcome::Insufficient {
            have: 0,
            need: cfg.min_new_samples.max(1),
        });
    }
    let dataset_hash = content_hash_of(&dataset).to_hex();
    if state.last_trained_hash.as_deref() == Some(dataset_hash.as_str()) {
        return Ok(TrainOutcome::Unchanged);
    }
    let new_samples = dataset.samples.len() as u64
        - state
            .samples_at_last_train
            .unwrap_or(0)
            .min(dataset.samples.len() as u64);
    if state.last_trained_hash.is_some() && (new_samples as usize) < cfg.min_new_samples {
        return Ok(TrainOutcome::Insufficient {
            have: new_samples as usize,
            need: cfg.min_new_samples,
        });
    }

    let mut registry = ModelRegistry::open(&cfg.registry)?;
    // Start from the incumbent's weights when there is one (fine-tune);
    // otherwise train from a fresh seed-derived initialization.
    let (mut gnn, parent) = match registry.current() {
        Some(hash) => {
            let hash = hash.to_string();
            (registry.load(&hash)?, Some(hash))
        }
        None => (
            ThreeDGnn::new(&GnnConfig {
                seed: cfg.seed,
                ..GnnConfig::default()
            }),
            None,
        ),
    };

    // The window chaos tests target: kill here and the registry must not
    // expose a half-written candidate.
    af_fault::fail!("model.train");

    let train_cfg = GnnConfig {
        epochs: cfg.epochs,
        seed: cfg.seed,
        ..GnnConfig::default()
    };
    let _report = gnn.train(&graph, &dataset, &train_cfg);
    let eval_mse = holdout_mse(&gnn, &graph, &dataset.samples);

    let entry = registry.register(
        &gnn,
        Lineage {
            parent,
            dataset_hash: Some(dataset_hash.clone()),
            train_seed: Some(cfg.seed),
            train_epochs: Some(cfg.epochs as u64),
            samples: Some(dataset.samples.len() as u64),
            eval_mse: Some(eval_mse),
            note: Some("trainer".to_string()),
        },
    )?;
    // State update is last: a crash before this line re-trains the same
    // inputs next pass and re-registers the same hash (idempotent).
    state.last_trained_hash = Some(dataset_hash);
    state.samples_at_last_train = Some(dataset.samples.len() as u64);
    save_state(&cfg.dataset, &state)?;
    af_obs::counter("model.trainer.registered", 1);
    Ok(TrainOutcome::Registered {
        hash: entry.hash,
        samples: dataset.samples.len(),
        eval_mse,
    })
}

/// The supervised background trainer. Runs [`train_once`] every
/// `interval_ms` under an [`af_fault::Supervisor`], so a panic mid-pass
/// (including injected ones) restarts the loop after backoff instead of
/// silently ending the train→serve loop.
pub struct Trainer {
    stop: Arc<AtomicBool>,
    supervisor: Option<Supervisor>,
}

impl Trainer {
    /// Spawns the background loop.
    ///
    /// # Errors
    ///
    /// Thread-spawn failure.
    pub fn start(cfg: TrainerConfig) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_body = Arc::clone(&stop);
        let backoff = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay_ms: cfg.backoff_ms.max(1),
            max_delay_ms: (cfg.backoff_ms.max(1)) * 20,
            ..RetryPolicy::default()
        };
        let grace = Duration::from_millis(cfg.grace_ms);
        let supervisor = Supervisor::spawn("model-trainer", backoff, grace, move || {
            while !stop_body.load(Ordering::SeqCst) {
                af_obs::counter("model.trainer.runs", 1);
                match train_once(&cfg) {
                    Ok(TrainOutcome::Registered { hash, samples, .. }) => {
                        af_obs::warn(&format!(
                            "trainer registered candidate {hash} ({samples} samples)"
                        ));
                    }
                    Ok(_) => {}
                    Err(e) => {
                        af_obs::counter("model.trainer.errors", 1);
                        af_obs::warn(&format!("trainer pass failed: {e}"));
                    }
                }
                // Interruptible sleep so shutdown is prompt.
                let mut remaining = cfg.interval_ms;
                while remaining > 0 && !stop_body.load(Ordering::SeqCst) {
                    let step = remaining.min(50);
                    std::thread::sleep(Duration::from_millis(step));
                    remaining -= step;
                }
            }
        })?;
        Ok(Self {
            stop,
            supervisor: Some(supervisor),
        })
    }

    /// Whether the loop is currently restarting after a panic.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.supervisor
            .as_ref()
            .is_some_and(Supervisor::is_degraded)
    }

    /// Panics recovered so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.supervisor.as_ref().map_or(0, Supervisor::restarts)
    }

    /// Signals the loop to stop and joins it.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(mut s) = self.supervisor.take() {
            s.join();
        }
    }
}

impl Drop for Trainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("af-trainer-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Writes a fake completed job shard in the serve job-store format.
    fn write_job(dir: &std::path::Path, id: u64, status: &str, guidance_len: usize, scale: f64) {
        std::fs::create_dir_all(dir).unwrap();
        let result = if status == "done" {
            format!(
                "{{\"wirelength_um\":1.0,\"vias\":2,\"conflicts\":0,\"performance\":{{\"offset_uv\":{},\"cmrr_db\":80.0,\"bandwidth_mhz\":45.0,\"dc_gain_db\":60.0,\"noise_uvrms\":30.0}},\"guidance\":[{}]}}",
                120.0 * scale,
                vec!["0.5"; guidance_len].join(",")
            )
        } else {
            "null".to_string()
        };
        std::fs::write(
            dir.join(format!("shard-{id:04}.json")),
            format!("{{\"id\":{id},\"status\":\"{status}\",\"error\":null,\"result\":{result}}}"),
        )
        .unwrap();
    }

    fn cfg(root: &std::path::Path) -> TrainerConfig {
        TrainerConfig {
            epochs: 2,
            ..TrainerConfig::new(
                root.join("registry"),
                root.join("jobs"),
                root.join("dataset"),
                "OTA1",
                "A",
            )
        }
    }

    fn guidance_len() -> usize {
        let circuit = benchmarks::by_name("OTA1").unwrap();
        let variant = PlacementVariant::from_label("A").unwrap();
        let tech = Technology::nm40();
        let placement = place(&circuit, variant);
        let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
        ThreeDGnn::new(&GnnConfig::default())
            .session(&graph)
            .guidance_len()
    }

    #[test]
    fn trains_from_done_jobs_and_is_deterministic() {
        let root = tmp_dir("deterministic");
        let glen = guidance_len();
        let cfg = cfg(&root);
        write_job(&cfg.jobs, 0, "done", glen, 1.0);
        write_job(&cfg.jobs, 1, "failed", glen, 1.0);
        write_job(&cfg.jobs, 2, "done", glen, 1.1);

        let out = train_once(&cfg).unwrap();
        let TrainOutcome::Registered {
            hash,
            samples,
            eval_mse,
        } = out
        else {
            panic!("expected Registered, got {out:?}");
        };
        assert_eq!(samples, 2, "failed jobs are not samples");
        assert!(eval_mse.is_finite());

        // Same pass again: dataset unchanged → no new candidate.
        assert_eq!(train_once(&cfg).unwrap(), TrainOutcome::Unchanged);

        // A second trainer over the same inputs registers the same hash.
        let root2 = tmp_dir("deterministic2");
        let cfg2 = cfg_at(&root2, &cfg);
        write_job(&cfg2.jobs, 0, "done", glen, 1.0);
        write_job(&cfg2.jobs, 1, "failed", glen, 1.0);
        write_job(&cfg2.jobs, 2, "done", glen, 1.1);
        let TrainOutcome::Registered { hash: hash2, .. } = train_once(&cfg2).unwrap() else {
            panic!("expected Registered");
        };
        assert_eq!(hash, hash2, "training is deterministic over (shards, seed)");
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&root2);
    }

    fn cfg_at(root: &std::path::Path, base: &TrainerConfig) -> TrainerConfig {
        TrainerConfig {
            registry: root.join("registry"),
            jobs: root.join("jobs"),
            dataset: root.join("dataset"),
            ..base.clone()
        }
    }

    #[test]
    fn empty_job_store_is_insufficient_not_an_error() {
        let root = tmp_dir("empty");
        let cfg = cfg(&root);
        assert!(matches!(
            train_once(&cfg).unwrap(),
            TrainOutcome::Insufficient { have: 0, .. }
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn min_new_samples_gates_retraining() {
        let root = tmp_dir("minnew");
        let glen = guidance_len();
        let mut cfg = cfg(&root);
        cfg.min_new_samples = 2;
        write_job(&cfg.jobs, 0, "done", glen, 1.0);
        write_job(&cfg.jobs, 1, "done", glen, 1.2);
        assert!(matches!(
            train_once(&cfg).unwrap(),
            TrainOutcome::Registered { .. }
        ));
        // One more job is below the threshold…
        write_job(&cfg.jobs, 2, "done", glen, 1.3);
        assert_eq!(
            train_once(&cfg).unwrap(),
            TrainOutcome::Insufficient { have: 1, need: 2 }
        );
        // …two are enough, and the new candidate fine-tunes from the
        // incumbent once one is promoted.
        let mut registry = ModelRegistry::open(&cfg.registry).unwrap();
        let first = registry.list()[0].hash.clone();
        registry.promote(&first, false).unwrap();
        write_job(&cfg.jobs, 3, "done", glen, 1.4);
        let TrainOutcome::Registered { hash, .. } = train_once(&cfg).unwrap() else {
            panic!("expected Registered");
        };
        let registry = ModelRegistry::open(&cfg.registry).unwrap();
        let entry = registry.entry(&hash).unwrap();
        assert_eq!(entry.lineage.parent.as_deref(), Some(first.as_str()));
        assert_eq!(entry.lineage.note.as_deref(), Some("trainer"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
