#![warn(missing_docs)]
//! `af-model`: the model-lifecycle subsystem — versioned registry,
//! promotion state, canary verdicts, and a continuous train→serve loop.
//!
//! The paper's automated data engine trains the 3DGNN surrogate offline;
//! this crate closes the loop at serving time. Three pieces:
//!
//! 1. [`ModelRegistry`] — a content-addressed store of trained models. A
//!    model's identity is the 128-bit canonical content hash of its body
//!    ([`analogfold::content_hash_of`]) — the same hash the v2 save
//!    envelope carries and `af-serve` reports on `/healthz`, so a registry
//!    id, a served `model_hash`, and a fleet skew check all name the same
//!    bytes. Publication is durable (tmp → fsync → rename → dir fsync) and
//!    lineage (parent hash, dataset hash, train config, eval summary) is an
//!    append-only JSONL manifest; a torn tail line degrades to
//!    skip-with-warn, never a panic.
//! 2. [`CanaryStats`] / [`CanaryReport`] — shadow-evaluation arithmetic: a
//!    fraction of routed-and-simulated jobs scores the candidate's
//!    predicted-vs-simulated FoM error against the incumbent's, and the
//!    resulting verdict gates promotion (refused on regression unless
//!    forced).
//! 3. [`Trainer`] — a supervised ([`af_fault::Supervisor`]) background loop
//!    that folds freshly routed jobs into a growing [`analogfold::ShardStore`]
//!    dataset, periodically fine-tunes from the incumbent's weights
//!    (deterministic given seed + shard set), and registers candidates.
//!
//! Zero dependencies beyond std and the workspace's vendored
//! `serde`/`serde_json`, matching the offline build constraint.

pub mod canary;
pub mod registry;
pub mod trainer;

pub use canary::{canary_sampled, fom_error, CanaryReport, CanaryStats};
pub use registry::{Lineage, ModelEntry, ModelRegistry, PromotionState, RegistryError};
pub use trainer::{train_once, TrainOutcome, Trainer, TrainerConfig, TrainerError};
