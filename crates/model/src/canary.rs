//! Shadow-evaluation arithmetic for candidate promotion.
//!
//! A serving process canaries a candidate by running a fraction of routed
//! `/v1/route` jobs through *both* models' predictions and comparing each
//! against the simulated ground truth the job produced anyway. The math
//! here is deliberately tiny and side-effect free so it can be unit-tested
//! exhaustively and shared between af-serve and the CLI: af-serve owns the
//! sampling and the mutable [`CanaryStats`], this module owns what "better"
//! means.

use af_sim::Performance;

/// Mean absolute relative error of a predicted FoM vector against the
/// simulated ground truth, over the five Table 2 metrics. Symmetric-safe:
/// denominators are floored at `1e-9` so a zero simulated metric cannot
/// blow the score to infinity.
#[must_use]
pub fn fom_error(predicted: &Performance, simulated: &Performance) -> f64 {
    let p = predicted.as_array();
    let s = simulated.as_array();
    let mut acc = 0.0;
    for i in 0..5 {
        acc += (p[i] - s[i]).abs() / s[i].abs().max(1e-9);
    }
    acc / 5.0
}

/// Deterministically decides whether job `id` is canaried, given a sampling
/// `fraction` in `[0, 1]`. Uses [`af_fault::mix`] so the decision is a pure
/// function of the job id — a job recovered after a restart lands in the
/// same arm, and tests can pick ids that hit either arm on purpose.
#[must_use]
pub fn canary_sampled(id: u64, fraction: f64) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    if fraction >= 1.0 {
        return true;
    }
    // One mix round → uniform enough over 10_000 buckets for sampling.
    let bucket = af_fault::mix(id, 0xC0A1_1A5E) % 10_000;
    (bucket as f64) < fraction * 10_000.0
}

/// Accumulated shadow-evaluation evidence for one (incumbent, candidate)
/// pair. Plain sums: mergeable, serializable by hand, no interior locking
/// (the owner serializes access).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CanaryStats {
    /// Jobs scored so far.
    pub samples: u64,
    /// Sum of incumbent [`fom_error`]s.
    pub incumbent_err: f64,
    /// Sum of candidate [`fom_error`]s.
    pub candidate_err: f64,
}

impl CanaryStats {
    /// Folds one scored job into the stats.
    pub fn observe(&mut self, incumbent_err: f64, candidate_err: f64) {
        self.samples += 1;
        self.incumbent_err += incumbent_err;
        self.candidate_err += candidate_err;
    }

    /// Produces the verdict at a relative `tolerance` (e.g. `0.10` lets the
    /// candidate be up to 10% worse before it counts as a regression —
    /// simulated FoM is noisy and a hard `>` would flap).
    #[must_use]
    pub fn report(&self, tolerance: f64) -> CanaryReport {
        let n = self.samples.max(1) as f64;
        let incumbent_mean = self.incumbent_err / n;
        let candidate_mean = self.candidate_err / n;
        CanaryReport {
            samples: self.samples,
            incumbent_mean,
            candidate_mean,
            regression: self.samples > 0 && candidate_mean > incumbent_mean * (1.0 + tolerance),
        }
    }
}

/// A point-in-time canary verdict derived from [`CanaryStats::report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanaryReport {
    /// Jobs scored.
    pub samples: u64,
    /// Incumbent mean [`fom_error`].
    pub incumbent_mean: f64,
    /// Candidate mean [`fom_error`].
    pub candidate_mean: f64,
    /// Whether the candidate regressed beyond tolerance.
    pub regression: bool,
}

impl CanaryReport {
    /// One-line human summary (also recorded as verdict detail).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "canary over {} jobs: candidate mean err {:.6} vs incumbent {:.6} ({})",
            self.samples,
            self.candidate_mean,
            self.incumbent_mean,
            if self.regression { "regression" } else { "ok" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(scale: f64) -> Performance {
        Performance {
            offset_uv: 120.0 * scale,
            cmrr_db: 80.0 * scale,
            bandwidth_mhz: 45.0 * scale,
            dc_gain_db: 60.0 * scale,
            noise_uvrms: 30.0 * scale,
        }
    }

    #[test]
    fn exact_prediction_scores_zero() {
        let truth = perf(1.0);
        assert_eq!(fom_error(&truth, &truth), 0.0);
    }

    #[test]
    fn uniform_relative_miss_scores_that_miss() {
        let truth = perf(1.0);
        let off = perf(1.1);
        let e = fom_error(&off, &truth);
        assert!((e - 0.1).abs() < 1e-12, "expected 0.1, got {e}");
    }

    #[test]
    fn zero_truth_is_floored_not_infinite() {
        let truth = Performance {
            offset_uv: 0.0,
            cmrr_db: 80.0,
            bandwidth_mhz: 45.0,
            dc_gain_db: 60.0,
            noise_uvrms: 30.0,
        };
        assert!(fom_error(&perf(1.0), &truth).is_finite());
    }

    #[test]
    fn sampling_is_deterministic_and_respects_bounds() {
        assert!(!canary_sampled(42, 0.0));
        assert!(canary_sampled(42, 1.0));
        for id in 0..100 {
            assert_eq!(canary_sampled(id, 0.25), canary_sampled(id, 0.25));
        }
        // At fraction 0.25 over many ids, roughly a quarter are sampled.
        let hits = (0..4000).filter(|&id| canary_sampled(id, 0.25)).count();
        assert!(
            (800..1200).contains(&hits),
            "expected ~1000 of 4000 sampled, got {hits}"
        );
    }

    #[test]
    fn verdict_applies_tolerance() {
        let mut s = CanaryStats::default();
        s.observe(0.10, 0.105); // 5% worse: inside 10% tolerance
        let r = s.report(0.10);
        assert!(!r.regression);
        assert_eq!(r.samples, 1);

        let mut s = CanaryStats::default();
        for _ in 0..4 {
            s.observe(0.10, 0.15); // 50% worse: regression
        }
        let r = s.report(0.10);
        assert!(r.regression);
        assert!((r.candidate_mean - 0.15).abs() < 1e-12);
        assert!(r.summary().contains("regression"));
    }

    #[test]
    fn empty_stats_never_regress() {
        assert!(!CanaryStats::default().report(0.0).regression);
    }
}
