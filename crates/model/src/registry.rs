//! The versioned model registry: content-addressed model files, an
//! append-only JSONL lineage manifest, and a durably-published `CURRENT`
//! pointer.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   models/<hash>.json   one v2 save envelope per registered model
//!   manifest.jsonl       append-only event log (register/promote/verdict)
//!   CURRENT              the promoted hash (durable-rename published)
//! ```
//!
//! A model file only becomes visible under its final name after the full
//! durable-rename discipline (tmp in the same directory → `sync_all` →
//! `rename` → directory fsync), so a trainer killed mid-publication leaves
//! at most a `.tmp` stray that every reader ignores — the registry never
//! exposes a half-written candidate. The manifest line for a model is
//! appended (and fsynced) only *after* its file is durable; a crash between
//! the two re-registers idempotently on the next attempt (same content →
//! same hash → same file name). A torn manifest tail from a crashed append
//! degrades to skip-with-warn at open, never a panic.
//!
//! Because the registry id *is* the content hash validated by
//! [`ThreeDGnn::load`]'s v2 envelope check, any on-disk tampering of a
//! model body is caught at load time — the registry inherits persistence
//! integrity instead of re-implementing it.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use analogfold::{content_hash_of, PersistError, ThreeDGnn};
use serde::{Deserialize, Serialize};

/// Manifest file name inside the registry directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";
/// Promoted-pointer file name inside the registry directory.
pub const CURRENT_FILE: &str = "CURRENT";

/// Registry operation failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum RegistryError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Model (de)serialization or header-validation failure.
    Persist(PersistError),
    /// No registered model matches the given hash or prefix.
    NotFound(String),
    /// A hash prefix matches more than one registered model.
    Ambiguous(String),
    /// Promotion refused (recorded regression verdict without `force`).
    Refused(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "io error: {e}"),
            RegistryError::Persist(e) => write!(f, "persist error: {e}"),
            RegistryError::NotFound(h) => write!(f, "no registered model matches `{h}`"),
            RegistryError::Ambiguous(h) => write!(f, "hash prefix `{h}` is ambiguous"),
            RegistryError::Refused(msg) => write!(f, "promotion refused: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<PersistError> for RegistryError {
    fn from(e: PersistError) -> Self {
        RegistryError::Persist(e)
    }
}

/// Lineage metadata recorded with a registration.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    /// Content hash of the incumbent this model was fine-tuned from
    /// (`None` for a from-scratch training run).
    pub parent: Option<String>,
    /// Canonical content hash of the training dataset.
    pub dataset_hash: Option<String>,
    /// Training seed (with the dataset hash, determines the weights).
    pub train_seed: Option<u64>,
    /// Training epochs.
    pub train_epochs: Option<u64>,
    /// Training-set size in samples.
    pub samples: Option<u64>,
    /// FoM evaluation summary: normalized MSE of predictions over the
    /// training set (see [`analogfold::holdout_mse`]).
    pub eval_mse: Option<f64>,
    /// Free-form provenance note (e.g. `trainer` or `cli`).
    pub note: Option<String>,
}

/// One flat manifest event. A single struct (rather than an enum) keeps the
/// JSONL self-describing and tolerant: readers key on `event` and ignore
/// fields they do not expect, so the format is extensible without breaking
/// old lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestLine {
    /// `"register"`, `"promote"`, or `"verdict"`.
    event: String,
    /// Monotonic sequence number within this manifest.
    seq: u64,
    /// Subject model hash.
    hash: String,
    parent: Option<String>,
    dataset_hash: Option<String>,
    train_seed: Option<u64>,
    train_epochs: Option<u64>,
    samples: Option<u64>,
    eval_mse: Option<f64>,
    /// For `verdict` events: `"ok"` or `"regression"`.
    verdict: Option<String>,
    /// Free-form detail (lineage note, verdict evidence, …).
    detail: Option<String>,
}

/// Where a registered model sits in the promotion state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionState {
    /// The `CURRENT` pointer names this model.
    Current,
    /// Never promoted; eligible (no blocking verdict).
    Candidate,
    /// Latest recorded verdict is a regression — promotion needs `force`.
    Rejected,
    /// Promoted in the past, since superseded.
    Retired,
}

impl PromotionState {
    /// Stable lower-case label for JSON/CLI output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PromotionState::Current => "current",
            PromotionState::Candidate => "candidate",
            PromotionState::Rejected => "rejected",
            PromotionState::Retired => "retired",
        }
    }
}

/// One registered model as the registry sees it.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Canonical content hash (32 lowercase hex chars) — the model's id.
    pub hash: String,
    /// Registration sequence number (ordering within the manifest).
    pub seq: u64,
    /// Lineage recorded at registration.
    pub lineage: Lineage,
    /// Whether the model file is still on disk (false after `gc`).
    pub present: bool,
    /// Latest recorded verdict for this model, if any.
    pub verdict: Option<String>,
    /// Times this model has been promoted.
    pub promotions: u64,
}

/// The registry handle. Cheap to open: state is rebuilt from the manifest
/// on every `open`, so concurrent writers (a CLI and a serving process)
/// coordinate through the append-only file and the atomic `CURRENT`
/// rename, not through shared memory.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    entries: Vec<ModelEntry>,
    /// Promote events in manifest order (may repeat hashes).
    promote_log: Vec<String>,
    current: Option<String>,
    next_seq: u64,
}

/// Writes `bytes` to `final_path` with the durable-rename discipline
/// (mirrors `analogfold`'s shard writes; that helper is crate-private).
pub(crate) fn write_durable(
    dir: &Path,
    tmp: &Path,
    final_path: &Path,
    bytes: &[u8],
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(tmp, final_path)?;
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    Ok(())
}

impl ModelRegistry {
    /// Opens (or initializes) the registry at `dir`, replaying the
    /// manifest. Corrupt manifest lines are counted
    /// (`model.manifest_corrupt`), warned about, and skipped — a torn tail
    /// from a crashed append must not take the registry down.
    ///
    /// # Errors
    ///
    /// Filesystem failures other than missing files.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let mut reg = Self {
            dir,
            entries: Vec::new(),
            promote_log: Vec::new(),
            current: None,
            next_seq: 0,
        };
        let manifest = reg.dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&manifest) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };
        for raw in text.lines() {
            if raw.trim().is_empty() {
                continue;
            }
            let line: ManifestLine = match serde_json::from_str(raw) {
                Ok(l) => l,
                Err(e) => {
                    af_obs::counter("model.manifest_corrupt", 1);
                    af_obs::warn(&format!(
                        "corrupt manifest line in {}: {e}; skipping",
                        manifest.display()
                    ));
                    continue;
                }
            };
            reg.next_seq = reg.next_seq.max(line.seq + 1);
            reg.apply(line);
        }
        // The CURRENT pointer, not the promote log, is the authority on the
        // incumbent: it is what survives a manifest truncation.
        let current_path = reg.dir.join(CURRENT_FILE);
        match fs::read_to_string(&current_path) {
            Ok(t) => {
                let hash = t.trim().to_string();
                if !hash.is_empty() {
                    reg.current = Some(hash);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(reg)
    }

    fn apply(&mut self, line: ManifestLine) {
        match line.event.as_str() {
            "register" => {
                if self.entry(&line.hash).is_none() {
                    let present = self.model_path(&line.hash).exists();
                    self.entries.push(ModelEntry {
                        hash: line.hash,
                        seq: line.seq,
                        lineage: Lineage {
                            parent: line.parent,
                            dataset_hash: line.dataset_hash,
                            train_seed: line.train_seed,
                            train_epochs: line.train_epochs,
                            samples: line.samples,
                            eval_mse: line.eval_mse,
                            note: line.detail,
                        },
                        present,
                        verdict: None,
                        promotions: 0,
                    });
                }
            }
            "promote" => {
                self.promote_log.push(line.hash.clone());
                if let Some(e) = self.entry_mut(&line.hash) {
                    e.promotions += 1;
                }
            }
            "verdict" => {
                if let Some(e) = self.entry_mut(&line.hash) {
                    e.verdict = line.verdict;
                }
            }
            other => {
                // Future event kinds are data, not errors.
                af_obs::warn(&format!("unknown manifest event `{other}`; ignoring"));
            }
        }
    }

    /// Registry root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the model file for `hash`.
    #[must_use]
    pub fn model_path(&self, hash: &str) -> PathBuf {
        self.dir.join("models").join(format!("{hash}.json"))
    }

    /// The promoted (incumbent) model hash, if any.
    #[must_use]
    pub fn current(&self) -> Option<&str> {
        self.current.as_deref()
    }

    /// Registered models in registration order.
    #[must_use]
    pub fn list(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Looks up a model by its full hash.
    #[must_use]
    pub fn entry(&self, hash: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| e.hash == hash)
    }

    fn entry_mut(&mut self, hash: &str) -> Option<&mut ModelEntry> {
        self.entries.iter_mut().find(|e| e.hash == hash)
    }

    /// The promotion state of a registered model.
    #[must_use]
    pub fn state(&self, entry: &ModelEntry) -> PromotionState {
        if self.current.as_deref() == Some(entry.hash.as_str()) {
            PromotionState::Current
        } else if entry.verdict.as_deref() == Some("regression") {
            PromotionState::Rejected
        } else if entry.promotions > 0 {
            PromotionState::Retired
        } else {
            PromotionState::Candidate
        }
    }

    /// Resolves a full hash or unique prefix to the full hash.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] or [`RegistryError::Ambiguous`].
    pub fn resolve(&self, prefix: &str) -> Result<String, RegistryError> {
        if prefix.is_empty() {
            return Err(RegistryError::NotFound(String::new()));
        }
        if let Some(e) = self.entry(prefix) {
            return Ok(e.hash.clone());
        }
        let matches: Vec<&ModelEntry> = self
            .entries
            .iter()
            .filter(|e| e.hash.starts_with(prefix))
            .collect();
        match matches.len() {
            0 => Err(RegistryError::NotFound(prefix.to_string())),
            1 => Ok(matches[0].hash.clone()),
            _ => Err(RegistryError::Ambiguous(prefix.to_string())),
        }
    }

    /// The newest registered model that is not the incumbent and whose file
    /// is still present — what a serving process canaries by default.
    #[must_use]
    pub fn latest_candidate(&self) -> Option<&ModelEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.present && Some(e.hash.as_str()) != self.current())
    }

    /// Registers `gnn`, durably publishing its model file and appending the
    /// lineage line. Idempotent: re-registering identical weights (same
    /// content hash) returns the existing entry without rewriting.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn register(
        &mut self,
        gnn: &ThreeDGnn,
        lineage: Lineage,
    ) -> Result<ModelEntry, RegistryError> {
        let hash = content_hash_of(gnn).to_hex();
        if let Some(existing) = self.entry(&hash) {
            if existing.present {
                return Ok(existing.clone());
            }
        }
        let models_dir = self.dir.join("models");
        fs::create_dir_all(&models_dir)?;
        // Publish the model file first: write the normal save envelope to a
        // dot-tmp sibling (readers ignore non-`<hash>.json` names), fsync,
        // then rename into place and fsync the directory. The `model.publish`
        // failpoint lets chaos tests kill this exact window.
        af_fault::fail!(
            "model.publish",
            RegistryError::Io(std::io::Error::other(af_fault::injected("model.publish")))
        );
        let tmp = models_dir.join(format!(".{hash}.tmp"));
        gnn.save(&tmp)?;
        fs::File::open(&tmp)?.sync_all()?;
        fs::rename(&tmp, self.model_path(&hash))?;
        #[cfg(unix)]
        fs::File::open(&models_dir)?.sync_all()?;

        let seq = self.next_seq;
        self.append(&ManifestLine {
            event: "register".to_string(),
            seq,
            hash: hash.clone(),
            parent: lineage.parent.clone(),
            dataset_hash: lineage.dataset_hash.clone(),
            train_seed: lineage.train_seed,
            train_epochs: lineage.train_epochs,
            samples: lineage.samples,
            eval_mse: lineage.eval_mse,
            verdict: None,
            detail: lineage.note.clone(),
        })?;
        af_obs::counter("model.registered", 1);
        if let Some(e) = self.entry_mut(&hash) {
            e.present = true;
            let clone = e.clone();
            return Ok(clone);
        }
        let entry = ModelEntry {
            hash,
            seq,
            lineage,
            present: true,
            verdict: None,
            promotions: 0,
        };
        self.entries.push(entry.clone());
        Ok(entry)
    }

    fn append(&mut self, line: &ManifestLine) -> Result<(), RegistryError> {
        let text = serde_json::to_string(line)
            .map_err(|e| RegistryError::Persist(PersistError::from(e)))?;
        fs::create_dir_all(&self.dir)?;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(MANIFEST_FILE))?;
        f.write_all(text.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
        self.next_seq = self.next_seq.max(line.seq + 1);
        Ok(())
    }

    /// Records a canary verdict for a model (`"ok"` or `"regression"`,
    /// with free-form evidence in `detail`). A regression verdict gates
    /// future [`promote`](Self::promote) calls until forced or superseded
    /// by an `"ok"` verdict.
    ///
    /// # Errors
    ///
    /// Unknown hash or filesystem failures.
    pub fn record_verdict(
        &mut self,
        hash_or_prefix: &str,
        regression: bool,
        detail: &str,
    ) -> Result<(), RegistryError> {
        let hash = self.resolve(hash_or_prefix)?;
        let verdict = if regression { "regression" } else { "ok" };
        let seq = self.next_seq;
        self.append(&ManifestLine {
            event: "verdict".to_string(),
            seq,
            hash: hash.clone(),
            parent: None,
            dataset_hash: None,
            train_seed: None,
            train_epochs: None,
            samples: None,
            eval_mse: None,
            verdict: Some(verdict.to_string()),
            detail: Some(detail.to_string()),
        })?;
        if regression {
            af_obs::counter("canary.regressions", 1);
        }
        if let Some(e) = self.entry_mut(&hash) {
            e.verdict = Some(verdict.to_string());
        }
        Ok(())
    }

    /// Promotes a model: durably republishes the `CURRENT` pointer and
    /// appends a promote event. Refused when the model's latest recorded
    /// verdict is a regression, unless `force`.
    ///
    /// # Errors
    ///
    /// Unknown hash, missing model file, refused promotion, or filesystem
    /// failures.
    pub fn promote(&mut self, hash_or_prefix: &str, force: bool) -> Result<String, RegistryError> {
        let hash = self.resolve(hash_or_prefix)?;
        let entry = self
            .entry(&hash)
            .ok_or_else(|| RegistryError::NotFound(hash.clone()))?;
        if !entry.present {
            return Err(RegistryError::NotFound(format!(
                "{hash} (model file was garbage-collected)"
            )));
        }
        if !force && entry.verdict.as_deref() == Some("regression") {
            af_obs::counter("canary.promotions_blocked", 1);
            return Err(RegistryError::Refused(format!(
                "model {hash} has a recorded regression verdict (re-run canary or use force)"
            )));
        }
        let tmp = self.dir.join(".CURRENT.tmp");
        let final_path = self.dir.join(CURRENT_FILE);
        write_durable(&self.dir.clone(), &tmp, &final_path, hash.as_bytes())?;
        let seq = self.next_seq;
        self.append(&ManifestLine {
            event: "promote".to_string(),
            seq,
            hash: hash.clone(),
            parent: None,
            dataset_hash: None,
            train_seed: None,
            train_epochs: None,
            samples: None,
            eval_mse: None,
            verdict: None,
            detail: None,
        })?;
        af_obs::counter("model.promotions", 1);
        self.promote_log.push(hash.clone());
        if let Some(e) = self.entry_mut(&hash) {
            e.promotions += 1;
        }
        self.current = Some(hash.clone());
        Ok(hash)
    }

    /// Rolls back to the most recently promoted hash that differs from the
    /// incumbent (forced: it was trusted before).
    ///
    /// # Errors
    ///
    /// No previous promotion to roll back to, or promotion failures.
    pub fn rollback(&mut self) -> Result<String, RegistryError> {
        let current = self.current.clone();
        let previous = self
            .promote_log
            .iter()
            .rev()
            .find(|h| Some(h.as_str()) != current.as_deref())
            .cloned()
            .ok_or_else(|| {
                RegistryError::Refused("no previous promotion to roll back to".to_string())
            })?;
        af_obs::counter("model.rollbacks", 1);
        self.promote(&previous, true)
    }

    /// Garbage-collects model files, keeping the incumbent plus the `keep`
    /// most recently registered models. Manifest history is never touched —
    /// lineage outlives the bytes. Returns the removed hashes.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn gc(&mut self, keep: usize) -> Result<Vec<String>, RegistryError> {
        let mut survivors: BTreeMap<String, ()> = BTreeMap::new();
        if let Some(c) = &self.current {
            survivors.insert(c.clone(), ());
        }
        for e in self.entries.iter().rev().take(keep) {
            survivors.insert(e.hash.clone(), ());
        }
        let mut removed = Vec::new();
        for e in &mut self.entries {
            if e.present && !survivors.contains_key(&e.hash) {
                match fs::remove_file(self.dir.join("models").join(format!("{}.json", e.hash))) {
                    Ok(()) => {
                        e.present = false;
                        removed.push(e.hash.clone());
                    }
                    Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                        e.present = false;
                    }
                    Err(err) => return Err(err.into()),
                }
            }
        }
        // Sweep publication strays from crashed registrations.
        if let Ok(entries) = fs::read_dir(self.dir.join("models")) {
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if name.starts_with('.') && name.ends_with(".tmp") {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        af_obs::counter("model.gc_removed", removed.len() as u64);
        Ok(removed)
    }

    /// Loads a registered model by hash or unique prefix, re-validating the
    /// v2 envelope (whose content hash is the registry id itself — a
    /// tampered body fails here, not at prediction time).
    ///
    /// # Errors
    ///
    /// Unknown hash or load/validation failures.
    pub fn load(&self, hash_or_prefix: &str) -> Result<ThreeDGnn, RegistryError> {
        let hash = self.resolve(hash_or_prefix)?;
        Ok(ThreeDGnn::load(self.model_path(&hash))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analogfold::GnnConfig;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("af-model-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny(seed: u64) -> ThreeDGnn {
        ThreeDGnn::new(&GnnConfig {
            hidden: 6,
            layers: 1,
            seed,
            ..GnnConfig::default()
        })
    }

    #[test]
    fn register_promote_rollback_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.current().is_none());
        let a = reg.register(&tiny(1), Lineage::default()).unwrap();
        let b = reg
            .register(
                &tiny(2),
                Lineage {
                    parent: Some(a.hash.clone()),
                    samples: Some(4),
                    ..Lineage::default()
                },
            )
            .unwrap();
        assert_ne!(a.hash, b.hash);
        assert_eq!(reg.list().len(), 2);

        reg.promote(&a.hash, false).unwrap();
        reg.promote(&b.hash, false).unwrap();
        assert_eq!(reg.current(), Some(b.hash.as_str()));

        // Reopen: state rebuilt from disk, including lineage and order.
        let mut reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.current(), Some(b.hash.as_str()));
        assert_eq!(
            reg.list()[1].lineage.parent.as_deref(),
            Some(a.hash.as_str())
        );
        assert_eq!(reg.list()[1].lineage.samples, Some(4));
        let loaded = reg.load(&b.hash[..8]).unwrap();
        assert_eq!(content_hash_of(&loaded).to_hex(), b.hash);

        let back = reg.rollback().unwrap();
        assert_eq!(back, a.hash);
        assert_eq!(reg.current(), Some(a.hash.as_str()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reregistration_is_idempotent() {
        let dir = tmp_dir("idem");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        let a1 = reg.register(&tiny(5), Lineage::default()).unwrap();
        let a2 = reg.register(&tiny(5), Lineage::default()).unwrap();
        assert_eq!(a1.hash, a2.hash);
        assert_eq!(reg.list().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_line_degrades_to_skip_with_warn() {
        let dir = tmp_dir("tamper");
        let (a, b) = {
            let mut reg = ModelRegistry::open(&dir).unwrap();
            let a = reg.register(&tiny(1), Lineage::default()).unwrap();
            let b = reg.register(&tiny(2), Lineage::default()).unwrap();
            reg.promote(&b.hash, false).unwrap();
            (a, b)
        };
        // Corrupt the *first* line and append a torn tail (crashed append).
        let manifest = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&manifest).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = "{definitely not json".to_string();
        lines.push("{\"event\":\"regis".to_string());
        fs::write(&manifest, lines.join("\n")).unwrap();

        let sink = std::sync::Arc::new(af_obs::MemorySink::new());
        let guard = af_obs::install(sink.clone());
        let reg = ModelRegistry::open(&dir).unwrap();
        drop(guard);

        // Entry `a`'s register line was destroyed; `b` survives and CURRENT
        // still resolves.
        assert_eq!(reg.current(), Some(b.hash.as_str()));
        assert!(reg.entry(&b.hash).is_some());
        assert!(reg.entry(&a.hash).is_none());
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            af_obs::Event::Counter { name, .. } if name == "model.manifest_corrupt"
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            af_obs::Event::Log { level, message, .. }
                if level == "warn" && message.contains("corrupt manifest")
        )));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_model_body_fails_at_load() {
        let dir = tmp_dir("body-tamper");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        let a = reg.register(&tiny(3), Lineage::default()).unwrap();
        let path = reg.model_path(&a.hash);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("0.0", "0.125", 1)).unwrap();
        assert!(matches!(
            reg.load(&a.hash),
            Err(RegistryError::Persist(PersistError::Header(_)))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_verdict_blocks_promotion_unless_forced() {
        let dir = tmp_dir("verdict");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        let a = reg.register(&tiny(1), Lineage::default()).unwrap();
        reg.record_verdict(&a.hash, true, "candidate err 0.9 vs incumbent 0.2")
            .unwrap();
        assert!(matches!(
            reg.promote(&a.hash, false),
            Err(RegistryError::Refused(_))
        ));
        assert_eq!(
            reg.state(&reg.entry(&a.hash).unwrap().clone()),
            PromotionState::Rejected
        );
        reg.promote(&a.hash, true).unwrap();
        assert_eq!(reg.current(), Some(a.hash.as_str()));
        // A later ok verdict lifts the gate.
        reg.record_verdict(&a.hash, false, "re-evaluated").unwrap();
        reg.promote(&a.hash, false).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_current_and_recent_and_ignores_strays() {
        let dir = tmp_dir("gc");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        let hashes: Vec<String> = (0..4)
            .map(|i| reg.register(&tiny(i), Lineage::default()).unwrap().hash)
            .collect();
        reg.promote(&hashes[0], false).unwrap();
        // A stray tmp from a crashed publication must be invisible and swept.
        fs::write(dir.join("models").join(".deadbeef.tmp"), "partial").unwrap();
        assert!(ModelRegistry::open(&dir).unwrap().list().len() == 4);

        let removed = reg.gc(2).unwrap();
        // Keep = {current = hashes[0]} ∪ {2 newest = hashes[2], hashes[3]}.
        assert_eq!(removed, vec![hashes[1].clone()]);
        assert!(!dir.join("models").join(".deadbeef.tmp").exists());
        assert!(reg.model_path(&hashes[0]).exists());
        assert!(!reg.model_path(&hashes[1]).exists());
        assert!(matches!(
            reg.promote(&hashes[1], true),
            Err(RegistryError::NotFound(_))
        ));
        // Lineage outlives the bytes.
        assert_eq!(reg.list().len(), 4);
        assert!(!reg.entry(&hashes[1]).unwrap().present);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_prefixes() {
        let dir = tmp_dir("resolve");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        let a = reg.register(&tiny(1), Lineage::default()).unwrap();
        assert_eq!(reg.resolve(&a.hash[..6]).unwrap(), a.hash);
        assert!(matches!(
            reg.resolve("zzzz"),
            Err(RegistryError::NotFound(_))
        ));
        assert!(matches!(reg.resolve(""), Err(RegistryError::NotFound(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
