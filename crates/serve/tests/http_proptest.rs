//! Property-based tests of the HTTP layer: the parser must never panic on
//! arbitrary bytes, must accept every well-formed request it is shown
//! (including pipelined keep-alive sequences), and must classify
//! malformed vs. oversized inputs as `400` vs. `413` material.

use std::io::BufReader;

use af_serve::http::{
    read_request, ParseError, MAX_BODY, MAX_HEADERS, MAX_HEADER_LINE, MAX_REQUEST_LINE,
};
use proptest::prelude::*;

fn parse(raw: &[u8]) -> Result<Option<af_serve::http::Request>, ParseError> {
    read_request(&mut BufReader::new(raw))
}

/// Lower-case ASCII identifier of length 1..=n from raw bytes.
fn ident(bytes: Vec<u8>) -> String {
    let s: String = bytes.iter().map(|b| (b'a' + (b % 26)) as char).collect();
    if s.is_empty() {
        "x".to_string()
    } else {
        s
    }
}

/// A syntactically valid request with `headers` extra headers and `body`.
fn render_request(path_bytes: Vec<u8>, headers: Vec<(Vec<u8>, Vec<u8>)>, body: Vec<u8>) -> Vec<u8> {
    let mut raw = format!("POST /{} HTTP/1.1\r\n", ident(path_bytes));
    for (i, (name, value)) in headers.iter().enumerate() {
        // Suffix with the index so generated names never collide with
        // content-length (and stay unique enough to assert on).
        raw.push_str(&format!(
            "{}{}: {}\r\n",
            ident(name.clone()),
            i,
            ident(value.clone())
        ));
    }
    raw.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut out = raw.into_bytes();
    out.extend_from_slice(&body);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(0u8..=255, 0..400)) {
        // Any outcome is fine; panicking or looping forever is not.
        let _ = parse(&raw);
    }

    #[test]
    fn almost_http_bytes_never_panic(
        prefix in prop::collection::vec(0u8..=255, 0..40),
        cut in 0usize..60,
    ) {
        // Mutations of a valid request: truncations and injected garbage.
        let valid = b"POST /v1/predict HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello".to_vec();
        let truncated = &valid[..cut.min(valid.len())];
        let _ = parse(truncated);
        let mut corrupted = prefix;
        corrupted.extend_from_slice(&valid);
        let _ = parse(&corrupted);
    }

    #[test]
    fn well_formed_requests_parse_back(
        path in prop::collection::vec(0u8..=255, 1..12),
        headers in prop::collection::vec(
            (prop::collection::vec(0u8..=255, 1..8), prop::collection::vec(0u8..=255, 0..12)),
            0..5,
        ),
        body in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let raw = render_request(path.clone(), headers.clone(), body.clone());
        let req = parse(&raw).expect("well-formed request must parse").expect("not eof");
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path, format!("/{}", ident(path)));
        prop_assert_eq!(req.body, body);
        // The synthesized headers plus content-length, all preserved.
        prop_assert_eq!(req.headers.len(), headers.len() + 1);
    }

    #[test]
    fn truncated_bodies_are_bad_requests(
        body in prop::collection::vec(0u8..=255, 1..100),
        short_by in 1usize..100,
    ) {
        let mut raw = format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len()).into_bytes();
        let keep = body.len().saturating_sub(short_by.min(body.len()));
        raw.extend_from_slice(&body[..keep]);
        prop_assert!(matches!(parse(&raw), Err(ParseError::Bad(_))));
    }

    #[test]
    fn oversized_inputs_are_too_large(which in 0u8..4, excess in 1usize..64) {
        let raw: Vec<u8> = match which {
            0 => format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + excess)).into_bytes(),
            1 => format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(MAX_HEADER_LINE + excess)).into_bytes(),
            2 => {
                let mut s = String::from("GET /x HTTP/1.1\r\n");
                for i in 0..MAX_HEADERS + excess {
                    s.push_str(&format!("h{i}: v\r\n"));
                }
                s.push_str("\r\n");
                s.into_bytes()
            }
            _ => format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + excess).into_bytes(),
        };
        prop_assert!(matches!(parse(&raw), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_bad(a in 0usize..50, delta in 1usize..50) {
        let b = a + delta;
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {a}\r\ncontent-length: {b}\r\n\r\n{}",
            "p".repeat(b)
        );
        prop_assert!(matches!(parse(raw.as_bytes()), Err(ParseError::Bad(_))));
        // Duplicate but *agreeing* lengths are accepted.
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {a}\r\ncontent-length: {a}\r\n\r\n{}",
            "p".repeat(a)
        );
        prop_assert!(parse(raw.as_bytes()).unwrap().is_some());
    }

    #[test]
    fn pipelined_keepalive_sequences_parse_in_order(
        bodies in prop::collection::vec(prop::collection::vec(0u8..=255, 0..60), 1..6),
    ) {
        let mut raw = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            raw.extend_from_slice(
                format!("POST /req{i} HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len()).as_bytes(),
            );
            raw.extend_from_slice(body);
        }
        let mut reader = BufReader::new(raw.as_slice());
        for (i, body) in bodies.iter().enumerate() {
            let req = read_request(&mut reader)
                .expect("pipelined request must parse")
                .expect("not eof");
            prop_assert_eq!(req.path, format!("/req{i}"));
            prop_assert_eq!(&req.body, body);
        }
        prop_assert!(read_request(&mut reader).unwrap().is_none());
    }
}
