//! End-to-end tests over real loopback sockets: an in-process server with
//! a resident (untrained) model — serving semantics are independent of
//! training quality — exercised by raw HTTP/1.1 clients.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use af_serve::{JobStore, ModelBundle, ServeConfig, Server, ServerHandle};
use analogfold::{GnnConfig, ThreeDGnn};

fn tiny_bundle() -> ModelBundle {
    let gnn = ThreeDGnn::new(&GnnConfig {
        hidden: 8,
        layers: 1,
        ..GnnConfig::default()
    });
    ModelBundle::with_model("OTA1", "A", gnn).unwrap()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("af-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, tweak: impl FnOnce(&mut ServeConfig)) -> (ServerHandle, std::path::PathBuf) {
    let dir = tmp_dir(name);
    let mut cfg = ServeConfig {
        job_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    (Server::bind(tiny_bundle(), cfg).unwrap(), dir)
}

struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_response(reader: &mut impl BufRead) -> HttpResponse {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').unwrap();
        let (name, value) = (name.to_ascii_lowercase(), value.trim().to_string());
        if name == "content-length" {
            content_length = value.parse().unwrap();
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    HttpResponse {
        status,
        headers,
        body: String::from_utf8(body).unwrap(),
    }
}

/// One-shot request on a fresh connection.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    read_response(&mut BufReader::new(stream))
}

/// Pulls a JSON number field out of a flat rendering (the vendored
/// serde_json prints maps without spaces, so `"name":value` is reliable).
fn json_f64(body: &str, field: &str) -> f64 {
    let key = format!("\"{field}\":");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    let end = rest.find([',', '}', ']']).unwrap();
    rest[..end].parse().unwrap()
}

fn json_str(body: &str, field: &str) -> String {
    let key = format!("\"{field}\":\"");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    rest[..rest.find('"').unwrap()].to_string()
}

#[test]
fn health_metrics_and_error_statuses() {
    let (server, _dir) = start("health", |_| {});
    let addr = server.addr();

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(json_str(&health.body, "circuit"), "OTA1");
    let guidance_len = json_f64(&health.body, "guidance_len") as usize;
    assert!(guidance_len > 0);

    let metrics = request(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; charset=utf-8")
    );

    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "GET", "/v1/predict", "").status, 405);
    assert_eq!(request(addr, "POST", "/v1/predict", "not json").status, 400);
    assert_eq!(
        request(addr, "POST", "/v1/predict", "{\"guidance\":[1.0]}").status,
        400,
        "wrong guidance length is a client error"
    );
    assert_eq!(request(addr, "GET", "/v1/jobs/notanumber", "").status, 400);
    assert_eq!(request(addr, "GET", "/v1/jobs/4242", "").status, 404);

    server.shutdown();
    server.join();
}

#[test]
fn keepalive_serves_sequential_requests_on_one_connection() {
    let (server, _dir) = start("keepalive", |_| {});
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(read_response(&mut reader).status, 200);
    }

    server.shutdown();
    server.join();
}

#[test]
fn batched_predictions_are_bit_identical_to_single_requests() {
    let (server, _dir) = start("bitident", |cfg| {
        // Handler threads block on the batcher reply, so concurrency does
        // not need cores (the CI container may have one): pin the worker
        // count instead of relying on the hardware-derived default.
        cfg.workers = 6;
        cfg.batch_max = 8;
        cfg.batch_window_us = 200_000; // generous window to force coalescing
    });
    let addr = server.addr();

    let bundle = tiny_bundle();
    let len = bundle.guidance_len();
    let inputs: Vec<Vec<f64>> = (0..6)
        .map(|k| (0..len).map(|i| ((i + k) as f64).sin() * 0.4).collect())
        .collect();
    let mut session = bundle.session();
    let expected: Vec<[f64; 5]> = inputs.iter().map(|g| session.predict(g)).collect();

    // Fire all six concurrently so the collector coalesces them.
    let inputs = Arc::new(inputs);
    let handles: Vec<_> = (0..inputs.len())
        .map(|k| {
            let inputs = Arc::clone(&inputs);
            std::thread::spawn(move || {
                let guidance: Vec<String> = inputs[k].iter().map(|v| format!("{v:?}")).collect();
                let body = format!("{{\"guidance\":[{}]}}", guidance.join(","));
                request(addr, "POST", "/v1/predict", &body)
            })
        })
        .collect();
    let responses: Vec<HttpResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut max_batch = 0u64;
    for (resp, want) in responses.iter().zip(&expected) {
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let got = [
            json_f64(&resp.body, "offset_uv"),
            json_f64(&resp.body, "cmrr_db"),
            json_f64(&resp.body, "bandwidth_mhz"),
            json_f64(&resp.body, "dc_gain_db"),
            json_f64(&resp.body, "noise_uvrms"),
        ];
        // Bit-identical: vendored serde_json prints f64 via `{:?}`, which
        // round-trips exactly, so exact equality is the right assertion.
        assert_eq!(got, *want, "batched result must match one-shot predict");
        max_batch = max_batch.max(json_f64(&resp.body, "batch_size") as u64);
    }
    assert!(
        max_batch >= 2,
        "six concurrent requests inside a 100ms window should coalesce, max batch {max_batch}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn identical_predicts_hit_the_response_cache() {
    let (server, _dir) = start("cache", |cfg| {
        cfg.cache_mb = 8;
    });
    let addr = server.addr();
    let bundle = tiny_bundle();
    let body = format!(
        "{{\"guidance\":[{}]}}",
        vec!["0.7"; bundle.guidance_len()].join(",")
    );

    let first = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));

    let second = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(
        second.body, first.body,
        "a cache hit must replay the exact body"
    );

    // A different request is its own key.
    let other_body = format!(
        "{{\"guidance\":[{}]}}",
        vec!["0.9"; bundle.guidance_len()].join(",")
    );
    let other = request(addr, "POST", "/v1/predict", &other_body);
    assert_eq!(other.header("x-cache"), Some("miss"));

    // x-no-cache bypasses: fresh compute, no x-cache header.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let raw = format!(
        "POST /v1/predict HTTP/1.1\r\ncontent-length: {}\r\nx-no-cache: 1\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let bypass = read_response(&mut BufReader::new(stream));
    assert_eq!(bypass.status, 200);
    assert_eq!(bypass.header("x-cache"), None, "bypass skips the cache");

    server.shutdown();
    server.join();
}

#[test]
fn cache_disabled_serves_uncached() {
    let (server, _dir) = start("nocache", |cfg| {
        cfg.cache_mb = 0;
    });
    let addr = server.addr();
    let bundle = tiny_bundle();
    let body = format!(
        "{{\"guidance\":[{}]}}",
        vec!["0.7"; bundle.guidance_len()].join(",")
    );
    for _ in 0..2 {
        let resp = request(addr, "POST", "/v1/predict", &body);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), None);
    }
    server.shutdown();
    server.join();
}

#[test]
fn flooding_a_bounded_queue_sheds_with_429_and_retry_after() {
    let (server, _dir) = start("flood", |cfg| {
        cfg.workers = 1;
        cfg.conn_queue = 1;
        cfg.batch_max = 8;
        cfg.batch_window_us = 500_000; // hold the lone worker in the batcher
    });
    let addr = server.addr();
    let bundle = tiny_bundle();
    let body = format!(
        "{{\"guidance\":[{}]}}",
        vec!["0.1"; bundle.guidance_len()].join(",")
    );

    // Occupy the single worker: its reply waits out the 500ms batch window.
    let blocker = {
        let body = body.clone();
        std::thread::spawn(move || request(addr, "POST", "/v1/predict", &body))
    };
    std::thread::sleep(Duration::from_millis(150)); // let it reach the batcher

    // Flood: first extra connection parks in the queue (capacity 1), the
    // rest must be shed at accept with 429 + Retry-After.
    let flood: Vec<_> = (0..5)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || request(addr, "POST", "/v1/predict", &body))
        })
        .collect();
    let statuses: Vec<u16> = flood
        .into_iter()
        .map(|h| {
            let resp = h.join().unwrap();
            if resp.status == 429 {
                assert_eq!(resp.header("retry-after"), Some("1"));
            }
            resp.status
        })
        .collect();
    assert!(
        statuses.iter().filter(|s| **s == 429).count() >= 3,
        "overflowing a capacity-1 queue must shed most of 5 floods, got {statuses:?}"
    );
    assert_eq!(blocker.join().unwrap().status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn route_jobs_complete_survive_restart_and_drain_on_shutdown() {
    let (server, dir) = start("jobs", |cfg| {
        cfg.job_workers = 1;
    });
    let addr = server.addr();

    // Cheap flow parameters: untrained model, 2 restarts, 1 candidate.
    let submit = request(
        addr,
        "POST",
        "/v1/route",
        "{\"restarts\":2,\"lbfgs_iters\":3,\"n_derive\":1,\"seed\":5}",
    );
    assert_eq!(submit.status, 202, "body: {}", submit.body);
    let id = json_f64(&submit.body, "id") as u64;
    assert_eq!(json_str(&submit.body, "status"), "queued");

    // Poll to completion.
    let deadline = Instant::now() + Duration::from_secs(300);
    let final_body = loop {
        let poll = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(poll.status, 200);
        let status = json_str(&poll.body, "status");
        match status.as_str() {
            "done" => break poll.body,
            "failed" => panic!("job failed: {}", poll.body),
            _ => {
                assert!(Instant::now() < deadline, "job did not finish in time");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    assert!(json_f64(&final_body, "wirelength_um") > 0.0);
    assert!(json_f64(&final_body, "bandwidth_mhz").is_finite());

    // A second job queued right before shutdown must still complete: join()
    // drains the job queue before returning.
    let submit2 = request(
        addr,
        "POST",
        "/v1/route",
        "{\"restarts\":1,\"lbfgs_iters\":2,\"n_derive\":1,\"seed\":6}",
    );
    assert_eq!(submit2.status, 202);
    let id2 = json_f64(&submit2.body, "id") as u64;
    let shut = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(shut.status, 200);
    server.join();

    // The store on disk has both jobs done — the drained one included.
    let store = JobStore::open(&dir).unwrap();
    assert_eq!(store.get(id).unwrap().status, "done");
    assert_eq!(
        store.get(id2).unwrap().status,
        "done",
        "graceful shutdown must drain queued jobs"
    );
}

fn seeded_gnn(seed: u64) -> ThreeDGnn {
    ThreeDGnn::new(&GnnConfig {
        hidden: 8,
        layers: 1,
        seed,
        ..GnnConfig::default()
    })
}

fn predict_metrics(body: &str) -> [f64; 5] {
    [
        json_f64(body, "offset_uv"),
        json_f64(body, "cmrr_db"),
        json_f64(body, "bandwidth_mhz"),
        json_f64(body, "dc_gain_db"),
        json_f64(body, "noise_uvrms"),
    ]
}

#[test]
fn promotion_hot_swaps_bit_stably_and_partitions_the_cache() {
    use af_model::{Lineage, ModelRegistry};

    let reg_dir = tmp_dir("swap-registry");
    let (gnn1, gnn2) = (seeded_gnn(1), seeded_gnn(2));
    let mut registry = ModelRegistry::open(&reg_dir).unwrap();
    let h1 = registry.register(&gnn1, Lineage::default()).unwrap().hash;
    let h2 = registry.register(&gnn2, Lineage::default()).unwrap().hash;
    assert_ne!(h1, h2);
    registry.promote(&h1, false).unwrap();
    drop(registry);

    // Each model's exact one-shot outputs, computed out of process.
    let bundle1 = ModelBundle::with_model("OTA1", "A", gnn1).unwrap();
    let bundle2 = ModelBundle::with_model("OTA1", "A", gnn2).unwrap();
    let guidance: Vec<f64> = (0..bundle1.guidance_len())
        .map(|i| (i as f64).cos() * 0.3)
        .collect();
    let want1 = bundle1.session().predict(&guidance);
    let want2 = bundle2.session().predict(&guidance);
    assert_ne!(want1, want2, "differently seeded models must differ");
    let body = format!(
        "{{\"guidance\":[{}]}}",
        guidance
            .iter()
            .map(|v| format!("{v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    );

    let dir = tmp_dir("swap-jobs");
    let cfg = ServeConfig {
        job_dir: Some(dir),
        registry: Some(reg_dir.clone()),
        cache_mb: 8,
        ..ServeConfig::default()
    };
    let server = Server::bind(
        ModelBundle::with_model("OTA1", "A", seeded_gnn(1)).unwrap(),
        cfg,
    )
    .unwrap();
    let addr = server.addr();

    // Incumbent answers with its exact one-shot output; repeat hits cache.
    let first = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(predict_metrics(&first.body), want1);
    let again = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(again.header("x-cache"), Some("hit"));
    assert_eq!(again.body, first.body);

    // Promote the candidate over HTTP: the reply names both hashes and the
    // swap is visible to the very next request.
    let promote = request(
        addr,
        "POST",
        "/v1/models/promote",
        &format!("{{\"hash\":\"{h2}\"}}"),
    );
    assert_eq!(promote.status, 200, "body: {}", promote.body);
    assert_eq!(json_str(&promote.body, "model_hash"), h2);
    assert_eq!(json_str(&promote.body, "previous"), h1);

    // Same request, new model: a cache *miss* (keys are partitioned by
    // model hash, so a stale hit is impossible) with the new model's exact
    // output — then a hit replaying exactly that.
    let swapped = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(swapped.status, 200, "body: {}", swapped.body);
    assert_eq!(
        swapped.header("x-cache"),
        Some("miss"),
        "cache must not cross model versions"
    );
    assert_eq!(predict_metrics(&swapped.body), want2);
    let swapped_again = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(swapped_again.header("x-cache"), Some("hit"));
    assert_eq!(swapped_again.body, swapped.body);

    let models = request(addr, "GET", "/v1/models", "");
    assert_eq!(models.status, 200);
    assert_eq!(json_str(&models.body, "resident"), h2);
    assert_eq!(json_str(&models.body, "current"), h2);

    // A candidate with a recorded regression verdict is refused (409)
    // unless forced.
    let mut registry = ModelRegistry::open(&reg_dir).unwrap();
    let h3 = registry
        .register(&seeded_gnn(3), Lineage::default())
        .unwrap()
        .hash;
    registry
        .record_verdict(&h3, true, "e2e regression")
        .unwrap();
    drop(registry);
    let refused = request(
        addr,
        "POST",
        "/v1/models/promote",
        &format!("{{\"hash\":\"{h3}\"}}"),
    );
    assert_eq!(refused.status, 409, "body: {}", refused.body);
    let forced = request(
        addr,
        "POST",
        "/v1/models/promote",
        &format!("{{\"hash\":\"{h3}\",\"force\":true}}"),
    );
    assert_eq!(forced.status, 200, "body: {}", forced.body);
    assert_eq!(json_str(&forced.body, "model_hash"), h3);

    server.shutdown();
    server.join();
}

#[test]
fn restart_with_new_model_marks_recovered_jobs_stale() {
    let dir = tmp_dir("stale-jobs");
    let bundle1 = ModelBundle::with_model("OTA1", "A", seeded_gnn(11)).unwrap();
    let h1 = bundle1.model_hash.clone();
    let cfg = ServeConfig {
        job_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let server = Server::bind(bundle1, cfg.clone()).unwrap();
    let addr = server.addr();
    let submit = request(
        addr,
        "POST",
        "/v1/route",
        "{\"restarts\":1,\"lbfgs_iters\":2,\"n_derive\":1,\"seed\":5}",
    );
    assert_eq!(submit.status, 202, "body: {}", submit.body);
    let id = json_f64(&submit.body, "id") as u64;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let poll = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        match json_str(&poll.body, "status").as_str() {
            "done" => {
                assert_eq!(
                    json_str(&poll.body, "model_hash"),
                    h1,
                    "a done job records which model produced it"
                );
                break;
            }
            "failed" => panic!("job failed: {}", poll.body),
            _ => {
                assert!(Instant::now() < deadline, "job did not finish in time");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    server.shutdown();
    server.join();

    // Restart over the same job store with a *different* model: the
    // recovered result is still served, but marked as produced by a
    // superseded model rather than silently passed off as current.
    let bundle2 = ModelBundle::with_model("OTA1", "A", seeded_gnn(12)).unwrap();
    assert_ne!(bundle2.model_hash, h1);
    let server = Server::bind(bundle2, cfg).unwrap();
    let poll = request(server.addr(), "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(poll.status, 200, "recovered results stay served");
    assert_eq!(json_str(&poll.body, "model_hash"), h1);
    assert!(
        poll.body.contains("\"stale_model\":true"),
        "recovered job from a superseded model must be marked: {}",
        poll.body
    );
    server.shutdown();
    server.join();
}
