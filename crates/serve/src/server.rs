//! The server proper: accept loop, bounded connection queue, handler
//! workers, request routing, and graceful shutdown.
//!
//! Thread layout:
//!
//! ```text
//! accept thread ──try_push──▶ conn queue ──pop──▶ N handler workers
//!                    │ (full: 429 + Retry-After, connection dropped)
//! handler ──predict──▶ batch queue ──▶ collector thread (micro-batches)
//! handler ──route────▶ job queue ────▶ M job workers (persist to store)
//! ```
//!
//! Shutdown: set the flag, self-connect to unblock `accept`, close the
//! connection queue (workers drain it, then exit), then close and drain
//! the predict and job queues — every accepted job completes before
//! [`ServerHandle::join`] returns.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use af_cache::{Cache, CacheBuilder, ContentHash, ContentHasher, FnWeigher};
use af_guard::{Deadline, DEADLINE_HEADER};
use af_model::ModelRegistry;
use af_sim::Performance;
use afrt::{BoundedQueue, PushError};

use crate::api::{
    parse_body, CanaryInfo, GuideRequest, GuideResponse, HealthResponse, ModelInfo, ModelsResponse,
    PredictRequest, PredictResponse, PromoteRequest, PromoteResponse, RouteAccepted, RouteRequest,
};
use crate::batch::{Batcher, SubmitError};
use crate::config::ServeConfig;
use crate::http::{read_request, ParseError, Request, Response};
use crate::jobs::{JobParams, JobRunner, JobStore};
use crate::metrics::render_metrics;
use crate::state::{CanaryCtl, ModelBundle, ModelSlot};
use crate::ServeError;

struct Shared {
    slot: Arc<ModelSlot>,
    canary: Arc<CanaryCtl>,
    batcher: Batcher,
    runner: Mutex<JobRunner>,
    store: Arc<JobStore>,
    cfg: ServeConfig,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    /// Bind time; `/healthz` reports the monotonic distance from it.
    started: Instant,
    /// Response cache for `/v1/predict` and `/v1/guide`: whole 200-status
    /// JSON bodies keyed by request content hash *and* the resident model
    /// hash, so a hit can never replay a previous model's answer. `None`
    /// when disabled.
    response_cache: Option<Cache<ContentHash, String>>,
    /// Serializes registry mutations between the promote endpoint and the
    /// watcher thread (cross-process coordination is the registry's own
    /// append-only/atomic-rename discipline).
    registry_lock: Mutex<()>,
}

/// Server constructor; see [`Server::bind`].
pub struct Server;

/// A running server. Dropping the handle without calling
/// [`join`](ServerHandle::join) aborts ungracefully (threads detach).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    watcher: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the accept/handler/batcher/job threads,
    /// and returns the handle.
    ///
    /// # Errors
    ///
    /// Bind failures and job-store recovery failures.
    pub fn bind(bundle: ModelBundle, cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let model_hash = bundle.model_hash.clone();
        let slot = Arc::new(ModelSlot::new(bundle));
        let canary = Arc::new(CanaryCtl::default());
        let store = Arc::new(JobStore::open(cfg.resolved_job_dir())?);
        // Recovered results produced by a superseded model are marked, not
        // silently re-served as current.
        store.reconcile_model(&model_hash)?;
        let batcher = Batcher::start(&slot, &cfg);
        let runner = JobRunner::start(&slot, &store, &canary, &cfg);
        let shared = Arc::new(Shared {
            slot,
            canary,
            batcher,
            runner: Mutex::new(runner),
            store,
            cfg: cfg.clone(),
            shutting_down: AtomicBool::new(false),
            addr,
            started: Instant::now(),
            response_cache: (cfg.cache_mb > 0).then(|| {
                CacheBuilder::new("serve")
                    .capacity_mb(cfg.cache_mb)
                    .build_weighed(FnWeigher(|_k: &ContentHash, v: &String| {
                        32 + v.len() as u64
                    }))
            }),
            registry_lock: Mutex::new(()),
        });

        let watcher = cfg.registry.is_some().then(|| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-registry-watch".to_string())
                .spawn(move || watcher_loop(&shared))
                .expect("spawn serve registry watcher")
        });

        let conn_queue: Arc<BoundedQueue<TcpStream>> =
            Arc::new(BoundedQueue::new("serve.conns", cfg.conn_queue));

        let workers = (0..cfg.resolved_workers())
            .map(|i| {
                let q = Arc::clone(&conn_queue);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = q.pop() {
                            handle_connection(&shared, stream);
                        }
                    })
                    .expect("spawn serve worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let q = Arc::clone(&conn_queue);
            thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Small JSON responses must not sit in Nagle's
                        // buffer waiting for a delayed ACK (a ~40 ms floor
                        // on keep-alive request/response latency).
                        let _ = stream.set_nodelay(true);
                        // Shed *before* pushing: try_push consumes the
                        // stream on failure, so a full queue is detected
                        // up front while we can still answer 429. The
                        // check/push race can drop a connection silently
                        // under an exactly-simultaneous burst; the common
                        // saturation path stays deterministic.
                        if q.len() >= q.capacity() {
                            af_obs::counter("serve.conns.shed", 1);
                            shed(&shared.cfg, stream);
                            continue;
                        }
                        if q.try_push(stream).is_err() {
                            af_obs::counter("serve.conns.shed", 1);
                        }
                    }
                    q.close();
                })
                .expect("spawn serve accept")
        };

        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers,
            watcher,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The hot-swappable model slot (the load generator drives promotions
    /// through it when measuring swap latency in-process).
    #[must_use]
    pub fn slot(&self) -> Arc<ModelSlot> {
        Arc::clone(&self.shared.slot)
    }

    /// Initiates graceful shutdown without waiting for it to finish.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the server has fully shut down: the accept loop has
    /// exited, every queued connection has been served, and every queued
    /// prediction and routing job has completed.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
        // Connections are done; now drain the work queues behind them. The
        // collector thread itself is joined when the last `Shared` reference
        // drops (via the batcher's `Drop`).
        self.shared.batcher.close_queue();
        self.shared
            .runner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .shutdown();
    }
}

/// Polls the registry for (a) an external promotion — a CLI, a fleet
/// coordinator, or another replica moved `CURRENT`, so swap to converge —
/// and (b) a fresh candidate to put under canary. Exits with the server.
fn watcher_loop(shared: &Shared) {
    let poll = Duration::from_millis(shared.cfg.registry_poll_ms.max(50));
    while !shared.shutting_down.load(Ordering::SeqCst) {
        // Interruptible sleep so shutdown is prompt.
        let mut remaining = poll;
        while !remaining.is_zero() && !shared.shutting_down.load(Ordering::SeqCst) {
            let step = remaining.min(Duration::from_millis(50));
            thread::sleep(step);
            remaining = remaining.saturating_sub(step);
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let _guard = shared
            .registry_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(dir) = &shared.cfg.registry else {
            break;
        };
        let Ok(registry) = ModelRegistry::open(dir) else {
            continue;
        };
        let resident = shared.slot.get().model_hash.clone();
        if let Some(current) = registry.current() {
            if current != resident {
                match load_bundle(shared, &registry, current) {
                    Ok(bundle) => {
                        swap_resident(shared, bundle);
                    }
                    Err(e) => af_obs::warn(&format!(
                        "registry watcher: cannot load promoted model {current}: {e}"
                    )),
                }
            }
        }
        if shared.cfg.canary_fraction > 0.0 {
            let resident = shared.slot.get().model_hash.clone();
            match registry.latest_candidate() {
                Some(entry) if entry.hash != resident => {
                    let already = shared
                        .canary
                        .candidate()
                        .is_some_and(|c| c.model_hash == entry.hash);
                    if !already {
                        match load_bundle(shared, &registry, &entry.hash) {
                            Ok(bundle) => shared.canary.set_candidate(Arc::new(bundle)),
                            Err(e) => af_obs::warn(&format!(
                                "registry watcher: cannot load candidate {}: {e}",
                                entry.hash
                            )),
                        }
                    }
                }
                _ => shared.canary.clear(),
            }
        }
    }
}

/// Loads a registered model into a bundle shaped like the resident one
/// (same circuit, placement variant, tech, graph — only the weights
/// change).
fn load_bundle(
    shared: &Shared,
    registry: &ModelRegistry,
    hash: &str,
) -> Result<ModelBundle, String> {
    let gnn = registry.load(hash).map_err(|e| e.to_string())?;
    let resident = shared.slot.get();
    ModelBundle::with_model(resident.circuit.name(), resident.variant.label(), gnn)
        .map_err(|e| e.to_string())
}

/// Installs a new resident model and reconciles the dependent state: the
/// canary arm (a promoted candidate stops being a candidate) and the job
/// store's stale-model marks.
fn swap_resident(shared: &Shared, bundle: ModelBundle) -> Arc<ModelBundle> {
    let new_hash = bundle.model_hash.clone();
    let old = shared.slot.swap(bundle);
    if shared
        .canary
        .candidate()
        .is_some_and(|c| c.model_hash == new_hash)
    {
        shared.canary.clear();
    }
    let _ = shared.store.reconcile_model(&new_hash);
    old
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the accept loop; it re-checks the flag before queueing.
    let _ = TcpStream::connect(shared.addr);
}

/// Writes the load-shedding response directly from the accept thread.
fn shed(cfg: &ServeConfig, mut stream: TcpStream) {
    let resp = Response::error(429, "server overloaded, retry later")
        .with_header("retry-after", cfg.retry_after_s.to_string())
        .with_close();
    let _ = resp.write_to(&mut stream);
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.keepalive_idle_ms.max(1),
    )));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(req)) => {
                af_obs::counter("serve.requests", 1);
                let mut resp = dispatch(shared, &req);
                let close =
                    resp.close || req.wants_close() || shared.shutting_down.load(Ordering::SeqCst);
                if close {
                    resp = resp.with_close();
                }
                af_obs::counter(&format!("serve.status.{}", resp.status), 1);
                if resp.write_to(&mut stream).is_err() || close {
                    break;
                }
            }
            Err(ParseError::Bad(msg)) => {
                af_obs::counter("serve.status.400", 1);
                let _ = Response::error(400, &msg)
                    .with_close()
                    .write_to(&mut stream);
                break;
            }
            Err(ParseError::TooLarge(msg)) => {
                af_obs::counter("serve.status.413", 1);
                let _ = Response::error(413, &msg)
                    .with_close()
                    .write_to(&mut stream);
                break;
            }
            // Idle timeout between requests or peer reset: just close.
            Err(ParseError::Io(_)) => break,
        }
    }
}

fn dispatch(shared: &Shared, req: &Request) -> Response {
    // Deadline gate for every route: a malformed budget is a client error,
    // an expired one is shed here — before the response cache, the batch
    // queue, or the job store see the request.
    let deadline = match req.header(DEADLINE_HEADER) {
        Some(raw) => match Deadline::parse(raw, shared.cfg.deadline_max_ms) {
            Ok(d) => Some(d),
            Err(e) => return Response::error(400, &e.to_string()),
        },
        None => None,
    };
    if deadline.is_some_and(|d| d.expired()) {
        af_guard::shed("conn");
        return Response::error(408, "request deadline already expired");
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => health(shared),
        ("GET", "/metrics") => Response::text(200, &render_metrics()),
        ("POST", "/v1/predict") => {
            with_response_cache(shared, req, || predict(shared, req, deadline))
        }
        ("POST", "/v1/guide") => with_response_cache(shared, req, || guide(shared, req)),
        ("POST", "/v1/route") => route_job(shared, req, deadline),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_status(shared, path),
        ("GET", "/v1/models") => models_list(shared),
        ("POST", "/v1/models/promote") => models_promote(shared, req),
        ("POST", "/v1/shutdown") => {
            initiate_shutdown(shared);
            Response::json(200, "{\"ok\":true}".to_string()).with_close()
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/predict" | "/v1/guide" | "/v1/route" | "/v1/shutdown"
            | "/v1/models" | "/v1/models/promote",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such route"),
    }
}

/// Tier B: serves `/v1/predict` and `/v1/guide` through the response cache.
/// The key covers the request path and the exact body bytes, so a hit can
/// only replay a response computed for an identical request. Only
/// 200-status bodies are cached; an `x-no-cache` request header bypasses
/// the cache entirely. The `x-cache: hit|miss` response header makes the
/// outcome observable to clients and the smoke/load tests.
fn with_response_cache(
    shared: &Shared,
    req: &Request,
    compute: impl FnOnce() -> Response,
) -> Response {
    let Some(cache) = &shared.response_cache else {
        return compute();
    };
    if req.header("x-no-cache").is_some() {
        af_obs::counter("serve.cache_bypass", 1);
        return compute();
    }
    let mut h = ContentHasher::new();
    h.write_str(&req.path);
    h.write(&req.body);
    // Partition by model version: after a hot-swap, the same request bytes
    // hash to a different key, so a cached pre-swap answer can never be
    // replayed for the new model (and a rollback re-hits its old entries).
    h.write_str(&shared.slot.get().model_hash);
    let key = h.finish();
    if let Some(body) = cache.get(&key) {
        return Response::json(200, body).with_header("x-cache", "hit".to_string());
    }
    let resp = compute();
    if resp.status == 200 {
        if let Ok(body) = std::str::from_utf8(&resp.body) {
            cache.insert(key, body.to_string());
        }
    }
    resp.with_header("x-cache", "miss".to_string())
}

fn json_or_500<T: serde::Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::error(500, &format!("serialization failed: {e}")),
    }
}

fn health(shared: &Shared) -> Response {
    let runner = shared
        .runner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let degraded = shared.batcher.is_degraded() || runner.is_degraded();
    let restarts = shared.batcher.restarts() + runner.restarts();
    drop(runner);
    let bundle = shared.slot.get();
    json_or_500(
        200,
        &HealthResponse {
            ok: true,
            status: if degraded { "degraded" } else { "ok" }.to_string(),
            restarts,
            circuit: bundle.circuit.name().to_string(),
            variant: bundle.variant.label().to_string(),
            guidance_len: bundle.guidance_len() as u64,
            uptime_ms: shared.started.elapsed().as_millis() as u64,
            model_hash: bundle.model_hash.clone(),
            build: env!("CARGO_PKG_VERSION").to_string(),
        },
    )
}

fn perf_from_metrics(m: [f64; 5]) -> Performance {
    // Canonical metric order, matching `Performance::as_array`.
    Performance {
        offset_uv: m[0],
        cmrr_db: m[1],
        bandwidth_mhz: m[2],
        dc_gain_db: m[3],
        noise_uvrms: m[4],
    }
}

fn predict(shared: &Shared, req: &Request, deadline: Option<Deadline>) -> Response {
    // Adaptive admission: sustained predict-queue sojourn above target
    // converts new (uncached) work into early 429s instead of queueing
    // everyone into latency collapse. Cache hits never reach this point.
    if shared.batcher.admission().should_shed() {
        return Response::error(429, "queue delay above admission target")
            .with_header("retry-after", shared.cfg.retry_after_s.to_string());
    }
    let body: PredictRequest = match parse_body(&req.body) {
        Ok(b) => b,
        Err(msg) => return Response::error(400, &msg),
    };
    let deadline =
        deadline.unwrap_or_else(|| Deadline::after(shared.cfg.request_deadline_ms.max(1)));
    match shared.batcher.predict(body.guidance, deadline) {
        Ok(prediction) => json_or_500(
            200,
            &PredictResponse {
                performance: perf_from_metrics(prediction.metrics),
                batch_size: prediction.batch_size,
            },
        ),
        Err(SubmitError::Overloaded) => Response::error(429, "predict queue full")
            .with_header("retry-after", shared.cfg.retry_after_s.to_string()),
        Err(SubmitError::ShuttingDown) => Response::error(503, "server shutting down"),
        Err(SubmitError::DeadlineExceeded) => Response::error(408, "request deadline exceeded"),
        Err(SubmitError::Rejected(msg)) => Response::error(400, &msg),
    }
}

fn guide(shared: &Shared, req: &Request) -> Response {
    let body: GuideRequest = match parse_body(&req.body) {
        Ok(b) => b,
        Err(msg) => return Response::error(400, &msg),
    };
    let cfg = analogfold::RelaxConfig {
        restarts: body.restarts.unwrap_or(12).max(1) as usize,
        lbfgs_iters: body.lbfgs_iters.unwrap_or(30).max(1) as usize,
        n_derive: 1,
        seed: body.seed.unwrap_or(99),
        ..analogfold::RelaxConfig::default()
    };
    let bundle = shared.slot.get();
    let potential = analogfold::Potential::new(&bundle.gnn, &bundle.graph);
    let outcomes = analogfold::relax(&potential, &cfg);
    match outcomes.into_iter().next() {
        Some(best) => json_or_500(
            200,
            &GuideResponse {
                guidance: best.guidance,
                potential: best.potential,
            },
        ),
        None => Response::error(500, "relaxation produced no candidates"),
    }
}

fn route_job(shared: &Shared, req: &Request, deadline: Option<Deadline>) -> Response {
    let body: RouteRequest = match parse_body(&req.body) {
        Ok(b) => b,
        Err(msg) => return Response::error(400, &msg),
    };
    // Re-checked at the last moment before the job store: a route job past
    // its submission deadline must never be created or enqueued.
    if deadline.is_some_and(|d| d.expired()) {
        af_guard::shed("job");
        return Response::error(408, "request deadline already expired");
    }
    let params = JobParams::from_request(&body);
    let runner = shared
        .runner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match runner.submit(params) {
        Ok(Ok(record)) => json_or_500(
            202,
            &RouteAccepted {
                id: record.id,
                status: record.status,
            },
        ),
        Ok(Err(e)) => Response::error(500, &format!("job store failure: {e}")),
        Err(PushError::Full) => Response::error(429, "job queue full")
            .with_header("retry-after", shared.cfg.retry_after_s.to_string()),
        Err(PushError::Closed) => Response::error(503, "server shutting down"),
    }
}

fn job_status(shared: &Shared, path: &str) -> Response {
    let id_text = &path["/v1/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("bad job id {id_text:?}"));
    };
    match shared.store.get(id) {
        Some(record) => json_or_500(200, &record),
        None => Response::error(404, &format!("no job {id}")),
    }
}

fn canary_info(shared: &Shared) -> Option<CanaryInfo> {
    shared
        .canary
        .report(shared.cfg.canary_tolerance)
        .map(|(candidate, report)| CanaryInfo {
            candidate,
            samples: report.samples,
            incumbent_mean: report.incumbent_mean,
            candidate_mean: report.candidate_mean,
            regression: report.regression,
        })
}

fn models_list(shared: &Shared) -> Response {
    let resident = shared.slot.get().model_hash.clone();
    let mut response = ModelsResponse {
        resident: resident.clone(),
        current: None,
        canary: canary_info(shared),
        models: Vec::new(),
    };
    if let Some(dir) = &shared.cfg.registry {
        match ModelRegistry::open(dir) {
            Ok(registry) => {
                response.current = registry.current().map(str::to_string);
                response.models = registry
                    .list()
                    .iter()
                    .map(|e| ModelInfo {
                        hash: e.hash.clone(),
                        state: registry.state(e).label().to_string(),
                        resident: e.hash == resident,
                        present: e.present,
                        parent: e.lineage.parent.clone(),
                        samples: e.lineage.samples,
                        eval_mse: e.lineage.eval_mse,
                        promotions: e.promotions,
                    })
                    .collect();
            }
            Err(e) => return Response::error(500, &format!("registry unavailable: {e}")),
        }
    }
    json_or_500(200, &response)
}

fn models_promote(shared: &Shared, req: &Request) -> Response {
    let body: PromoteRequest = match parse_body(&req.body) {
        Ok(b) => b,
        Err(msg) => return Response::error(400, &msg),
    };
    let Some(dir) = &shared.cfg.registry else {
        return Response::error(400, "no model registry configured (start with --registry)");
    };
    let _guard = shared
        .registry_lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut registry = match ModelRegistry::open(dir) {
        Ok(r) => r,
        Err(e) => return Response::error(500, &format!("registry unavailable: {e}")),
    };
    let resident = shared.slot.get().model_hash.clone();
    let target = match &body.hash {
        Some(prefix) => match registry.resolve(prefix) {
            Ok(hash) => hash,
            Err(e) => return Response::error(404, &e.to_string()),
        },
        None => match registry.latest_candidate() {
            Some(entry) => entry.hash.clone(),
            None => return Response::error(404, "no candidate to promote"),
        },
    };
    // Fold the accumulated canary evidence into the registry before the
    // gate check, so the promote decision sees what this server measured.
    if let Some((candidate, report)) = shared.canary.report(shared.cfg.canary_tolerance) {
        if candidate == target && report.samples >= shared.cfg.canary_min_samples {
            if let Err(e) = registry.record_verdict(&target, report.regression, &report.summary()) {
                return Response::error(500, &format!("recording canary verdict failed: {e}"));
            }
        }
    }
    match registry.promote(&target, body.force.unwrap_or(false)) {
        Ok(hash) => {
            if hash != resident {
                match load_bundle(shared, &registry, &hash) {
                    Ok(bundle) => {
                        swap_resident(shared, bundle);
                    }
                    Err(e) => {
                        return Response::error(
                            500,
                            &format!("promoted in registry but load failed: {e}"),
                        )
                    }
                }
            }
            json_or_500(
                200,
                &PromoteResponse {
                    ok: true,
                    model_hash: hash,
                    previous: resident,
                },
            )
        }
        Err(af_model::RegistryError::Refused(msg)) => Response::error(409, &msg),
        Err(af_model::RegistryError::NotFound(h)) => {
            Response::error(404, &format!("no registered model matches `{h}`"))
        }
        Err(e) => Response::error(500, &e.to_string()),
    }
}
