//! Asynchronous routing jobs and their persistent store.
//!
//! `POST /v1/route` enqueues a job and returns immediately; workers run
//! the guided-routing flow (`run_with_model`) and write each state
//! transition to a [`ShardStore`] shard named by the job id, so results
//! survive a server restart. On startup the store replays the directory:
//! jobs that were `queued` or `running` when the process died are marked
//! `failed` (their threads are gone), finished jobs remain queryable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use af_fault::Supervisor;
use af_sim::Performance;
use afrt::{BoundedQueue, PushError};
use analogfold::{AnalogFoldFlow, FlowConfig, RelaxConfig, ShardStore};
use serde::{Deserialize, Serialize};

use crate::api::RouteRequest;
use crate::config::ServeConfig;
use crate::state::{CanaryCtl, ModelBundle, ModelSlot};

/// Final product of a routing job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteResult {
    /// Total routed wirelength in micrometers.
    pub wirelength_um: f64,
    /// Total via count.
    pub vias: u64,
    /// Unresolved routing conflicts (0 for a clean layout).
    pub conflicts: u64,
    /// Simulated post-layout performance.
    pub performance: Performance,
    /// The guidance assignment the router followed.
    pub guidance: Vec<f64>,
}

/// One job's persisted state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id (also the shard index).
    pub id: u64,
    /// `"queued"`, `"running"`, `"done"`, or `"failed"`.
    pub status: String,
    /// Failure description when `status == "failed"`.
    pub error: Option<String>,
    /// Result when `status == "done"`.
    pub result: Option<RouteResult>,
    /// Content hash of the model that ran (or is running) this job. `None`
    /// only for records written before this field existed.
    pub model_hash: Option<String>,
    /// Set on recovered `done` records whose `model_hash` differs from the
    /// resident model: the result is still served, but marked as produced
    /// by a superseded model version rather than silently passed off as
    /// current.
    pub stale_model: Option<bool>,
}

/// Resolved routing-job parameters (defaults applied, invariants clamped).
#[derive(Debug, Clone, Copy)]
pub struct JobParams {
    /// Relaxation restarts.
    pub restarts: usize,
    /// L-BFGS iterations per restart.
    pub lbfgs_iters: usize,
    /// Guidance candidates routed and evaluated.
    pub n_derive: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Router worker threads (`0` = auto).
    pub route_threads: usize,
}

impl JobParams {
    /// Applies defaults to an API request. `n_derive` is clamped to
    /// `restarts` (the flow rejects the inverse ordering).
    #[must_use]
    pub fn from_request(req: &RouteRequest) -> Self {
        let restarts = req.restarts.unwrap_or(6).max(1) as usize;
        Self {
            restarts,
            lbfgs_iters: req.lbfgs_iters.unwrap_or(30).max(1) as usize,
            n_derive: (req.n_derive.unwrap_or(1).max(1) as usize).min(restarts),
            seed: req.seed.unwrap_or(99),
            route_threads: req.route_threads.unwrap_or(1) as usize,
        }
    }
}

/// Persistent job store: one shard per job, guarded by a write lock so a
/// worker transition and a concurrent create cannot interleave shard
/// writes with id allocation.
pub struct JobStore {
    shards: ShardStore,
    write: Mutex<()>,
    next_id: AtomicU64,
}

impl JobStore {
    /// Opens (or creates) the store at `dir`, recovering existing records.
    /// Jobs left `queued`/`running` by a dead process are marked `failed`.
    ///
    /// # Errors
    ///
    /// Filesystem failures other than a missing directory.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self, crate::ServeError> {
        let shards = ShardStore::new(dir);
        let mut next_id = 0u64;
        match std::fs::read_dir(shards.dir()) {
            Ok(entries) => {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let Some(idx) = name
                        .to_str()
                        .and_then(|n| n.strip_prefix("shard-"))
                        .and_then(|n| n.strip_suffix(".json"))
                        .and_then(|n| n.parse::<u64>().ok())
                    else {
                        continue;
                    };
                    next_id = next_id.max(idx + 1);
                    if let Ok(Some(mut record)) = shards.load_shard::<JobRecord>(idx as usize) {
                        if record.status == "queued" || record.status == "running" {
                            record.status = "failed".to_string();
                            record.error = Some("interrupted by server restart".to_string());
                            shards
                                .save_shard(idx as usize, &record)
                                .map_err(analogfold::Error::from)?;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(Self {
            shards,
            write: Mutex::new(()),
            next_id: AtomicU64::new(next_id),
        })
    }

    /// Creates a new `queued` record and persists it.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn create(&self) -> Result<JobRecord, crate::ServeError> {
        let _guard = self
            .write
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let record = JobRecord {
            id,
            status: "queued".to_string(),
            error: None,
            result: None,
            model_hash: None,
            stale_model: None,
        };
        self.shards
            .save_shard(id as usize, &record)
            .map_err(analogfold::Error::from)?;
        Ok(record)
    }

    /// Persists a state transition.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn update(&self, record: &JobRecord) -> Result<(), crate::ServeError> {
        let _guard = self
            .write
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.shards
            .save_shard(record.id as usize, record)
            .map_err(analogfold::Error::from)?;
        Ok(())
    }

    /// Reads a job by id (`None` if it never existed or its shard is
    /// corrupt — corruption is already counted by the shard layer).
    #[must_use]
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.shards.load_shard(id as usize).ok().flatten()
    }

    /// Marks recovered `done` records produced by a model other than
    /// `current_hash` as stale (and clears a stale mark if the producing
    /// model is resident again, e.g. after a rollback). Run once at server
    /// startup, after [`open`](Self::open).
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn reconcile_model(&self, current_hash: &str) -> Result<(), crate::ServeError> {
        let _guard = self
            .write
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut marked = 0u64;
        for idx in self.shards.existing_shards() {
            let Ok(Some(mut record)) = self.shards.load_shard::<JobRecord>(idx) else {
                continue;
            };
            if record.status != "done" {
                continue;
            }
            let stale = record
                .model_hash
                .as_deref()
                .is_some_and(|h| h != current_hash);
            let mark = stale.then_some(true);
            if record.stale_model != mark {
                record.stale_model = mark;
                self.shards
                    .save_shard(idx, &record)
                    .map_err(analogfold::Error::from)?;
            }
            marked += u64::from(stale);
        }
        af_obs::counter("serve.jobs.stale_model", marked);
        Ok(())
    }
}

/// The worker pool draining the route-job queue. Each worker runs under a
/// [`Supervisor`]: a panic escaping a job (jobs are individually fenced by
/// `catch_unwind` in [`run_job`], so this is belt-and-suspenders) restarts
/// the worker after backoff instead of silently shrinking the pool.
pub struct JobRunner {
    queue: Arc<BoundedQueue<(u64, JobParams, Instant)>>,
    workers: Vec<Supervisor>,
    store: Arc<JobStore>,
}

impl JobRunner {
    /// Spawns `cfg.job_workers` supervised worker threads over `store`.
    #[must_use]
    pub fn start(
        slot: &Arc<ModelSlot>,
        store: &Arc<JobStore>,
        canary: &Arc<CanaryCtl>,
        cfg: &ServeConfig,
    ) -> Self {
        let queue: Arc<BoundedQueue<(u64, JobParams, Instant)>> =
            Arc::new(BoundedQueue::new("serve.jobs", cfg.job_queue));
        let canary_fraction = cfg.canary_fraction;
        let workers = (0..cfg.job_workers.max(1))
            .map(|i| {
                let q = Arc::clone(&queue);
                let slot = Arc::clone(slot);
                let store = Arc::clone(store);
                let canary = Arc::clone(canary);
                Supervisor::spawn(
                    &format!("serve-job-{i}"),
                    cfg.supervisor_backoff(),
                    cfg.supervisor_grace(),
                    move || {
                        while let Some((id, params, enqueued)) = q.pop() {
                            af_obs::hist(
                                "serve.jobs.sojourn_ms",
                                enqueued.elapsed().as_secs_f64() * 1e3,
                            );
                            // Snapshot the resident model once per job: the
                            // whole route runs on one model version even if
                            // a promotion lands mid-route.
                            let bundle = slot.get();
                            run_job(&bundle, &store, id, params);
                            score_canary(&bundle, &store, &canary, id, canary_fraction);
                        }
                    },
                )
                .expect("spawn serve-job thread")
            })
            .collect();
        Self {
            queue,
            workers,
            store: Arc::clone(store),
        }
    }

    /// Whether any worker is restarting after a panic (or inside its
    /// recovery grace window); surfaced by `/healthz` as `degraded`.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.workers.iter().any(Supervisor::is_degraded)
    }

    /// Worker panics recovered so far, summed across the pool.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.workers.iter().map(Supervisor::restarts).sum()
    }

    /// Creates and enqueues a job. `Err(PushError::Full)` means the queue
    /// is saturated and the caller should shed; the job record is only
    /// created after a successful enqueue reservation, so a shed leaves no
    /// orphan.
    pub fn submit(
        &self,
        params: JobParams,
    ) -> Result<Result<JobRecord, crate::ServeError>, PushError> {
        // Reserve capacity first with a sentinel check: BoundedQueue has no
        // reservation API, so create the record and roll it back on Full.
        let record = match self.store.create() {
            Ok(r) => r,
            Err(e) => return Ok(Err(e)),
        };
        match self.queue.try_push((record.id, params, Instant::now())) {
            Ok(()) => Ok(Ok(record)),
            Err(e) => {
                let mut failed = record;
                failed.status = "failed".to_string();
                failed.error = Some("shed: job queue full".to_string());
                let _ = self.store.update(&failed);
                Err(e)
            }
        }
    }

    /// Number of jobs waiting in the queue (excluding running ones).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Closes the queue, lets workers drain every queued job, and joins
    /// them. This is the graceful-shutdown guarantee: accepted jobs finish.
    pub fn shutdown(&mut self) {
        self.queue.close();
        for mut worker in self.workers.drain(..) {
            worker.join();
        }
    }
}

impl Drop for JobRunner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_job(bundle: &ModelBundle, store: &JobStore, id: u64, params: JobParams) {
    let Some(mut record) = store.get(id) else {
        return;
    };
    record.status = "running".to_string();
    record.model_hash = Some(bundle.model_hash.clone());
    let _ = store.update(&record);

    // Fence the flow behind `catch_unwind`: a panic (real, or injected via
    // the `serve.job` failpoint) marks THIS job `failed` instead of leaving
    // it stuck `running` while the supervisor restarts the worker.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        af_fault::fail!("serve.job", key = id);
        route_once(bundle, params)
    }))
    .unwrap_or_else(|payload| {
        af_obs::counter("serve.job_panics", 1);
        Err(format!(
            "job panicked: {}",
            afrt::panic_message(payload.as_ref())
        ))
    });
    match outcome {
        Ok(result) => {
            record.status = "done".to_string();
            record.result = Some(result);
        }
        Err(e) => {
            record.status = "failed".to_string();
            record.error = Some(e);
        }
    }
    let _ = store.update(&record);
}

fn route_once(bundle: &ModelBundle, params: JobParams) -> Result<RouteResult, String> {
    // `obs` stays unset: `run_with_model` installs the config's sink for
    // the duration of the run, which would displace the server's global
    // observability install.
    let cfg: FlowConfig = FlowConfig::builder()
        .tech(bundle.tech.clone())
        .relax(RelaxConfig {
            restarts: params.restarts,
            lbfgs_iters: params.lbfgs_iters,
            n_derive: params.n_derive,
            ..RelaxConfig::default()
        })
        .seed(params.seed)
        .route_threads(params.route_threads)
        .build()
        .map_err(|e| e.to_string())?;
    let flow = AnalogFoldFlow::new(cfg);
    let outcome = flow
        .run_with_model(&bundle.circuit, &bundle.placement, &bundle.gnn)
        .map_err(|e| e.to_string())?;
    Ok(RouteResult {
        wirelength_um: outcome.layout.total_wirelength() as f64 / 1e3,
        vias: u64::from(outcome.layout.total_vias()),
        conflicts: u64::from(outcome.layout.conflicts),
        performance: outcome.performance,
        guidance: outcome.guidance,
    })
}

/// Shadow-evaluates a completed route on the canary candidate: both models
/// predict the FoM for the guidance the router actually followed, and each
/// prediction is scored against the simulated ground truth the job already
/// produced. Pure bookkeeping — the served result is untouched.
fn score_canary(
    incumbent: &ModelBundle,
    store: &JobStore,
    canary: &CanaryCtl,
    id: u64,
    fraction: f64,
) {
    if !af_model::canary_sampled(id, fraction) {
        return;
    }
    let Some(candidate) = canary.candidate() else {
        return;
    };
    if candidate.model_hash == incumbent.model_hash {
        return;
    }
    let Some(record) = store.get(id) else { return };
    let Some(result) = record.result.filter(|_| record.status == "done") else {
        return;
    };
    let to_perf = |m: [f64; 5]| Performance {
        offset_uv: m[0],
        cmrr_db: m[1],
        bandwidth_mhz: m[2],
        dc_gain_db: m[3],
        noise_uvrms: m[4],
    };
    let incumbent_pred = to_perf(incumbent.session().predict(&result.guidance));
    let candidate_pred = to_perf(candidate.session().predict(&result.guidance));
    canary.observe(
        &candidate.model_hash,
        af_model::fom_error(&incumbent_pred, &result.performance),
        af_model::fom_error(&candidate_pred, &result.performance),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("af-serve-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_update_get_round_trip() {
        let store = JobStore::open(tmp_dir("roundtrip")).unwrap();
        let a = store.create().unwrap();
        let b = store.create().unwrap();
        assert_eq!((a.id, b.id), (0, 1));
        let mut done = a.clone();
        done.status = "done".to_string();
        store.update(&done).unwrap();
        assert_eq!(store.get(0).unwrap().status, "done");
        assert_eq!(store.get(1).unwrap().status, "queued");
        assert!(store.get(99).is_none());
    }

    #[test]
    fn reopen_marks_interrupted_jobs_failed_and_resumes_ids() {
        let dir = tmp_dir("reopen");
        {
            let store = JobStore::open(&dir).unwrap();
            let queued = store.create().unwrap();
            let mut running = store.create().unwrap();
            running.status = "running".to_string();
            store.update(&running).unwrap();
            let mut done = store.create().unwrap();
            done.status = "done".to_string();
            store.update(&done).unwrap();
            assert_eq!(queued.id, 0);
        }
        let store = JobStore::open(&dir).unwrap();
        assert_eq!(store.get(0).unwrap().status, "failed");
        assert_eq!(store.get(1).unwrap().status, "failed");
        assert!(store.get(1).unwrap().error.unwrap().contains("restart"));
        assert_eq!(store.get(2).unwrap().status, "done");
        assert_eq!(store.create().unwrap().id, 3);
    }

    #[test]
    fn reconcile_marks_done_jobs_from_other_models_stale() {
        let dir = tmp_dir("stale");
        let store = JobStore::open(&dir).unwrap();
        let mut old = store.create().unwrap();
        old.status = "done".to_string();
        old.model_hash = Some("aaaa".to_string());
        store.update(&old).unwrap();
        let mut same = store.create().unwrap();
        same.status = "done".to_string();
        same.model_hash = Some("bbbb".to_string());
        store.update(&same).unwrap();
        let mut legacy = store.create().unwrap();
        legacy.status = "done".to_string();
        store.update(&legacy).unwrap();

        store.reconcile_model("bbbb").unwrap();
        assert_eq!(store.get(0).unwrap().stale_model, Some(true));
        assert_eq!(store.get(1).unwrap().stale_model, None);
        // Pre-model_hash records cannot be proven stale; left unmarked.
        assert_eq!(store.get(2).unwrap().stale_model, None);

        // Rolling back to the old model clears the stale mark.
        store.reconcile_model("aaaa").unwrap();
        assert_eq!(store.get(0).unwrap().stale_model, None);
        assert_eq!(store.get(1).unwrap().stale_model, Some(true));
    }

    #[test]
    fn params_apply_defaults_and_clamp() {
        let p = JobParams::from_request(&RouteRequest {
            restarts: None,
            lbfgs_iters: None,
            n_derive: None,
            seed: None,
            route_threads: None,
        });
        assert_eq!(
            (
                p.restarts,
                p.lbfgs_iters,
                p.n_derive,
                p.seed,
                p.route_threads
            ),
            (6, 30, 1, 99, 1)
        );
        let p = JobParams::from_request(&RouteRequest {
            restarts: Some(2),
            lbfgs_iters: Some(5),
            n_derive: Some(10),
            seed: Some(7),
            route_threads: Some(0),
        });
        assert_eq!(p.n_derive, 2, "n_derive clamps to restarts");
        assert_eq!(p.route_threads, 0, "explicit auto passes through");
    }
}
