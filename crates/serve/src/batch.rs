//! Cross-request micro-batching for `/v1/predict`.
//!
//! A single collector thread owns the [`PredictSession`] (and with it the
//! mutable inference graph). Handler threads submit jobs into a bounded
//! queue and block on a reply channel; the collector takes the first job,
//! then keeps collecting until either `batch_max` jobs are in hand or
//! `batch_window_us` has elapsed since the first, and runs one batched
//! pass over the lot.
//!
//! Batching is a throughput optimization, never a semantic one: each batch
//! element runs through the same session path as a lone request, so
//! results are bit-identical regardless of how requests were coalesced
//! (covered by the e2e suite).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use af_fault::Supervisor;
use af_guard::{Admission, AdmissionConfig, Deadline};
use afrt::{BoundedQueue, PushError};

use crate::config::ServeConfig;
use crate::state::ModelSlot;

/// One queued prediction: the guidance to evaluate, the deadline the answer
/// is still useful until, and where to send it.
struct PredictJob {
    guidance: Vec<f64>,
    deadline: Deadline,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Prediction, Reject>>,
}

/// Why the collector refused a queued job without running it.
enum Reject {
    /// Malformed request (wrong guidance length) — `400`.
    Bad(String),
    /// The job's deadline expired while it sat in the queue — `408`,
    /// shed before any compute.
    Expired,
}

/// A successful prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The five denormalized metrics, in [`analogfold`] metric order.
    pub metrics: [f64; 5],
    /// How many requests shared the forward pass.
    pub batch_size: u64,
}

/// Why a submission failed before reaching the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The predict queue is full — shed with `429`.
    Overloaded,
    /// The server is shutting down — `503`.
    ShuttingDown,
    /// The reply did not arrive within the request deadline — `408`.
    DeadlineExceeded,
    /// The request was rejected (e.g. wrong guidance length) — `400`.
    Rejected(String),
}

/// Handle to the supervised collector thread.
pub struct Batcher {
    queue: Arc<BoundedQueue<PredictJob>>,
    supervisor: Option<Supervisor>,
    admission: Arc<Admission>,
}

/// The collector loop: owns a [`analogfold::PredictSession`] and drains the
/// queue in micro-batches until it closes. The loop runs under a
/// [`Supervisor`], so it must be re-enterable: a panic (real, or injected
/// via the `serve.batch` failpoint) unwinds out, dropping the in-hand jobs'
/// reply senders — their waiting handlers observe `Disconnected` and answer
/// `503` instead of hanging — and the supervisor re-invokes the loop with a
/// fresh session after backoff.
fn collector_loop(
    slot: &ModelSlot,
    q: &BoundedQueue<PredictJob>,
    batch_max: usize,
    window: Duration,
    admission: &Admission,
    fault_key: u64,
) {
    let mut epoch = slot.epoch();
    let mut bundle = slot.get();
    let mut session = bundle.session();
    let mut expected = session.guidance_len();
    while let Some(first) = q.pop() {
        // Hot-swap point: a model promotion is only ever observed *between*
        // batches, so a batch in hand finishes on the model it started on
        // and the next batch runs entirely on the replacement.
        let now_epoch = slot.epoch();
        if now_epoch != epoch {
            epoch = now_epoch;
            bundle = slot.get();
            session = bundle.session();
            expected = session.guidance_len();
            af_obs::counter("serve.batch.session_swaps", 1);
        }
        let mut jobs = vec![first];
        let deadline = Instant::now() + window;
        while jobs.len() < batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match q.pop_timeout(deadline - now) {
                Some(job) => jobs.push(job),
                None => break,
            }
        }

        // The oldest job's queue sojourn is the CoDel signal: sustained
        // sojourn above target flips the admission gate to early 429s.
        let sojourn_ms = jobs[0].enqueued.elapsed().as_secs_f64() * 1e3;
        af_obs::hist("serve.predict.sojourn_ms", sojourn_ms);
        admission.observe(sojourn_ms);

        // Shed work that expired while queued *before* validation and
        // compute: an answer past its deadline has no reader.
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline.expired() {
                af_guard::shed("batch");
                let _ = job.reply.send(Err(Reject::Expired));
            } else {
                live.push(job);
            }
        }

        // Validate lengths next so one malformed request cannot
        // sink its batch-mates.
        let mut valid = Vec::with_capacity(live.len());
        for job in live {
            if job.guidance.len() == expected {
                valid.push(job);
            } else {
                let msg = format!(
                    "guidance must have {expected} values, got {}",
                    job.guidance.len()
                );
                let _ = job.reply.send(Err(Reject::Bad(msg)));
            }
        }
        if valid.is_empty() {
            continue;
        }

        // Chaos hooks: a collector crash with a batch in hand (the in-hand
        // replies drop; see the function docs), and a keyed slow-batch site
        // — armed in `delay` mode, the per-server `fault_key` decides
        // deterministically *which* fleet worker is the slow one.
        af_fault::fail!("serve.batch");
        af_fault::fail!("serve.batch.delay", key = fault_key);

        let batch: Vec<Vec<f64>> = valid.iter().map(|j| j.guidance.clone()).collect();
        let size = batch.len() as u64;
        af_obs::hist("serve.batch.size", size as f64);
        let outputs = session.predict_batch(&batch);
        for (job, metrics) in valid.into_iter().zip(outputs) {
            let _ = job.reply.send(Ok(Prediction {
                metrics,
                batch_size: size,
            }));
        }
    }
}

impl Batcher {
    /// Spawns the supervised collector thread around the model slot.
    #[must_use]
    pub fn start(slot: &Arc<ModelSlot>, cfg: &ServeConfig) -> Self {
        let queue: Arc<BoundedQueue<PredictJob>> =
            Arc::new(BoundedQueue::new("serve.predict", cfg.predict_queue));
        let batch_max = cfg.batch_max.max(1);
        let window = Duration::from_micros(cfg.batch_window_us);
        let admission = Arc::new(Admission::new(AdmissionConfig {
            target_ms: cfg.admission_target_ms,
            interval_ms: cfg.admission_interval_ms,
        }));
        let fault_key = cfg.fault_key;
        let slot = Arc::clone(slot);
        let q = Arc::clone(&queue);
        let adm = Arc::clone(&admission);
        let supervisor = Supervisor::spawn(
            "serve-batcher",
            cfg.supervisor_backoff(),
            cfg.supervisor_grace(),
            move || collector_loop(&slot, &q, batch_max, window, &adm, fault_key),
        )
        .expect("spawn serve-batcher thread");
        Self {
            queue,
            supervisor: Some(supervisor),
            admission,
        }
    }

    /// The adaptive admission gate fed by this collector's queue sojourn;
    /// the server checks it before accepting new predict work.
    #[must_use]
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Whether the collector is restarting after a panic (or inside its
    /// recovery grace window); surfaced by `/healthz` as `degraded`.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.supervisor
            .as_ref()
            .is_some_and(Supervisor::is_degraded)
    }

    /// Collector panics recovered so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.supervisor.as_ref().map_or(0, Supervisor::restarts)
    }

    /// Submits one guidance vector and blocks until the batched answer
    /// arrives or `deadline` expires. An already-expired deadline is shed
    /// here (`guard.deadline_expired.predict`) without enqueueing anything.
    pub fn predict(
        &self,
        guidance: Vec<f64>,
        deadline: Deadline,
    ) -> Result<Prediction, SubmitError> {
        if deadline.expired() {
            af_guard::shed("predict");
            return Err(SubmitError::DeadlineExceeded);
        }
        let (tx, rx) = mpsc::channel();
        match self.queue.try_push(PredictJob {
            guidance,
            deadline,
            enqueued: Instant::now(),
            reply: tx,
        }) {
            Ok(()) => {}
            Err(PushError::Full) => return Err(SubmitError::Overloaded),
            Err(PushError::Closed) => return Err(SubmitError::ShuttingDown),
        }
        match rx.recv_timeout(deadline.remaining()) {
            Ok(Ok(prediction)) => Ok(prediction),
            Ok(Err(Reject::Bad(msg))) => Err(SubmitError::Rejected(msg)),
            Ok(Err(Reject::Expired)) => Err(SubmitError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(SubmitError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Closes the submission queue through a shared reference without
    /// joining the collector; the collector drains what is queued and
    /// exits, and is joined when the batcher drops.
    pub(crate) fn close_queue(&self) {
        self.queue.close();
    }

    /// Stops accepting work, drains what is queued, and joins the
    /// collector.
    pub fn shutdown(&mut self) {
        self.queue.close();
        if let Some(mut supervisor) = self.supervisor.take() {
            supervisor.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ModelBundle;
    use analogfold::{GnnConfig, ThreeDGnn};

    fn bundle(seed: u64) -> ModelBundle {
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            seed,
            ..GnnConfig::default()
        });
        ModelBundle::with_model("OTA1", "A", gnn).unwrap()
    }

    fn slot() -> Arc<ModelSlot> {
        Arc::new(ModelSlot::new(bundle(0)))
    }

    #[test]
    fn single_prediction_matches_direct_session() {
        let slot = slot();
        let len = slot.get().guidance_len();
        let guidance: Vec<f64> = (0..len).map(|i| (i as f64) * 0.01 - 0.3).collect();
        let expected = slot.get().session().predict(&guidance);

        let mut batcher = Batcher::start(&slot, &ServeConfig::default());
        let got = batcher.predict(guidance, Deadline::after(30_000)).unwrap();
        assert_eq!(got.metrics, expected);
        assert!(got.batch_size >= 1);
        batcher.shutdown();
    }

    #[test]
    fn swapped_model_answers_follow_up_requests() {
        let slot = slot();
        let len = slot.get().guidance_len();
        let guidance: Vec<f64> = (0..len).map(|i| (i as f64) * 0.01 - 0.3).collect();
        let next = bundle(7);
        let expected_old = slot.get().session().predict(&guidance);
        let expected_new = next.session().predict(&guidance);
        assert_ne!(expected_old, expected_new);

        let mut batcher = Batcher::start(&slot, &ServeConfig::default());
        let before = batcher
            .predict(guidance.clone(), Deadline::after(30_000))
            .unwrap();
        assert_eq!(before.metrics, expected_old);
        slot.swap(next);
        let after = batcher.predict(guidance, Deadline::after(30_000)).unwrap();
        assert_eq!(after.metrics, expected_new);
        batcher.shutdown();
    }

    #[test]
    fn wrong_length_is_rejected_not_panicked() {
        let slot = slot();
        let mut batcher = Batcher::start(&slot, &ServeConfig::default());
        match batcher.predict(vec![0.0; 3], Deadline::after(30_000)) {
            Err(SubmitError::Rejected(msg)) => assert!(msg.contains("guidance")),
            other => panic!("expected Rejected, got {other:?}"),
        }
        batcher.shutdown();
    }

    #[test]
    fn shutdown_then_submit_reports_shutting_down() {
        let slot = slot();
        let mut batcher = Batcher::start(&slot, &ServeConfig::default());
        batcher.shutdown();
        assert_eq!(
            batcher
                .predict(vec![0.0; slot.get().guidance_len()], Deadline::after(1_000))
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn expired_deadline_is_shed_before_enqueue() {
        let slot = slot();
        let len = slot.get().guidance_len();
        let mut batcher = Batcher::start(&slot, &ServeConfig::default());
        assert_eq!(
            batcher
                .predict(vec![0.0; len], Deadline::after(0))
                .unwrap_err(),
            SubmitError::DeadlineExceeded
        );
        // Nothing was enqueued for the collector to run.
        assert_eq!(batcher.queue.len(), 0);
        batcher.shutdown();
    }
}
