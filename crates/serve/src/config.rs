//! Server tuning knobs. Defaults favor interactive latency on small
//! models; every threshold is explicit so the e2e tests can force each
//! failure mode deterministically.

use std::path::PathBuf;

/// Configuration of one [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address is
    /// reported by [`crate::ServerHandle::addr`]).
    pub addr: String,
    /// Connection-handler threads. `0` = auto (hardware parallelism,
    /// capped at 8 — handlers mostly wait on the batcher or job queue).
    pub workers: usize,
    /// Maximum predict requests coalesced into one batched forward pass.
    pub batch_max: usize,
    /// How long the collector waits for more predict requests before
    /// running a partial batch, in microseconds.
    pub batch_window_us: u64,
    /// Bound of the accepted-connection queue; beyond it the accept loop
    /// sheds with `429`.
    pub conn_queue: usize,
    /// Bound of the predict (batch) queue; a full queue sheds with `429`.
    pub predict_queue: usize,
    /// Bound of the route-job queue; a full queue sheds with `429`.
    pub job_queue: usize,
    /// Threads executing route jobs.
    pub job_workers: usize,
    /// Per-request deadline for queued waits, in milliseconds; exceeding it
    /// answers `408`. This is the *default* budget — a client `x-deadline-ms`
    /// header overrides it per request.
    pub request_deadline_ms: u64,
    /// Upper clamp on client-supplied `x-deadline-ms` budgets, in
    /// milliseconds (`0` disables the clamp). A skewed or hostile client
    /// must not pin work in a queue indefinitely.
    pub deadline_max_ms: u64,
    /// CoDel-style admission target: once predict-queue sojourn stays above
    /// this many milliseconds for `admission_interval_ms`, new predict work
    /// is shed with early `429`s. `0` disables adaptive admission.
    pub admission_target_ms: u64,
    /// How long sojourn must stay above `admission_target_ms` before
    /// shedding starts, in milliseconds.
    pub admission_interval_ms: u64,
    /// Stable identity this server passes as the key of keyed chaos
    /// failpoints (e.g. `serve.batch.delay`). With a per-worker key, a
    /// seeded probability deterministically selects *which* fleet worker a
    /// fault fires on — every batch on the selected worker, never on the
    /// others.
    pub fault_key: u64,
    /// Keep-alive idle timeout, in milliseconds: a connection with no new
    /// request within this window is closed.
    pub keepalive_idle_ms: u64,
    /// `Retry-After` seconds advertised on `429` responses.
    pub retry_after_s: u64,
    /// Directory of the persistent job store (a `persist::ShardStore`).
    /// `None` uses `serve-jobs` under the system temp directory.
    pub job_dir: Option<PathBuf>,
    /// Capacity (MiB) of the response cache for `/v1/predict` and
    /// `/v1/guide` (keyed by request content hash; bypass per-request with
    /// an `x-no-cache` header). `0` disables it.
    pub cache_mb: u64,
    /// Base backoff (milliseconds) between supervisor restarts of a
    /// panicked batch collector or job worker (exponential, deterministic
    /// jitter).
    pub supervisor_backoff_ms: u64,
    /// Recovery grace (milliseconds): after a supervised thread restarts,
    /// `/healthz` keeps reporting `degraded` until the replacement has
    /// stayed alive this long.
    pub supervisor_grace_ms: u64,
    /// Model registry directory. `None` disables the registry watcher, the
    /// `/v1/models` endpoints answer from the resident model only, and
    /// promotion is unavailable.
    pub registry: Option<PathBuf>,
    /// How often the registry watcher polls for an external promotion or a
    /// fresh candidate, in milliseconds.
    pub registry_poll_ms: u64,
    /// Fraction of completed `/v1/route` jobs shadow-scored on the canary
    /// candidate (deterministic per job id). `0` disables canarying.
    pub canary_fraction: f64,
    /// Minimum scored jobs before a canary verdict is recorded at
    /// promotion time.
    pub canary_min_samples: u64,
    /// Relative tolerance before a worse candidate counts as a regression
    /// (e.g. `0.10` = up to 10% worse mean FoM error is acceptable).
    pub canary_tolerance: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            batch_max: 8,
            batch_window_us: 2_000,
            conn_queue: 128,
            predict_queue: 256,
            job_queue: 16,
            job_workers: 1,
            request_deadline_ms: 30_000,
            deadline_max_ms: 600_000,
            admission_target_ms: 0,
            admission_interval_ms: 100,
            fault_key: 0,
            keepalive_idle_ms: 5_000,
            retry_after_s: 1,
            job_dir: None,
            cache_mb: 32,
            supervisor_backoff_ms: 50,
            supervisor_grace_ms: 500,
            registry: None,
            registry_poll_ms: 500,
            canary_fraction: 0.25,
            canary_min_samples: 3,
            canary_tolerance: 0.10,
        }
    }
}

impl ServeConfig {
    /// Resolved handler-thread count.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .min(8)
    }

    /// The restart-backoff policy for supervised threads (batch collector,
    /// job workers).
    #[must_use]
    pub fn supervisor_backoff(&self) -> af_fault::RetryPolicy {
        af_fault::RetryPolicy {
            // Restarts are unlimited (the supervisor loops for the server's
            // lifetime); `max_attempts` only shapes the backoff curve.
            max_attempts: u32::MAX,
            base_delay_ms: self.supervisor_backoff_ms,
            max_delay_ms: (self.supervisor_backoff_ms * 32).max(1_000),
            ..af_fault::RetryPolicy::default()
        }
    }

    /// The supervisor recovery grace as a [`std::time::Duration`].
    #[must_use]
    pub fn supervisor_grace(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.supervisor_grace_ms)
    }

    /// Resolved job-store directory.
    #[must_use]
    pub fn resolved_job_dir(&self) -> PathBuf {
        self.job_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("af-serve-jobs-{}", std::process::id()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.batch_max >= 1);
        assert!(cfg.resolved_workers() >= 1);
        assert!(cfg
            .resolved_job_dir()
            .to_string_lossy()
            .contains("af-serve-jobs"));
        let fixed = ServeConfig {
            workers: 3,
            job_dir: Some(PathBuf::from("/tmp/x")),
            ..ServeConfig::default()
        };
        assert_eq!(fixed.resolved_workers(), 3);
        assert_eq!(fixed.resolved_job_dir(), PathBuf::from("/tmp/x"));
    }
}
