//! `GET /metrics`: Prometheus text export of the process-global `af_obs`
//! registry (queue depths, batch sizes, request counters, flow spans —
//! everything any crate recorded).

/// Renders the current registry in Prometheus text format 0.0.4. When
/// observability is disabled the export is an empty (but valid) document
/// with a comment explaining why.
#[must_use]
pub fn render_metrics() -> String {
    af_obs::with_registry(af_obs::prometheus::render)
        .unwrap_or_else(|| "# observability disabled (no sink installed)\n".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_yields_valid_comment_only_export() {
        // Tests run without a global install unless one is made explicitly;
        // either way the export must be non-empty and comment-or-metric
        // lines only.
        let text = render_metrics();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
                "unexpected line {line:?}"
            );
        }
    }
}
