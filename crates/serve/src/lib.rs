#![warn(missing_docs)]
//! `af-serve`: a std-only HTTP/1.1 service that keeps a trained
//! [`analogfold::ThreeDGnn`] resident and amortizes it across requests.
//!
//! The paper's economics are train-once / guide-many: a trained surrogate
//! makes guidance generation cheap relative to training. The CLI and bench
//! binaries pay model-loading and graph-construction costs on every
//! invocation; this crate moves them to process startup and serves:
//!
//! | route               | behaviour                                          |
//! |---------------------|----------------------------------------------------|
//! | `POST /v1/predict`  | metric prediction, **micro-batched** across requests |
//! | `POST /v1/guide`    | potential-relaxation guidance on the `afrt` pool   |
//! | `POST /v1/route`    | full guided routing as an async job (`202` + id)   |
//! | `GET /v1/jobs/{id}` | job status/result from the persistent job store    |
//! | `GET /healthz`      | liveness                                           |
//! | `GET /metrics`      | Prometheus text export of the `af_obs` registry    |
//! | `POST /v1/shutdown` | graceful shutdown (drains in-flight jobs)          |
//!
//! Robustness is part of the design, not an add-on: every internal queue is
//! a bounded [`afrt::BoundedQueue`] whose depth is an obs gauge, overload
//! sheds with `429` + `Retry-After`, queued waits respect a per-request
//! deadline (`408`), connections are keep-alive with an idle timeout, and
//! shutdown stops accepting, drains, and joins every thread.
//!
//! Zero dependencies beyond std and the workspace's vendored
//! `serde`/`serde_json`, matching the offline build constraint.

pub mod api;
pub mod batch;
pub mod config;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;
pub mod state;

pub use config::ServeConfig;
pub use jobs::{JobRecord, JobStore, RouteResult};
pub use server::{Server, ServerHandle};
pub use state::ModelBundle;

/// Top-level serving failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Invalid configuration (unknown benchmark, bad address, …).
    Config(String),
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// Model loading/validation failure (including the versioned-header
    /// checks — a stale or truncated model is refused at startup, not
    /// served).
    Model(analogfold::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "config error: {msg}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<analogfold::Error> for ServeError {
    fn from(e: analogfold::Error) -> Self {
        ServeError::Model(e)
    }
}
