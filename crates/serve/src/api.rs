//! Wire types of the JSON API.
//!
//! Request bodies use derived `Deserialize` (the vendored derive maps a
//! missing named field to `Null`, which `Option<T>` reads as `None`, so
//! optional knobs need no custom code). Responses use derived `Serialize`.

use af_sim::Performance;
use serde::{Deserialize, Serialize};

/// `{"error": ...}` envelope attached to every non-2xx response.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorBody {
    /// Human-readable failure description.
    pub error: String,
}

/// `GET /healthz` response.
#[derive(Debug, Clone, Serialize)]
pub struct HealthResponse {
    /// Always `true` when the server can answer at all.
    pub ok: bool,
    /// `"ok"`, or `"degraded"` while a supervised thread (batch collector,
    /// job worker) is restarting after a panic or still inside its recovery
    /// grace window. Degraded is advisory: requests are still served, but a
    /// load balancer should prefer a healthy replica.
    pub status: String,
    /// Supervised-thread panics recovered since startup (collector plus all
    /// job workers).
    pub restarts: u64,
    /// Benchmark circuit the resident model serves.
    pub circuit: String,
    /// Placement variant label (`A`..`D`).
    pub variant: String,
    /// Expected `guidance` length for `/v1/predict`.
    pub guidance_len: u64,
    /// Monotonic milliseconds since the server bound its listener (from
    /// `Instant`, so wall-clock adjustments cannot run it backwards). A
    /// coordinator uses a reset to detect silent worker restarts.
    pub uptime_ms: u64,
    /// Canonical content hash of the resident model (32 lowercase hex
    /// chars). Two workers with different hashes are serving different
    /// weights — version skew a fleet front must not load-balance across.
    pub model_hash: String,
    /// Crate version of the serving binary (`CARGO_PKG_VERSION`), the
    /// coarse build-skew complement to `model_hash`.
    pub build: String,
}

/// `POST /v1/predict` request body.
#[derive(Debug, Clone, Deserialize)]
pub struct PredictRequest {
    /// Flattened guidance assignment (3 values per guided access point);
    /// must have exactly `guidance_len` entries.
    pub guidance: Vec<f64>,
}

/// `POST /v1/predict` response body.
#[derive(Debug, Clone, Serialize)]
pub struct PredictResponse {
    /// Predicted post-layout metrics for the supplied guidance.
    pub performance: Performance,
    /// Size of the micro-batch this request was computed in (`1` when no
    /// other request arrived within the batching window).
    pub batch_size: u64,
}

/// `POST /v1/guide` request body; every knob is optional.
#[derive(Debug, Clone, Deserialize)]
pub struct GuideRequest {
    /// Relaxation restarts (default 12).
    pub restarts: Option<u64>,
    /// L-BFGS iterations per restart (default 30).
    pub lbfgs_iters: Option<u64>,
    /// RNG seed (default 99).
    pub seed: Option<u64>,
}

/// `POST /v1/guide` response body.
#[derive(Debug, Clone, Serialize)]
pub struct GuideResponse {
    /// Best derived guidance assignment.
    pub guidance: Vec<f64>,
    /// Its potential value (lower is better).
    pub potential: f64,
}

/// `POST /v1/route` request body; every knob is optional.
#[derive(Debug, Clone, Deserialize)]
pub struct RouteRequest {
    /// Relaxation restarts (default 6).
    pub restarts: Option<u64>,
    /// L-BFGS iterations per restart (default 30).
    pub lbfgs_iters: Option<u64>,
    /// Guidance candidates to route-and-evaluate (default 1).
    pub n_derive: Option<u64>,
    /// RNG seed (default 99).
    pub seed: Option<u64>,
    /// Router worker threads (default 1; `0` = auto via `AFRT_THREADS`).
    pub route_threads: Option<u64>,
}

/// `POST /v1/route` response body (`202 Accepted`).
#[derive(Debug, Clone, Serialize)]
pub struct RouteAccepted {
    /// Job id; poll `GET /v1/jobs/{id}`.
    pub id: u64,
    /// Initial status, always `"queued"`.
    pub status: String,
}

/// One registered model in a `GET /v1/models` listing.
#[derive(Debug, Clone, Serialize)]
pub struct ModelInfo {
    /// Canonical content hash (the registry id).
    pub hash: String,
    /// Promotion state: `current`, `candidate`, `rejected`, or `retired`.
    pub state: String,
    /// Whether this is the model currently answering requests here.
    pub resident: bool,
    /// Whether the model file is still on disk (false after gc).
    pub present: bool,
    /// Parent model this one was fine-tuned from, if recorded.
    pub parent: Option<String>,
    /// Training-set size, if recorded.
    pub samples: Option<u64>,
    /// Normalized training-set MSE, if recorded.
    pub eval_mse: Option<f64>,
    /// Times this model has been promoted.
    pub promotions: u64,
}

/// Canary progress in a `GET /v1/models` response.
#[derive(Debug, Clone, Serialize)]
pub struct CanaryInfo {
    /// Candidate hash under shadow evaluation.
    pub candidate: String,
    /// Jobs scored so far.
    pub samples: u64,
    /// Incumbent mean FoM prediction error.
    pub incumbent_mean: f64,
    /// Candidate mean FoM prediction error.
    pub candidate_mean: f64,
    /// Whether the candidate currently reads as a regression.
    pub regression: bool,
}

/// `GET /v1/models` response.
#[derive(Debug, Clone, Serialize)]
pub struct ModelsResponse {
    /// Hash of the model answering requests right now.
    pub resident: String,
    /// The registry's promoted hash (`None` without a registry, or before
    /// the first promotion).
    pub current: Option<String>,
    /// Shadow-evaluation progress, when a candidate is under canary.
    pub canary: Option<CanaryInfo>,
    /// Registered models in registration order (empty without a registry).
    pub models: Vec<ModelInfo>,
}

/// `POST /v1/models/promote` request body.
#[derive(Debug, Clone, Deserialize)]
pub struct PromoteRequest {
    /// Hash (or unique prefix) to promote. Defaults to the newest
    /// registered non-resident candidate.
    pub hash: Option<String>,
    /// Promote even when the canary verdict is a regression.
    pub force: Option<bool>,
}

/// `POST /v1/models/promote` response body.
#[derive(Debug, Clone, Serialize)]
pub struct PromoteResponse {
    /// Always `true` on 200.
    pub ok: bool,
    /// The now-resident model hash.
    pub model_hash: String,
    /// The displaced model hash.
    pub previous: String,
}

/// Parses a request body as JSON of type `T`, mapping failures to a
/// uniform error message.
pub fn parse_body<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    serde_json::from_str(text).map_err(|e| format!("invalid json body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_fields_default_to_none() {
        let req: RouteRequest = parse_body(b"{}").unwrap();
        assert!(req.restarts.is_none() && req.seed.is_none());
        let req: RouteRequest = parse_body(b"{\"restarts\": 9, \"seed\": 7}").unwrap();
        assert_eq!(req.restarts, Some(9));
        assert_eq!(req.seed, Some(7));
    }

    #[test]
    fn predict_request_round_trips() {
        let req: PredictRequest = parse_body(b"{\"guidance\": [0.25, -1.5, 3.0]}").unwrap();
        assert_eq!(req.guidance, vec![0.25, -1.5, 3.0]);
    }

    #[test]
    fn bad_bodies_are_reported_not_panicked() {
        assert!(parse_body::<PredictRequest>(b"not json").is_err());
        assert!(parse_body::<PredictRequest>(&[0xff, 0xfe]).is_err());
        assert!(parse_body::<PredictRequest>(b"{\"guidance\": \"nope\"}").is_err());
    }

    #[test]
    fn responses_serialize() {
        let body = serde_json::to_string(&RouteAccepted {
            id: 3,
            status: "queued".to_string(),
        })
        .unwrap();
        assert!(body.contains("\"id\":3") && body.contains("\"queued\""));
    }
}
