//! The resident model state: circuit, placement, heterogeneous graph, and
//! trained GNN — plus the [`ModelSlot`] that lets the resident model be
//! hot-swapped without dropping a request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use af_model::{CanaryReport, CanaryStats};
use af_netlist::{benchmarks, Circuit};
use af_place::{place, Placement, PlacementVariant};
use af_tech::Technology;
use analogfold::{HeteroGraph, PredictSession, ThreeDGnn};

use crate::ServeError;

/// Everything the endpoints need, built once. Handlers hold it behind an
/// `Arc` and never mutate it; per-thread mutable state (graph buffers for
/// inference) lives in [`PredictSession`]s created from it.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// Benchmark circuit.
    pub circuit: Circuit,
    /// Placement variant.
    pub variant: PlacementVariant,
    /// Deterministic placement of `circuit` under `variant`.
    pub placement: Placement,
    /// Technology stack.
    pub tech: Technology,
    /// Heterogeneous routing graph (access points + modules).
    pub graph: HeteroGraph,
    /// The resident surrogate model.
    pub gnn: ThreeDGnn,
    /// Canonical 128-bit content hash of the resident model (32 hex chars),
    /// surfaced on `/healthz` so a fleet coordinator can detect version
    /// skew: two workers answering for the same circuit but serving
    /// different weights.
    pub model_hash: String,
}

impl ModelBundle {
    /// Builds the bundle around an already-constructed model (used by tests
    /// and the load generator, which serve untrained models — serving
    /// semantics do not depend on training quality).
    pub fn with_model(
        bench: &str,
        variant_label: &str,
        gnn: ThreeDGnn,
    ) -> Result<Self, ServeError> {
        let circuit = benchmarks::by_name(bench)
            .ok_or_else(|| ServeError::Config(format!("unknown benchmark `{bench}`")))?;
        let variant = PlacementVariant::from_label(variant_label).ok_or_else(|| {
            ServeError::Config(format!("unknown placement variant `{variant_label}`"))
        })?;
        let tech = Technology::nm40();
        let placement = place(&circuit, variant);
        let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
        let model_hash = analogfold::content_hash_of(&gnn).to_hex();
        Ok(Self {
            circuit,
            variant,
            placement,
            tech,
            graph,
            gnn,
            model_hash,
        })
    }

    /// Loads a saved model (validating its versioned header) and builds the
    /// bundle around it.
    pub fn load(bench: &str, variant_label: &str, model_path: &str) -> Result<Self, ServeError> {
        let gnn = ThreeDGnn::load(model_path).map_err(analogfold::Error::from)?;
        Self::with_model(bench, variant_label, gnn)
    }

    /// A fresh inference session bound to this bundle's graph.
    #[must_use]
    pub fn session(&self) -> PredictSession {
        self.gnn.session(&self.graph)
    }

    /// Expected guidance vector length (3 per guided access point).
    #[must_use]
    pub fn guidance_len(&self) -> usize {
        self.session().guidance_len()
    }
}

/// The hot-swappable model slot. Readers take a cheap `Arc` snapshot and
/// keep using it for the duration of one request/batch/job, so a swap never
/// tears work in progress: in-flight requests finish on the model they
/// started on, and only *new* work observes the replacement. The epoch
/// counter lets the batch collector detect a swap between batches without
/// holding the lock across a forward pass.
#[derive(Debug)]
pub struct ModelSlot {
    bundle: RwLock<Arc<ModelBundle>>,
    epoch: AtomicU64,
}

impl ModelSlot {
    /// Wraps the startup bundle as epoch 0.
    #[must_use]
    pub fn new(bundle: ModelBundle) -> Self {
        Self {
            bundle: RwLock::new(Arc::new(bundle)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Snapshot of the resident bundle. Hold the `Arc`, not the slot, for
    /// the duration of the work.
    #[must_use]
    pub fn get(&self) -> Arc<ModelBundle> {
        Arc::clone(
            &self
                .bundle
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Swap generation; bumps on every [`swap`](Self::swap).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Replaces the resident bundle, returning the displaced one. The
    /// epoch bump is ordered after the pointer store, so an observer that
    /// sees the new epoch is guaranteed to read the new bundle.
    pub fn swap(&self, bundle: ModelBundle) -> Arc<ModelBundle> {
        let next = Arc::new(bundle);
        let old = {
            let mut slot = self
                .bundle
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::replace(&mut *slot, next)
        };
        self.epoch.fetch_add(1, Ordering::SeqCst);
        af_obs::counter("model.swap.total", 1);
        old
    }
}

/// Shadow-evaluation state for the current candidate, shared between the
/// job workers (which score completed routes) and the promote endpoint
/// (which reads the verdict). Empty when no candidate is under canary.
#[derive(Debug, Default)]
pub struct CanaryCtl {
    inner: Mutex<Option<CanaryArm>>,
}

#[derive(Debug)]
struct CanaryArm {
    candidate: Arc<ModelBundle>,
    stats: CanaryStats,
}

impl CanaryCtl {
    /// Installs (or replaces) the candidate under evaluation. Stats reset
    /// when the candidate's hash changes; re-installing the same candidate
    /// keeps the accumulated evidence.
    pub fn set_candidate(&self, candidate: Arc<ModelBundle>) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match inner.as_mut() {
            Some(arm) if arm.candidate.model_hash == candidate.model_hash => {}
            _ => {
                *inner = Some(CanaryArm {
                    candidate,
                    stats: CanaryStats::default(),
                });
            }
        }
    }

    /// Drops the candidate (it was promoted, superseded, or withdrawn).
    pub fn clear(&self) {
        *self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// The candidate under evaluation, if any.
    #[must_use]
    pub fn candidate(&self) -> Option<Arc<ModelBundle>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|arm| Arc::clone(&arm.candidate))
    }

    /// Folds one scored job into the candidate's stats (no-op when the
    /// scoring raced a candidate change).
    pub fn observe(&self, candidate_hash: &str, incumbent_err: f64, candidate_err: f64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(arm) = inner.as_mut() {
            if arm.candidate.model_hash == candidate_hash {
                arm.stats.observe(incumbent_err, candidate_err);
                af_obs::counter("canary.evaluations", 1);
            }
        }
    }

    /// Point-in-time verdict for the candidate at `tolerance`.
    #[must_use]
    pub fn report(&self, tolerance: f64) -> Option<(String, CanaryReport)> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|arm| {
                (
                    arm.candidate.model_hash.clone(),
                    arm.stats.report(tolerance),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analogfold::GnnConfig;

    #[test]
    fn slot_swap_bumps_epoch_and_preserves_old_snapshots() {
        let a = ModelBundle::with_model(
            "OTA1",
            "A",
            ThreeDGnn::new(&GnnConfig {
                hidden: 8,
                layers: 1,
                seed: 1,
                ..GnnConfig::default()
            }),
        )
        .unwrap();
        let b = ModelBundle::with_model(
            "OTA1",
            "A",
            ThreeDGnn::new(&GnnConfig {
                hidden: 8,
                layers: 1,
                seed: 2,
                ..GnnConfig::default()
            }),
        )
        .unwrap();
        let (hash_a, hash_b) = (a.model_hash.clone(), b.model_hash.clone());
        assert_ne!(hash_a, hash_b);

        let slot = ModelSlot::new(a);
        let snapshot = slot.get();
        assert_eq!(slot.epoch(), 0);
        let old = slot.swap(b);
        assert_eq!(slot.epoch(), 1);
        assert_eq!(old.model_hash, hash_a);
        // The pre-swap snapshot still serves the old model.
        assert_eq!(snapshot.model_hash, hash_a);
        assert_eq!(slot.get().model_hash, hash_b);
    }

    #[test]
    fn with_model_builds_and_rejects_unknown_names() {
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        let bundle = ModelBundle::with_model("OTA1", "A", gnn.clone()).unwrap();
        assert!(bundle.guidance_len() > 0);
        assert!(matches!(
            ModelBundle::with_model("OTA99", "A", gnn.clone()),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ModelBundle::with_model("OTA1", "Z", gnn),
            Err(ServeError::Config(_))
        ));
    }
}
