//! The resident model state: circuit, placement, heterogeneous graph, and
//! trained GNN, loaded once at startup and shared read-only by every
//! handler thread.

use af_netlist::{benchmarks, Circuit};
use af_place::{place, Placement, PlacementVariant};
use af_tech::Technology;
use analogfold::{HeteroGraph, PredictSession, ThreeDGnn};

use crate::ServeError;

/// Everything the endpoints need, built once. Handlers hold it behind an
/// `Arc` and never mutate it; per-thread mutable state (graph buffers for
/// inference) lives in [`PredictSession`]s created from it.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// Benchmark circuit.
    pub circuit: Circuit,
    /// Placement variant.
    pub variant: PlacementVariant,
    /// Deterministic placement of `circuit` under `variant`.
    pub placement: Placement,
    /// Technology stack.
    pub tech: Technology,
    /// Heterogeneous routing graph (access points + modules).
    pub graph: HeteroGraph,
    /// The resident surrogate model.
    pub gnn: ThreeDGnn,
    /// Canonical 128-bit content hash of the resident model (32 hex chars),
    /// surfaced on `/healthz` so a fleet coordinator can detect version
    /// skew: two workers answering for the same circuit but serving
    /// different weights.
    pub model_hash: String,
}

impl ModelBundle {
    /// Builds the bundle around an already-constructed model (used by tests
    /// and the load generator, which serve untrained models — serving
    /// semantics do not depend on training quality).
    pub fn with_model(
        bench: &str,
        variant_label: &str,
        gnn: ThreeDGnn,
    ) -> Result<Self, ServeError> {
        let circuit = benchmarks::by_name(bench)
            .ok_or_else(|| ServeError::Config(format!("unknown benchmark `{bench}`")))?;
        let variant = PlacementVariant::from_label(variant_label).ok_or_else(|| {
            ServeError::Config(format!("unknown placement variant `{variant_label}`"))
        })?;
        let tech = Technology::nm40();
        let placement = place(&circuit, variant);
        let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
        let model_hash = analogfold::content_hash_of(&gnn).to_hex();
        Ok(Self {
            circuit,
            variant,
            placement,
            tech,
            graph,
            gnn,
            model_hash,
        })
    }

    /// Loads a saved model (validating its versioned header) and builds the
    /// bundle around it.
    pub fn load(bench: &str, variant_label: &str, model_path: &str) -> Result<Self, ServeError> {
        let gnn = ThreeDGnn::load(model_path).map_err(analogfold::Error::from)?;
        Self::with_model(bench, variant_label, gnn)
    }

    /// A fresh inference session bound to this bundle's graph.
    #[must_use]
    pub fn session(&self) -> PredictSession {
        self.gnn.session(&self.graph)
    }

    /// Expected guidance vector length (3 per guided access point).
    #[must_use]
    pub fn guidance_len(&self) -> usize {
        self.session().guidance_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analogfold::GnnConfig;

    #[test]
    fn with_model_builds_and_rejects_unknown_names() {
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        let bundle = ModelBundle::with_model("OTA1", "A", gnn.clone()).unwrap();
        assert!(bundle.guidance_len() > 0);
        assert!(matches!(
            ModelBundle::with_model("OTA99", "A", gnn.clone()),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ModelBundle::with_model("OTA1", "Z", gnn),
            Err(ServeError::Config(_))
        ));
    }
}
