//! Minimal HTTP/1.1 request parsing and response writing over std I/O.
//!
//! The parser operates on any [`BufRead`], which lets the proptest suite
//! exercise it on in-memory byte streams without sockets. It is strict
//! where strictness protects the server (hard limits on line lengths,
//! header count, and body size; conflicting `Content-Length` headers are
//! rejected) and lenient where leniency is harmless (header values are
//! trimmed, header names are case-insensitive).

use std::io::{BufRead, Write};

/// Maximum accepted request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8192;
/// Maximum accepted header-line length in bytes.
pub const MAX_HEADER_LINE: usize = 8192;
/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted body size in bytes (1 MiB).
pub const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/v1/predict`.
    pub path: String,
    /// Headers as (lower-cased name, trimmed value) pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request failed to parse.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request — the connection gets a `400` and is closed.
    Bad(String),
    /// Request exceeded a size limit — `413`, connection closed.
    TooLarge(String),
    /// Transport-level failure (including read timeouts); no response is
    /// possible or warranted.
    Io(std::io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Bad(msg) => write!(f, "bad request: {msg}"),
            ParseError::TooLarge(msg) => write!(f, "request too large: {msg}"),
            ParseError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one line terminated by `\n`, enforcing `limit`. Returns the line
/// without the trailing `\r\n`/`\n`. `Ok(None)` signals clean EOF before any
/// byte arrived.
fn read_line(
    reader: &mut impl BufRead,
    limit: usize,
    what: &str,
) -> Result<Option<String>, ParseError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::Bad(format!("unexpected eof in {what}")));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| ParseError::Bad(format!("non-utf8 {what}")))?;
                    return Ok(Some(line));
                }
                if buf.len() >= limit {
                    return Err(ParseError::TooLarge(format!(
                        "{what} exceeds {limit} bytes"
                    )));
                }
                buf.push(byte[0]);
            }
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
}

/// Parses one request from `reader`. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive termination).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, ParseError> {
    let request_line = match read_line(reader, MAX_REQUEST_LINE, "request line")? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| ParseError::Bad("missing or malformed method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| ParseError::Bad("missing or malformed target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing http version".to_string()))?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(ParseError::Bad(format!("unsupported version {version:?}")));
    }
    if parts.next().is_some() {
        return Err(ParseError::Bad("extra tokens in request line".to_string()));
    }

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(reader, MAX_HEADER_LINE, "header line")?
            .ok_or_else(|| ParseError::Bad("eof before end of headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("header without colon: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Bad(format!("malformed header name: {name:?}")));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let n: usize = value
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad content-length: {value:?}")))?;
            if let Some(prev) = content_length {
                if prev != n {
                    return Err(ParseError::Bad(
                        "conflicting content-length headers".to_string(),
                    ));
                }
            }
            content_length = Some(n);
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > MAX_BODY {
        return Err(ParseError::TooLarge(format!(
            "body of {body_len} bytes exceeds {MAX_BODY}"
        )));
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => ParseError::Bad("truncated body".to_string()),
        _ => ParseError::Io(e),
    })?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Canonical reason phrase for the status codes this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of `body`.
    pub content_type: &'static str,
    /// Extra headers (name, value) appended verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to advertise and perform connection close.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// A JSON error envelope `{"error": ...}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&crate::api::ErrorBody {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response::json(status, body)
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra_headers.push((name.to_string(), value));
        self
    }

    /// Marks the connection for close after this response.
    #[must_use]
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serializes the response to `out` (status line, headers, body).
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        if self.close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_simple_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_case_insensitive_headers() {
        let req = parse(
            b"POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\nConnection: Close\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"abcd");
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_inputs_as_bad() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: nan\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 5\r\n\r\nabcde",
            b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort",
        ] {
            match parse(raw) {
                Err(ParseError::Bad(_)) => {}
                other => panic!(
                    "expected Bad for {:?}, got {:?}",
                    String::from_utf8_lossy(raw),
                    other.map(|_| ())
                ),
            }
        }
    }

    #[test]
    fn rejects_oversized_inputs_as_too_large() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));

        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));

        let huge_body = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge_body.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let raw: &[u8] = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw);
        let a = read_request(&mut reader).unwrap().unwrap();
        let b = read_request(&mut reader).unwrap().unwrap();
        let c = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(
            (a.path.as_str(), b.path.as_str(), c.path.as_str()),
            ("/a", "/b", "/c")
        );
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn responses_serialize_with_headers_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .with_header("retry-after", "1".to_string())
            .with_close()
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
