#![warn(missing_docs)]
//! **AnalogFold** — performance-driven analog routing guidance via a
//! heterogeneous 3DGNN and potential relaxation (DAC 2024 reproduction).
//!
//! This crate is the paper's primary contribution, built on the workspace
//! substrates (`af-place`, `af-route`, `af-extract`, `af-sim`, `af-nn`):
//!
//! 1. [`HeteroGraph`] — the heterogeneous routing graph
//!    `G_H = <V_AP, V_M, E_PP, E_MM, E_MP>` fusing physical pin-access
//!    geometry with logical module connectivity (paper §4.1, Fig. 3).
//! 2. [`ThreeDGnn`] — protein-inspired 3DGNN whose messages are modulated by
//!    the **cost-aware distance** of Eq. (1), expanded with radial basis
//!    functions (SchNet-style), predicting the five post-layout metrics
//!    (paper §4.2, Eq. 2–6). The guidance `C` enters the forward pass as a
//!    differentiable leaf, so ∂metrics/∂C is available.
//! 3. [`Potential`] / [`relax`] — the potential
//!    `V(C) = w_FoM · f_θ(G_H, C) + g(C)` with an interior-point log
//!    barrier, minimized by L-BFGS from many initializations with a
//!    pool-assisted noisy-restart schedule (paper §4.3, Eq. 7–8).
//! 4. [`generate_dataset`] — training data from the *automated* engine: sample
//!    random guidance, route, extract, simulate, label (paper §1, §5.1).
//! 5. Baselines: [`magical_route`] (the unguided router) and
//!    [`GeniusRouteModel`] (VAE-generated 2-D guidance maps).
//! 6. [`AnalogFoldFlow`] — the end-to-end flow with the runtime breakdown of
//!    Fig. 5.
//!
//! # Examples
//!
//! Train a small model and derive guidance for one placement:
//!
//! ```no_run
//! use af_netlist::benchmarks;
//! use af_place::{place, PlacementVariant};
//! use analogfold::{AnalogFoldFlow, FlowConfig};
//!
//! let circuit = benchmarks::ota1();
//! let placement = place(&circuit, PlacementVariant::A);
//! let cfg = FlowConfig::builder()
//!     .samples(40) // laptop-scale
//!     .build()
//!     .unwrap();
//! let outcome = AnalogFoldFlow::new(cfg).run(&circuit, &placement).unwrap();
//! println!("AnalogFold: {:?}", outcome.performance);
//! ```
//!
//! Every fallible entry point returns the unified [`enum@Error`], which
//! carries the observability span path active at the failure site when an
//! [`af_obs`] sink is installed (see `FlowConfigBuilder::obs`).

pub mod cache;
mod dataset;
mod error;
mod evaluate;
mod flow;
mod genius;
mod gnn;
mod hetero;
mod persist;
mod potential;

pub use cache::{
    cache_enabled, content_hash_of, design_eval_hash, graph_hash, guidance_key, set_cache_enabled,
    EvalCache, FomMemo,
};
pub use dataset::{
    assemble_dataset, generate_dataset, generate_dataset_checkpointed, generate_dataset_multi,
    generate_shard, guidance_field, guidance_field_for, shard_count, shard_is_complete,
    shard_range, Dataset, DatasetConfig, DatasetError, Sample, SampleRecord, TargetStats,
};
pub use error::Error;
pub use evaluate::{holdout_mse, kfold_mse, summarize, DatasetSummary, KfoldReport, METRIC_NAMES};
pub use flow::{
    magical_route, AnalogFoldFlow, FlowConfig, FlowConfigBuilder, FlowError, FlowOutcome,
    ObsSinkHandle, RuntimeBreakdown,
};
pub use genius::{GeniusConfig, GeniusRouteModel, NetClass};
pub use gnn::{GnnConfig, GnnProgram, GraphTensors, PredictSession, ThreeDGnn, TrainReport};
pub use hetero::{ApNode, EdgeKind, HeteroGraph, ModuleNode};
pub use persist::{PersistError, ShardStore};
pub use potential::{relax, relax_seeded, Potential, PotentialEval, RelaxConfig, RelaxOutcome};
