//! GeniusRoute baseline (Zhu et al., ICCAD'19) in miniature.
//!
//! GeniusRoute trains a generative model (VAE) on existing routing solutions
//! and produces a **uniform 2-D guidance map** per net class; the router then
//! prefers regions the model marks probable. The paper under reproduction
//! criticizes exactly these properties (human-imitation labels, uniform 2-D
//! maps, no explicit performance signal), so this module reproduces the
//! mechanism faithfully at small scale:
//!
//! * training rasters are **wire-density maps** of routed solutions from
//!   *sibling placements* of the same circuit (imitation data),
//! * one VAE per net class (IO / signal / supply),
//! * at inference the target placement's **pin-density map** is encoded and
//!   decoded into a probability map, which becomes a cost-multiplier raster
//!   ([`af_route::GuidanceMap2D`]): improbable regions cost more.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use af_netlist::{Circuit, NetId, NetType};
use af_nn::{ConvVae, ConvVaeConfig, Tensor, Vae, VaeConfig};
use af_place::Placement;
use af_route::{GuidanceMap2D, RoutedLayout, RoutingGuidance};

/// Net classes GeniusRoute distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetClass {
    /// Differential inputs and outputs.
    Io,
    /// Internal analog signal nets.
    Signal,
    /// Supplies and bias distribution.
    Supply,
}

impl NetClass {
    /// Classifies a net type.
    pub fn of(ty: NetType) -> NetClass {
        match ty {
            NetType::Input | NetType::Output => NetClass::Io,
            NetType::Signal | NetType::Sensitive => NetClass::Signal,
            NetType::Bias | NetType::Power | NetType::Ground => NetClass::Supply,
        }
    }

    /// All classes.
    pub const ALL: [NetClass; 3] = [NetClass::Io, NetClass::Signal, NetClass::Supply];
}

/// GeniusRoute baseline settings.
#[derive(Debug, Clone)]
pub struct GeniusConfig {
    /// Guidance raster side (maps are `raster × raster`).
    pub raster: usize,
    /// VAE hidden width.
    pub hidden: usize,
    /// VAE latent dimension.
    pub latent: usize,
    /// VAE training epochs.
    pub epochs: usize,
    /// Cost-multiplier strength: cells with probability 0 cost
    /// `1 + strength`, cells with probability 1 cost `1`.
    pub strength: f64,
    /// Use the convolutional VAE (closer to the original GeniusRoute's
    /// architecture) instead of the MLP VAE.
    pub convolutional: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for GeniusConfig {
    fn default() -> Self {
        Self {
            raster: 10,
            hidden: 48,
            latent: 6,
            epochs: 60,
            strength: 2.0,
            convolutional: false,
            seed: 31,
        }
    }
}

/// Either flavor of generative model behind the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum AnyVae {
    /// MLP encoder/decoder (fast default).
    Mlp(Vae),
    /// Convolutional encoder/decoder (faithful to the original).
    Conv(ConvVae),
}

impl AnyVae {
    fn train(&mut self, data: &[Tensor], epochs: usize) {
        match self {
            AnyVae::Mlp(v) => {
                v.train(data, epochs);
            }
            AnyVae::Conv(v) => {
                v.train(data, epochs);
            }
        }
    }

    fn reconstruct(&self, x: &Tensor) -> Tensor {
        match self {
            AnyVae::Mlp(v) => v.reconstruct(x),
            AnyVae::Conv(v) => v.reconstruct(x),
        }
    }
}

/// The trained GeniusRoute guidance model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeniusRouteModel {
    raster: usize,
    strength: f64,
    vaes: HashMap<NetClass, AnyVae>,
}

impl GeniusRouteModel {
    /// Trains one VAE per net class on wire-density rasters of existing
    /// routed solutions.
    ///
    /// # Panics
    ///
    /// Panics if `training` is empty.
    pub fn train(
        circuit: &Circuit,
        training: &[(&Placement, &RoutedLayout)],
        cfg: &GeniusConfig,
    ) -> Self {
        assert!(!training.is_empty(), "GeniusRoute needs imitation data");
        let dim = cfg.raster * cfg.raster;
        let mut per_class: HashMap<NetClass, Vec<Tensor>> = HashMap::new();
        for (placement, layout) in training {
            for class in NetClass::ALL {
                let map = wire_density(circuit, placement, layout, class, cfg.raster);
                per_class
                    .entry(class)
                    .or_default()
                    .push(Tensor::from_vec(map, 1, dim));
            }
        }
        let mut vaes = HashMap::new();
        for (class, data) in per_class {
            let mut vae = if cfg.convolutional {
                AnyVae::Conv(ConvVae::new(ConvVaeConfig {
                    h: cfg.raster,
                    w: cfg.raster,
                    channels: 4,
                    latent: cfg.latent,
                    seed: cfg.seed ^ class as u64,
                    ..ConvVaeConfig::default()
                }))
            } else {
                AnyVae::Mlp(Vae::new(VaeConfig {
                    input_dim: dim,
                    hidden: cfg.hidden,
                    latent: cfg.latent,
                    seed: cfg.seed ^ class as u64,
                    ..VaeConfig::default()
                }))
            };
            vae.train(&data, cfg.epochs);
            vaes.insert(class, vae);
        }
        Self {
            raster: cfg.raster,
            strength: cfg.strength,
            vaes,
        }
    }

    /// Generates the 2-D guidance for a target placement: per net, the
    /// decoded probability map of its class turned into cost multipliers.
    pub fn guidance(&self, circuit: &Circuit, placement: &Placement) -> RoutingGuidance {
        let die = placement.die();
        let mut map = GuidanceMap2D::new(
            self.raster,
            self.raster,
            (die.lo().x, die.lo().y),
            (die.width(), die.height()),
        );
        let mut decoded: HashMap<NetClass, Vec<f64>> = HashMap::new();
        for class in NetClass::ALL {
            let Some(vae) = self.vaes.get(&class) else {
                continue;
            };
            let pins = pin_density(circuit, placement, class, self.raster);
            let probe = Tensor::from_vec(pins, 1, self.raster * self.raster);
            let prob = vae.reconstruct(&probe);
            // probability -> cost multiplier
            let max = prob.data().iter().cloned().fold(1e-9, f64::max);
            let cost: Vec<f64> = prob
                .data()
                .iter()
                .map(|&p| 1.0 + self.strength * (1.0 - p / max))
                .collect();
            decoded.insert(class, cost);
        }
        for (i, net) in circuit.nets().iter().enumerate() {
            if !net.ty.is_guided() {
                continue;
            }
            let class = NetClass::of(net.ty);
            if let Some(cost) = decoded.get(&class) {
                map.set_net(NetId::new(i as u32), cost.clone());
            }
        }
        RoutingGuidance::Map(map)
    }
}

/// Wire-density raster of one net class in a routed layout (max-normalized).
pub fn wire_density(
    circuit: &Circuit,
    placement: &Placement,
    layout: &RoutedLayout,
    class: NetClass,
    raster: usize,
) -> Vec<f64> {
    let die = placement.die();
    let mut map = vec![0.0; raster * raster];
    let cell = |x: i64, y: i64| -> Option<usize> {
        let fx = (x - die.lo().x) as f64 / die.width() as f64;
        let fy = (y - die.lo().y) as f64 / die.height() as f64;
        if !(0.0..1.0).contains(&fx) || !(0.0..1.0).contains(&fy) {
            return None;
        }
        let cx = ((fx * raster as f64) as usize).min(raster - 1);
        let cy = ((fy * raster as f64) as usize).min(raster - 1);
        Some(cy * raster + cx)
    };
    for rn in &layout.nets {
        if NetClass::of(circuit.net(rn.net).ty) != class {
            continue;
        }
        for seg in rn.segments.iter().filter(|s| !s.is_via()) {
            // sample along the segment
            let (a, b) = (seg.start(), seg.end());
            let steps = (seg.length() / 500).max(1);
            for s in 0..=steps {
                let x = a.x + (b.x - a.x) * s / steps;
                let y = a.y + (b.y - a.y) * s / steps;
                if let Some(idx) = cell(x, y) {
                    map[idx] += 1.0;
                }
            }
        }
    }
    let max = map.iter().cloned().fold(0.0, f64::max);
    if max > 0.0 {
        for v in &mut map {
            *v /= max;
        }
    }
    map
}

/// Pin-density raster of one net class in a placement (max-normalized).
pub fn pin_density(
    circuit: &Circuit,
    placement: &Placement,
    class: NetClass,
    raster: usize,
) -> Vec<f64> {
    let die = placement.die();
    let mut map = vec![0.0; raster * raster];
    for pin in placement.pins() {
        if NetClass::of(circuit.net(pin.net).ty) != class {
            continue;
        }
        let c = pin.rect.center();
        let fx = (c.x - die.lo().x) as f64 / die.width() as f64;
        let fy = (c.y - die.lo().y) as f64 / die.height() as f64;
        if !(0.0..1.0).contains(&fx) || !(0.0..1.0).contains(&fy) {
            continue;
        }
        let cx = ((fx * raster as f64) as usize).min(raster - 1);
        let cy = ((fy * raster as f64) as usize).min(raster - 1);
        map[cy * raster + cx] += 1.0;
    }
    let max = map.iter().cloned().fold(0.0, f64::max);
    if max > 0.0 {
        for v in &mut map {
            *v /= max;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_route::{Router, RouterConfig};
    use af_tech::Technology;

    #[test]
    fn class_mapping() {
        assert_eq!(NetClass::of(NetType::Input), NetClass::Io);
        assert_eq!(NetClass::of(NetType::Sensitive), NetClass::Signal);
        assert_eq!(NetClass::of(NetType::Power), NetClass::Supply);
    }

    #[test]
    fn densities_are_normalized() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let l = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &p, &t, &RoutingGuidance::None)
            .unwrap();
        for class in NetClass::ALL {
            let wd = wire_density(&c, &p, &l, class, 8);
            let pd = pin_density(&c, &p, class, 8);
            assert_eq!(wd.len(), 64);
            assert!(wd.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(pd.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // signal wires exist somewhere
        let wd = wire_density(&c, &p, &l, NetClass::Signal, 8);
        assert!(wd.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn convolutional_variant_trains_and_guides() {
        let c = benchmarks::ota1();
        let t = Technology::nm40();
        let pb = place(&c, PlacementVariant::B);
        let lb = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &pb, &t, &RoutingGuidance::None)
            .unwrap();
        let cfg = GeniusConfig {
            epochs: 5,
            raster: 6,
            latent: 3,
            convolutional: true,
            ..GeniusConfig::default()
        };
        let model = GeniusRouteModel::train(&c, &[(&pb, &lb)], &cfg);
        let pa = place(&c, PlacementVariant::A);
        match model.guidance(&c, &pa) {
            RoutingGuidance::Map(m) => assert!(!m.is_empty()),
            _ => panic!("expected a 2-D map"),
        }
    }

    #[test]
    fn train_and_generate_guidance() {
        let c = benchmarks::ota1();
        let t = Technology::nm40();
        // imitation data from variant B; guide variant A
        let pb = place(&c, PlacementVariant::B);
        let lb = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &pb, &t, &RoutingGuidance::None)
            .unwrap();
        let cfg = GeniusConfig {
            epochs: 10,
            raster: 6,
            hidden: 24,
            latent: 3,
            ..GeniusConfig::default()
        };
        let model = GeniusRouteModel::train(&c, &[(&pb, &lb)], &cfg);
        let pa = place(&c, PlacementVariant::A);
        let guidance = model.guidance(&c, &pa);
        match &guidance {
            RoutingGuidance::Map(m) => assert!(!m.is_empty()),
            _ => panic!("GeniusRoute must produce a 2-D map"),
        }
        // guided routing still succeeds
        let routed = Router::new(RouterConfig::default())
            .unwrap()
            .route(&c, &pa, &t, &guidance)
            .unwrap();
        assert!(routed.total_wirelength() > 0);
    }
}
