//! Model evaluation and dataset diagnostics.
//!
//! The paper reports no prediction-quality numbers, but any serious use of
//! the 3DGNN needs them: [`kfold_mse`] cross-validates a model configuration
//! on a labeled dataset, and [`DatasetSummary`] characterizes how strongly
//! the sampled guidance actually moves each metric (if it doesn't, no model
//! can help — the diagnostics catch that early).

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Sample, TargetStats};
use crate::gnn::{GnnConfig, ThreeDGnn};
use crate::hetero::HeteroGraph;

/// Result of one cross-validation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KfoldReport {
    /// Per-fold held-out MSE on normalized targets.
    pub fold_mse: Vec<f64>,
    /// Mean of [`KfoldReport::fold_mse`].
    pub mean_mse: f64,
    /// Baseline MSE of always predicting the training mean (≈ 1.0 on
    /// z-scored targets); a useful model scores below this.
    pub mean_predictor_mse: f64,
}

impl KfoldReport {
    /// Skill score: `1 − mse/baseline` (positive = better than predicting
    /// the mean).
    pub fn skill(&self) -> f64 {
        1.0 - self.mean_mse / self.mean_predictor_mse.max(1e-12)
    }
}

/// Mean squared error of a trained model on normalized targets.
pub fn holdout_mse(gnn: &ThreeDGnn, graph: &HeteroGraph, test: &[Sample]) -> f64 {
    let stats = gnn.stats();
    let mut total = 0.0;
    for s in test {
        let pred = gnn.predict(graph, &s.guidance);
        let pn = stats.normalize(&pred);
        let tn = stats.normalize(&s.metrics());
        total += pn
            .iter()
            .zip(tn)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 5.0;
    }
    total / test.len().max(1) as f64
}

/// K-fold cross-validation of a model configuration.
///
/// Trains `k` models, each holding out one contiguous fold, and reports the
/// held-out MSE per fold plus the mean-predictor baseline.
///
/// # Panics
///
/// Panics if `k < 2` or the dataset has fewer than `k` samples.
pub fn kfold_mse(cfg: &GnnConfig, graph: &HeteroGraph, dataset: &Dataset, k: usize) -> KfoldReport {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(
        dataset.len() >= k,
        "need at least k samples ({} < {k})",
        dataset.len()
    );
    let n = dataset.len();
    let mut fold_mse = Vec::with_capacity(k);
    let mut baseline_total = 0.0;
    for fold in 0..k {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let test: Vec<Sample> = dataset.samples[lo..hi].to_vec();
        let train = Dataset {
            samples: dataset
                .samples
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < lo || *i >= hi)
                .map(|(_, s)| s.clone())
                .collect(),
        };
        let mut gnn = ThreeDGnn::new(cfg);
        gnn.train(graph, &train, cfg);
        fold_mse.push(holdout_mse(&gnn, graph, &test));

        // mean-predictor baseline on the same split
        let stats = TargetStats::fit(&train);
        let mut base = 0.0;
        for s in &test {
            let tn = stats.normalize(&s.metrics());
            base += tn.iter().map(|v| v * v).sum::<f64>() / 5.0;
        }
        baseline_total += base / test.len().max(1) as f64;
    }
    let mean_mse = fold_mse.iter().sum::<f64>() / k as f64;
    KfoldReport {
        fold_mse,
        mean_mse,
        mean_predictor_mse: baseline_total / k as f64,
    }
}

/// Descriptive statistics of a labeled dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Sample count.
    pub samples: usize,
    /// Per-metric (min, max).
    pub range: [(f64, f64); 5],
    /// Per-metric coefficient of variation `σ/|µ|` — how much the sampled
    /// guidance moves each metric at all.
    pub cv: [f64; 5],
    /// Pearson correlation between the mean guidance magnitude of a sample
    /// and each metric.
    pub guidance_correlation: [f64; 5],
}

/// Metric names in canonical order, for printing summaries.
pub const METRIC_NAMES: [&str; 5] = [
    "offset_uv",
    "cmrr_db",
    "bandwidth_mhz",
    "dc_gain_db",
    "noise_uvrms",
];

/// Summarizes a dataset.
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn summarize(dataset: &Dataset) -> DatasetSummary {
    assert!(!dataset.is_empty(), "empty dataset");
    let n = dataset.len() as f64;
    // raw-space statistics (TargetStats works in transformed space, which
    // must not be mixed into the correlations here)
    let mut mean = [0.0; 5];
    for s in &dataset.samples {
        for (m, v) in mean.iter_mut().zip(s.metrics()) {
            *m += v / n;
        }
    }
    let mut std = [0.0; 5];
    for s in &dataset.samples {
        for ((v, m), x) in std.iter_mut().zip(mean).zip(s.metrics()) {
            *v += (x - m) * (x - m) / n;
        }
    }
    let std = std.map(|v| v.sqrt().max(1e-12));
    let mut range = [(f64::INFINITY, f64::NEG_INFINITY); 5];
    for s in &dataset.samples {
        for (r, v) in range.iter_mut().zip(s.metrics()) {
            r.0 = r.0.min(v);
            r.1 = r.1.max(v);
        }
    }
    let mut cv = [0.0; 5];
    for i in 0..5 {
        cv[i] = std[i] / mean[i].abs().max(1e-12);
    }
    // Pearson correlation of mean-|C| with each raw metric
    let gmeans: Vec<f64> = dataset
        .samples
        .iter()
        .map(|s| s.guidance.iter().sum::<f64>() / s.guidance.len().max(1) as f64)
        .collect();
    let gmu = gmeans.iter().sum::<f64>() / n;
    let gsd = (gmeans.iter().map(|g| (g - gmu) * (g - gmu)).sum::<f64>() / n)
        .sqrt()
        .max(1e-12);
    let mut guidance_correlation = [0.0; 5];
    for (k, corr) in guidance_correlation.iter_mut().enumerate() {
        let mut cov = 0.0;
        for (s, g) in dataset.samples.iter().zip(&gmeans) {
            cov += (g - gmu) * (s.metrics()[k] - mean[k]) / n;
        }
        *corr = cov / (gsd * std[k]);
    }
    DatasetSummary {
        samples: dataset.len(),
        range,
        cv,
        guidance_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_sim::Performance;
    use af_tech::Technology;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn graph() -> HeteroGraph {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        HeteroGraph::build(&c, &p, &Technology::nm40(), 2)
    }

    fn learnable_dataset(graph: &HeteroGraph, n: usize) -> Dataset {
        let dim = graph.guided_ap_indices().len() * 3;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let samples = (0..n)
            .map(|_| {
                let guidance: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.2..2.0)).collect();
                let m = guidance.iter().sum::<f64>() / dim as f64;
                Sample {
                    guidance,
                    performance: Performance {
                        offset_uv: 500.0 * m,
                        cmrr_db: 90.0 - 10.0 * m,
                        bandwidth_mhz: 50.0,
                        dc_gain_db: 40.0,
                        noise_uvrms: 200.0 + 50.0 * m,
                    },
                }
            })
            .collect();
        Dataset { samples }
    }

    #[test]
    fn kfold_beats_mean_predictor_on_learnable_data() {
        let graph = graph();
        let ds = learnable_dataset(&graph, 80);
        let cfg = GnnConfig {
            epochs: 300,
            lr: 5e-3,
            ..GnnConfig::default()
        };
        let report = kfold_mse(&cfg, &graph, &ds, 2);
        assert_eq!(report.fold_mse.len(), 2);
        assert!(
            report.skill() > 0.0,
            "model should beat the mean predictor: {report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn kfold_rejects_k1() {
        let graph = graph();
        let ds = learnable_dataset(&graph, 10);
        let _ = kfold_mse(&GnnConfig::default(), &graph, &ds, 1);
    }

    #[test]
    fn summary_captures_correlations() {
        let graph = graph();
        let ds = learnable_dataset(&graph, 40);
        let s = summarize(&ds);
        assert_eq!(s.samples, 40);
        // offset rises with guidance, cmrr falls
        assert!(
            s.guidance_correlation[0] > 0.8,
            "{:?}",
            s.guidance_correlation
        );
        assert!(
            s.guidance_correlation[1] < -0.8,
            "{:?}",
            s.guidance_correlation
        );
        // constant metrics have ~zero cv
        assert!(s.cv[2] < 1e-6);
        // ranges ordered
        for (lo, hi) in s.range {
            assert!(lo <= hi);
        }
        assert_eq!(METRIC_NAMES.len(), 5);
    }
}
