//! Training-data generation from the automated routing engine.
//!
//! The paper's key departure from GeniusRoute: labels come not from human
//! layouts but from the automatic flow itself — sample a guidance set,
//! route with it, extract parasitics, simulate, record the metrics
//! ("We use 2000 samples on target design with different placements and
//! routing solutions to train AnalogFold", §5.1).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use af_extract::extract;
use af_geom::CostTriple;
use af_netlist::Circuit;
use af_place::Placement;
use af_route::{NonUniformGuidance, RouteError, Router, RouterConfig, RoutingGuidance};
use af_sim::{simulate, Performance, SimConfig, SimError};
use af_tech::Technology;

use crate::hetero::HeteroGraph;
use crate::persist::ShardStore;

/// One labeled sample: a guidance assignment and its simulated metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Flattened guidance for the graph's guided APs (row-major, 3 per AP).
    pub guidance: Vec<f64>,
    /// Simulated post-layout performance.
    pub performance: Performance,
}

impl Sample {
    /// Metrics as the canonical 5-vector
    /// `[offset_uv, cmrr_db, bandwidth_mhz, dc_gain_db, noise_uvrms]`.
    pub fn metrics(&self) -> [f64; 5] {
        self.performance.as_array()
    }
}

/// One checkpointed sample slot: the guidance that was attempted and either
/// its simulated metrics or the error that persisted after retries.
///
/// This is the on-disk shard entry. It is backward compatible with the
/// pre-fault-tolerance format (a bare [`Sample`]): a legacy shard entry has
/// `performance` present and no `error` field, which deserializes to
/// `performance: Some(..), error: None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Flattened guidance for the graph's guided APs (row-major, 3 per AP).
    pub guidance: Vec<f64>,
    /// Simulated post-layout performance, when evaluation succeeded.
    pub performance: Option<Performance>,
    /// The permanent failure recorded for this sample, when it did not.
    pub error: Option<String>,
}

impl SampleRecord {
    /// The successful sample, if evaluation succeeded.
    #[must_use]
    pub fn into_sample(self) -> Option<Sample> {
        let performance = self.performance?;
        Some(Sample {
            guidance: self.guidance,
            performance,
        })
    }
}

/// A labeled dataset for one (circuit, placement).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Samples in generation order.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Per-metric normalization statistics (z-score, with offset and noise
/// handled in log space because they span orders of magnitude).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetStats {
    /// Per-metric mean (of the possibly log-transformed values).
    pub mean: [f64; 5],
    /// Per-metric standard deviation (≥ 1e-9).
    pub std: [f64; 5],
}

/// Metrics normalized in log space: offset (0) and noise (4) span orders of
/// magnitude; CMRR/BW/gain are already logarithmic or narrow.
const LOG_SPACE: [bool; 5] = [true, false, false, false, true];

/// Floor applied before taking logs (µV / µVrms scale).
const LOG_FLOOR: f64 = 1e-6;

fn transform(y: &[f64; 5]) -> [f64; 5] {
    let mut out = *y;
    for i in 0..5 {
        if LOG_SPACE[i] {
            out[i] = out[i].max(LOG_FLOOR).ln();
        }
    }
    out
}

fn untransform(y: &[f64; 5]) -> [f64; 5] {
    let mut out = *y;
    for i in 0..5 {
        if LOG_SPACE[i] {
            // clamp so untrained models cannot overflow to infinity
            out[i] = out[i].clamp(-60.0, 60.0).exp();
        }
    }
    out
}

impl TargetStats {
    /// Identity statistics (no scaling; the log transform still applies).
    pub fn identity() -> Self {
        Self {
            mean: [0.0; 5],
            std: [1.0; 5],
        }
    }

    /// Fits mean/std over a dataset (in transformed space).
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(dataset: &Dataset) -> Self {
        assert!(!dataset.is_empty(), "cannot fit stats on empty dataset");
        let n = dataset.len() as f64;
        let mut mean = [0.0; 5];
        for s in &dataset.samples {
            for (m, v) in mean.iter_mut().zip(transform(&s.metrics())) {
                *m += v / n;
            }
        }
        let mut var = [0.0; 5];
        for s in &dataset.samples {
            for ((v, m), x) in var.iter_mut().zip(mean).zip(transform(&s.metrics())) {
                *v += (x - m) * (x - m) / n;
            }
        }
        let std = var.map(|v| v.sqrt().max(1e-9));
        Self { mean, std }
    }

    /// Normalizes a metric vector (log transform + z-score).
    pub fn normalize(&self, y: &[f64; 5]) -> [f64; 5] {
        let t = transform(y);
        let mut out = [0.0; 5];
        for i in 0..5 {
            out[i] = (t[i] - self.mean[i]) / self.std[i];
        }
        out
    }

    /// Inverse of [`TargetStats::normalize`].
    pub fn denormalize(&self, y: &[f64; 5]) -> [f64; 5] {
        let mut t = [0.0; 5];
        for i in 0..5 {
            t[i] = y[i] * self.std[i] + self.mean[i];
        }
        untransform(&t)
    }
}

/// Dataset-generation settings.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of samples to generate.
    pub samples: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Guidance sampling bounds (log-uniform).
    pub c_low: f64,
    /// Upper sampling bound.
    pub c_high: f64,
    /// Router settings used for every sample.
    pub router: RouterConfig,
    /// Simulator settings used for every sample.
    pub sim: SimConfig,
    /// Worker threads for the per-sample fan-out; `0` resolves through
    /// `AFRT_THREADS`, then hardware parallelism. Any value yields
    /// bit-identical datasets because each sample's guidance comes from
    /// `afrt::split_seed(seed, sample_index)`, not a shared stream.
    pub threads: usize,
    /// Samples per checkpoint shard when a checkpoint directory is given.
    pub shard_size: usize,
    /// Capacity (MiB) of the tier-C guidance→performance memo; `0`
    /// disables it. When a checkpoint store is given the memo spills to
    /// disk beside the shards, so resumed runs and sibling shards skip
    /// already-routed samples.
    pub cache_mb: u64,
    /// Guidance quantization grid for cache keys. `0.0` (default) keys by
    /// the exact guidance bits — hits are guaranteed bit-identical to
    /// recomputation, preserving the determinism contract. A positive grid
    /// collapses near-duplicate guidance onto one key (higher hit rates,
    /// approximate labels); only for exploratory sweeps.
    pub cache_quant: f64,
    /// Retry policy for transiently-failing sample evaluations (injected
    /// faults, worker panics). Retries recompute from the sample's own
    /// seed, so a retried sample is bit-identical to an untroubled one.
    pub retry: af_fault::RetryPolicy,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            samples: 120,
            seed: 2024,
            c_low: 0.4,
            c_high: 2.2,
            router: RouterConfig::default(),
            sim: SimConfig::default(),
            threads: 0,
            shard_size: 32,
            cache_mb: 64,
            cache_quant: 0.0,
            retry: af_fault::RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 2,
                max_delay_ms: 50,
                ..af_fault::RetryPolicy::default()
            },
        }
    }
}

/// Error during dataset generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatasetError {
    /// The router failed on a sample.
    Route(RouteError),
    /// The simulator failed on a sample.
    Sim(SimError),
    /// A checkpoint shard could not be written.
    Checkpoint(String),
    /// Sample evaluation panicked (caught at the sample boundary so one bad
    /// sample cannot sink the whole generation run).
    Panicked(String),
    /// An armed failpoint injected this failure (chaos testing).
    Injected(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Route(e) => write!(f, "routing failed: {e}"),
            DatasetError::Sim(e) => write!(f, "simulation failed: {e}"),
            DatasetError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            DatasetError::Panicked(msg) => write!(f, "sample evaluation panicked: {msg}"),
            DatasetError::Injected(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl DatasetError {
    /// Whether retrying the failed sample could plausibly succeed (see
    /// [`crate::Error::is_transient`] for the full classification).
    /// Routing and simulation failures are deterministic functions of the
    /// sample's guidance — retrying recomputes the same failure — while
    /// injected faults, panics (which injected faults cause under chaos
    /// testing), and checkpoint I/O failures are worth retrying. A
    /// *genuinely* deterministic panic simply exhausts its retries and is
    /// then recorded as the sample's permanent failure.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            DatasetError::Route(_) | DatasetError::Sim(_) => false,
            DatasetError::Panicked(_) | DatasetError::Injected(_) => true,
            // `Checkpoint` stringifies a `PersistError`: its `Io` rendering
            // is transient, serialization failures are not.
            DatasetError::Checkpoint(msg) => msg.contains("io error") || af_fault::is_injected(msg),
        }
    }
}

/// Builds the router guidance field for a flattened guidance vector.
pub fn guidance_field(graph: &HeteroGraph, guidance: &[f64]) -> NonUniformGuidance {
    let guided = graph.guided_ap_indices();
    assert_eq!(guidance.len(), guided.len() * 3, "guidance length mismatch");
    let mut field = NonUniformGuidance::new();
    for (row, &ap_idx) in guided.iter().enumerate() {
        let ap = &graph.aps[ap_idx];
        let triple = CostTriple([
            guidance[row * 3],
            guidance[row * 3 + 1],
            guidance[row * 3 + 2],
        ]);
        field.set(ap.net, ap.pos, triple);
    }
    field
}

/// Convenience wrapper: rebuilds the heterogeneous graph for a placement and
/// returns the router guidance field for a flattened guidance vector.
pub fn guidance_field_for(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    guidance: &[f64],
) -> NonUniformGuidance {
    let graph = HeteroGraph::build(circuit, placement, tech, 3);
    guidance_field(&graph, guidance)
}

/// Routes + extracts + simulates one guidance assignment.
pub fn evaluate_guidance(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    graph: &HeteroGraph,
    guidance: &[f64],
    router: &RouterConfig,
    sim: &SimConfig,
) -> Result<Performance, DatasetError> {
    let field = RoutingGuidance::NonUniform(guidance_field(graph, guidance));
    let layout = Router::new(router.clone())
        .map_err(|e| DatasetError::Route(RouteError::from(e)))?
        .route(circuit, placement, tech, &field)
        .map_err(DatasetError::Route)?;
    let parasitics = extract(circuit, tech, &layout);
    simulate(circuit, Some(&parasitics), sim).map_err(DatasetError::Sim)
}

/// Number of checkpoint shards `cfg` produces: `ceil(samples / shard_size)`.
/// Shard geometry is a pure function of the config, so every fleet worker
/// and the coordinator agree on it without coordination.
#[must_use]
pub fn shard_count(cfg: &DatasetConfig) -> usize {
    cfg.samples.div_ceil(cfg.shard_size.max(1))
}

/// The sample-index range `[start, end)` covered by `shard_index`. Empty
/// when the index is past the end.
#[must_use]
pub fn shard_range(cfg: &DatasetConfig, shard_index: usize) -> std::ops::Range<usize> {
    let shard = cfg.shard_size.max(1);
    let start = (shard_index * shard).min(cfg.samples);
    let end = (start + shard).min(cfg.samples);
    start..end
}

/// Everything one sample evaluation needs, hoisted out of the shard loop so
/// the single-process generator and the fleet's distributed workers run the
/// byte-for-byte same code path (the bit-identity contract depends on it).
struct EvalCtx<'a> {
    circuit: &'a Circuit,
    placement: &'a Placement,
    tech: &'a Technology,
    graph: &'a HeteroGraph,
    cfg: &'a DatasetConfig,
    runtime: &'a afrt::Runtime,
    eval_cache: Option<crate::cache::EvalCache>,
    design: Option<af_cache::ContentHash>,
}

impl<'a> EvalCtx<'a> {
    /// Builds the context, wiring the tier-C guidance→performance memo to
    /// spill beside `spill`'s shards when a store is given. The memo never
    /// changes results (exact-bits keys at `cache_quant == 0.0`), so its
    /// presence or absence preserves bit-identity.
    fn new(
        circuit: &'a Circuit,
        placement: &'a Placement,
        tech: &'a Technology,
        graph: &'a HeteroGraph,
        cfg: &'a DatasetConfig,
        runtime: &'a afrt::Runtime,
        spill: Option<&ShardStore>,
    ) -> Self {
        let eval_cache = (cfg.cache_mb > 0 && crate::cache::cache_enabled()).then(|| {
            let cache = crate::cache::EvalCache::new(cfg.cache_mb);
            match spill {
                Some(store) => cache.with_spill(std::sync::Arc::new(ShardStore::new(
                    store.dir().join("cache"),
                ))),
                None => cache,
            }
        });
        let design = eval_cache
            .as_ref()
            .map(|_| crate::cache::design_eval_hash(graph, &cfg.router, &cfg.sim));
        Self {
            circuit,
            placement,
            tech,
            graph,
            cfg,
            runtime,
            eval_cache,
            design,
        }
    }

    /// Evaluates samples `[start, end)`, fanning out across the runtime's
    /// worker pool. Each record depends only on `(cfg.seed, sample_index)`,
    /// never on which process, worker, or thread computed it.
    fn eval_range(&self, start: usize, end: usize) -> Vec<(SampleRecord, Option<DatasetError>)> {
        let cfg = self.cfg;
        let n_guided = self.graph.guided_ap_indices().len();
        let (lo, hi) = (cfg.c_low.ln(), cfg.c_high.ln());
        let indices: Vec<usize> = (start..end).collect();
        self.runtime
            .par_map(&indices, |_, &i| {
                let _s = af_obs::span!("sample", i);
                let mut rng = ChaCha8Rng::seed_from_u64(afrt::split_seed(cfg.seed, i as u64));
                let guidance: Vec<f64> = (0..n_guided * 3)
                    .map(|_| rng.gen_range(lo..=hi).exp())
                    .collect();
                let key = self.eval_cache.as_ref().map(|_| {
                    crate::cache::guidance_key(
                        self.design.as_ref().expect("design hash set with cache"),
                        &guidance,
                        cfg.cache_quant,
                    )
                });
                // Retry transient failures. The `sim.eval` failpoint is
                // keyed by (sample, attempt), so the injected schedule —
                // and with it the retry timeline and the final dataset —
                // is identical at every thread count, and each retry gets
                // a fresh draw (a transient fault stops firing).
                let result = cfg.retry.run(
                    "dataset.sample",
                    DatasetError::is_transient,
                    |attempt| -> Result<Performance, DatasetError> {
                        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || -> Result<Performance, DatasetError> {
                                af_fault::fail!(
                                    "sim.eval",
                                    key = af_fault::mix(i as u64, u64::from(attempt)),
                                    DatasetError::Injected(af_fault::injected("sim.eval"))
                                );
                                if let (Some(cache), Some(key)) = (&self.eval_cache, &key) {
                                    if let Some(performance) = cache.lookup(key) {
                                        af_obs::counter("dataset.samples_cached", 1);
                                        return Ok(performance);
                                    }
                                }
                                let performance = evaluate_guidance(
                                    self.circuit,
                                    self.placement,
                                    self.tech,
                                    self.graph,
                                    &guidance,
                                    &cfg.router,
                                    &cfg.sim,
                                )?;
                                if let (Some(cache), Some(key)) = (&self.eval_cache, &key) {
                                    cache.store(*key, &performance);
                                }
                                Ok(performance)
                            },
                        ));
                        outcome.unwrap_or_else(|payload| {
                            Err(DatasetError::Panicked(afrt::panic_message(
                                payload.as_ref(),
                            )))
                        })
                    },
                );
                match result {
                    Ok(performance) => (
                        SampleRecord {
                            guidance,
                            performance: Some(performance),
                            error: None,
                        },
                        None,
                    ),
                    Err(e) => {
                        af_obs::counter("dataset.samples_failed", 1);
                        af_obs::warn(&format!("sample {i} permanently failed after retries: {e}"));
                        (
                            SampleRecord {
                                guidance,
                                performance: None,
                                error: Some(e.to_string()),
                            },
                            Some(e),
                        )
                    }
                }
            })
            .unwrap_or_else(|e| panic!("dataset generation failed: {e}"))
    }
}

/// Whether a loaded shard is complete and fully successful for `cfg` —
/// the reuse criterion shared by resume-from-checkpoint and the fleet's
/// lease-recovery path (anything short, corrupt, or carrying recorded
/// failures regenerates).
#[must_use]
pub fn shard_is_complete(
    cfg: &DatasetConfig,
    graph: &HeteroGraph,
    shard_index: usize,
    shard: &[SampleRecord],
) -> bool {
    let n_guided = graph.guided_ap_indices().len();
    shard.len() == shard_range(cfg, shard_index).len()
        && !shard.is_empty()
        && shard
            .iter()
            .all(|r| r.performance.is_some() && r.guidance.len() == n_guided * 3)
}

/// Computes the records of one checkpoint shard — the unit of work a fleet
/// worker leases. The result depends only on `(cfg, shard_index)`: any
/// worker, any thread count, any retry timeline produces bit-identical
/// records, which is what lets a coordinator re-lease a dead worker's shard
/// and still assemble the same dataset.
///
/// `spill`, when given, hosts the disk tier of the guidance→performance
/// memo (typically the shared checkpoint store); the shard itself is *not*
/// saved — callers own persistence.
#[must_use]
pub fn generate_shard(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    graph: &HeteroGraph,
    cfg: &DatasetConfig,
    shard_index: usize,
    spill: Option<&ShardStore>,
) -> Vec<SampleRecord> {
    let _g = af_obs::span!("generate_shard", shard_index);
    let runtime = afrt::Runtime::with_threads(cfg.threads);
    let ctx = EvalCtx::new(circuit, placement, tech, graph, cfg, &runtime, spill);
    let range = shard_range(cfg, shard_index);
    let evaluated = ctx.eval_range(range.start, range.end);
    af_obs::counter(
        "dataset.samples_generated",
        evaluated
            .iter()
            .filter(|(r, _)| r.performance.is_some())
            .count() as u64,
    );
    evaluated.into_iter().map(|(r, _)| r).collect()
}

/// Reassembles the final dataset from a checkpoint directory once every
/// shard of `cfg` is present and fully successful. Returns `Ok(None)` while
/// any shard is still missing or incomplete — the fleet coordinator polls
/// this after each completion. Successful records concatenate in shard
/// order, so the result is bit-identical to a single-process
/// [`generate_dataset_checkpointed`] run of the same config.
///
/// # Errors
///
/// When a shard fails to load for I/O reasons other than absence.
pub fn assemble_dataset(
    store: &ShardStore,
    cfg: &DatasetConfig,
    graph: &HeteroGraph,
) -> Result<Option<Dataset>, DatasetError> {
    let mut samples = Vec::with_capacity(cfg.samples);
    for shard_index in 0..shard_count(cfg) {
        let shard = store
            .load_shard::<Vec<SampleRecord>>(shard_index)
            .map_err(|e| DatasetError::Checkpoint(e.to_string()))?;
        match shard {
            Some(shard) if shard_is_complete(cfg, graph, shard_index, &shard) => {
                samples.extend(shard.into_iter().filter_map(SampleRecord::into_sample));
            }
            _ => return Ok(None),
        }
    }
    Ok(Some(Dataset { samples }))
}

/// Generates a labeled dataset by sampling guidance log-uniformly in
/// `[c_low, c_high]` per component.
///
/// Sample evaluation (route → extract → simulate) fans out across the
/// [`afrt`] worker pool. Sample `i`'s guidance is drawn from its own RNG
/// seeded with `afrt::split_seed(cfg.seed, i)`, so the dataset is
/// bit-identical for every thread count.
///
/// # Errors
///
/// Propagates the lowest-index routing or simulation failure.
pub fn generate_dataset(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    graph: &HeteroGraph,
    cfg: &DatasetConfig,
) -> Result<Dataset, DatasetError> {
    generate_dataset_checkpointed(circuit, placement, tech, graph, cfg, None)
}

/// [`generate_dataset`] with sharded, resumable checkpointing: every
/// completed shard of `cfg.shard_size` samples is written into `checkpoint`
/// as it finishes, and shards already present (from an earlier, interrupted
/// run with the same config) are loaded instead of recomputed. Because each
/// sample depends only on `(cfg.seed, sample_index)`, resumed and fresh runs
/// produce identical datasets.
///
/// # Fault tolerance
///
/// Each sample is evaluated under `cfg.retry`: transient failures (injected
/// faults, caught worker panics) recompute from the sample's own seed, so a
/// retried sample is bit-identical to an untroubled one. A failure that
/// survives all retries is handled two ways:
///
/// - **With a checkpoint**: the sample is recorded in its shard as a
///   [`SampleRecord`] carrying the error (counter `dataset.samples_failed`)
///   and generation continues — a long run never aborts over a few bad
///   samples, and the checkpoint documents exactly which ones failed. On
///   resume, a shard containing failures is regenerated (only fully
///   successful shards are reused verbatim), so a later run under better
///   conditions heals the gaps.
/// - **Without a checkpoint**: the lowest-index error propagates, as
///   before.
///
/// # Errors
///
/// A shard write failure that survives retrying; without a checkpoint,
/// also the lowest-index permanent routing or simulation failure.
pub fn generate_dataset_checkpointed(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    graph: &HeteroGraph,
    cfg: &DatasetConfig,
    checkpoint: Option<&ShardStore>,
) -> Result<Dataset, DatasetError> {
    let _gen = af_obs::span!("generate_dataset");
    let runtime = afrt::Runtime::with_threads(cfg.threads);
    // Tier C: memoize guidance→performance by (design hash, guidance key).
    // With a checkpoint store the memo spills beside the shards, so a
    // resumed run (or a sibling shard revisiting a guidance point) skips
    // the route→extract→simulate pipeline entirely.
    let ctx = EvalCtx::new(circuit, placement, tech, graph, cfg, &runtime, checkpoint);
    let mut samples = Vec::with_capacity(cfg.samples);

    for shard_index in 0..shard_count(cfg) {
        let range = shard_range(cfg, shard_index);

        // Resume: a shard from a previous run of the same config is reused
        // verbatim only when it is complete *and* fully successful;
        // anything missing, short, corrupt, or containing recorded
        // failures regenerates (giving permanently-failed samples another
        // chance under better conditions).
        if let Some(store) = checkpoint {
            if let Ok(Some(shard)) = store.load_shard::<Vec<SampleRecord>>(shard_index) {
                if shard_is_complete(cfg, graph, shard_index, &shard) {
                    af_obs::counter("dataset.shards_resumed", 1);
                    af_obs::counter("dataset.samples_resumed", shard.len() as u64);
                    samples.extend(shard.into_iter().filter_map(SampleRecord::into_sample));
                    continue;
                }
            }
        }

        let evaluated = ctx.eval_range(range.start, range.end);

        // Without a checkpoint the historical contract holds: the
        // lowest-index permanent failure aborts generation. With one, the
        // failure is recorded in the shard instead and the run continues.
        if checkpoint.is_none() {
            if let Some(e) = evaluated.iter().find_map(|(_, e)| e.clone()) {
                return Err(e);
            }
        }
        let shard: Vec<SampleRecord> = evaluated.into_iter().map(|(r, _)| r).collect();
        af_obs::counter(
            "dataset.samples_generated",
            shard.iter().filter(|r| r.performance.is_some()).count() as u64,
        );

        if let Some(store) = checkpoint {
            store
                .save_shard(shard_index, &shard)
                .map_err(|e| DatasetError::Checkpoint(e.to_string()))?;
            af_obs::counter("dataset.shards_written", 1);
        }
        samples.extend(shard.into_iter().filter_map(SampleRecord::into_sample));
    }
    Ok(Dataset { samples })
}

/// Generates a dataset spanning several placements of the same circuit —
/// the paper trains on "2000 samples on target design with different
/// placements and routing solutions". Each placement contributes
/// `cfg.samples / placements.len()` samples (at least one), labeled against
/// its own heterogeneous graph; the guidance vectors are only meaningful for
/// graphs with the same guided-AP layout, which holds across placements of
/// one circuit because AP enumeration follows the netlist pin order.
///
/// # Errors
///
/// Propagates the first routing or simulation failure.
///
/// # Panics
///
/// Panics if `placements` is empty or the guided-AP counts differ between
/// placements.
pub fn generate_dataset_multi(
    circuit: &Circuit,
    placements: &[&Placement],
    tech: &Technology,
    cfg: &DatasetConfig,
) -> Result<Dataset, DatasetError> {
    assert!(!placements.is_empty(), "need at least one placement");
    let per = (cfg.samples / placements.len()).max(1);
    let mut all = Dataset::default();
    let mut expected_len: Option<usize> = None;
    for (i, placement) in placements.iter().enumerate() {
        let graph = HeteroGraph::build(circuit, placement, tech, 3);
        let n = graph.guided_ap_indices().len() * 3;
        match expected_len {
            None => expected_len = Some(n),
            Some(e) => assert_eq!(e, n, "guided-AP layout differs between placements"),
        }
        let sub = generate_dataset(
            circuit,
            placement,
            tech,
            &graph,
            &DatasetConfig {
                samples: per,
                seed: cfg.seed.wrapping_add(i as u64),
                ..cfg.clone()
            },
        )?;
        all.samples.extend(sub.samples);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    #[test]
    fn stats_roundtrip() {
        let mk = |o: f64| Sample {
            guidance: vec![1.0; 3],
            performance: Performance {
                offset_uv: o,
                cmrr_db: 80.0 + o,
                bandwidth_mhz: 50.0,
                dc_gain_db: 40.0,
                noise_uvrms: 300.0 - o,
            },
        };
        let ds = Dataset {
            samples: vec![mk(10.0), mk(20.0), mk(30.0)],
        };
        let stats = TargetStats::fit(&ds);
        let y = ds.samples[1].metrics();
        let n = stats.normalize(&y);
        let back = stats.denormalize(&n);
        for (a, b) in y.iter().zip(back) {
            assert!((a - b).abs() < 1e-9);
        }
        // constant metric gets epsilon std, no NaN
        assert!(stats.std.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn guidance_field_maps_aps() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let graph = HeteroGraph::build(&c, &p, &t, 2);
        let n = graph.guided_ap_indices().len();
        let guidance: Vec<f64> = (0..n * 3).map(|i| 0.5 + i as f64 * 0.01).collect();
        let field = guidance_field(&graph, &guidance);
        assert_eq!(field.len(), n);
        // every guided net appears
        for idx in graph.guided_ap_indices() {
            let net = graph.aps[idx].net;
            assert!(field.nets().any(|x| x == net));
        }
    }

    #[test]
    fn small_dataset_generation() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let graph = HeteroGraph::build(&c, &p, &t, 2);
        let cfg = DatasetConfig {
            samples: 3,
            ..DatasetConfig::default()
        };
        let ds = generate_dataset(&c, &p, &t, &graph, &cfg).unwrap();
        assert_eq!(ds.len(), 3);
        for s in &ds.samples {
            assert!(s.performance.dc_gain_db.is_finite());
            assert!(s.guidance.iter().all(|&g| (0.3..=2.3).contains(&g)));
        }
        // different guidance should usually lead to different metrics
        let o0 = ds.samples[0].performance.offset_uv;
        let distinct = ds
            .samples
            .iter()
            .any(|s| (s.performance.offset_uv - o0).abs() > 1e-9);
        assert!(distinct, "samples should differ");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn stats_reject_empty() {
        let _ = TargetStats::fit(&Dataset::default());
    }

    #[test]
    fn checkpointed_generation_resumes_identically() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let graph = HeteroGraph::build(&c, &p, &t, 2);
        let cfg = DatasetConfig {
            samples: 5,
            shard_size: 2,
            ..DatasetConfig::default()
        };
        let plain = generate_dataset(&c, &p, &t, &graph, &cfg).unwrap();

        let dir = std::env::temp_dir().join(format!("afrt-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);
        let first = generate_dataset_checkpointed(&c, &p, &t, &graph, &cfg, Some(&store)).unwrap();
        // Simulate an interrupted run: drop the final (partial-width) shard,
        // then resume — shards 0 and 1 load, shard 2 regenerates.
        std::fs::remove_file(store.shard_path(2)).unwrap();
        let resumed =
            generate_dataset_checkpointed(&c, &p, &t, &graph, &cfg, Some(&store)).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(plain.len(), 5);
        for (a, b) in plain.samples.iter().zip(&first.samples) {
            assert_eq!(
                a.guidance, b.guidance,
                "checkpointing must not change results"
            );
        }
        for (a, b) in first.samples.iter().zip(&resumed.samples) {
            assert_eq!(a.guidance, b.guidance, "resume must reproduce the run");
            assert_eq!(a.performance.as_array(), b.performance.as_array());
        }
    }

    #[test]
    fn shard_geometry_covers_samples_exactly() {
        let cfg = DatasetConfig {
            samples: 7,
            shard_size: 3,
            ..DatasetConfig::default()
        };
        assert_eq!(shard_count(&cfg), 3);
        assert_eq!(shard_range(&cfg, 0), 0..3);
        assert_eq!(shard_range(&cfg, 1), 3..6);
        assert_eq!(shard_range(&cfg, 2), 6..7, "final shard is partial");
        assert!(shard_range(&cfg, 3).is_empty(), "past-the-end is empty");
        let zero = DatasetConfig {
            samples: 4,
            shard_size: 0,
            ..DatasetConfig::default()
        };
        assert_eq!(shard_count(&zero), 4, "shard_size 0 clamps to 1");
    }

    #[test]
    fn shard_generation_matches_single_process_bit_for_bit() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let graph = HeteroGraph::build(&c, &p, &t, 2);
        let cfg = DatasetConfig {
            samples: 5,
            shard_size: 2,
            ..DatasetConfig::default()
        };
        let plain = generate_dataset(&c, &p, &t, &graph, &cfg).unwrap();

        // Compute shards out of order (as different fleet workers would),
        // persist them, and assemble — must equal the one-process run.
        let dir = std::env::temp_dir().join(format!("afrt-shardgen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);
        for shard_index in [2usize, 0, 1] {
            let shard = generate_shard(&c, &p, &t, &graph, &cfg, shard_index, Some(&store));
            assert!(shard_is_complete(&cfg, &graph, shard_index, &shard));
            store.save_shard(shard_index, &shard).unwrap();
        }
        let assembled = assemble_dataset(&store, &cfg, &graph).unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(assembled.len(), plain.len());
        for (a, b) in plain.samples.iter().zip(&assembled.samples) {
            assert_eq!(
                a.guidance, b.guidance,
                "distributed run must be bit-identical"
            );
            assert_eq!(a.performance.as_array(), b.performance.as_array());
        }
    }

    #[test]
    fn assemble_reports_incomplete_checkpoints() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let graph = HeteroGraph::build(&c, &p, &t, 2);
        let cfg = DatasetConfig {
            samples: 4,
            shard_size: 2,
            ..DatasetConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("afrt-assemble-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);
        assert!(assemble_dataset(&store, &cfg, &graph).unwrap().is_none());
        let shard = generate_shard(&c, &p, &t, &graph, &cfg, 0, None);
        store.save_shard(0, &shard).unwrap();
        assert!(
            assemble_dataset(&store, &cfg, &graph).unwrap().is_none(),
            "one of two shards present"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_placement_dataset() {
        let c = benchmarks::ota1();
        let t = Technology::nm40();
        let pa = place(&c, PlacementVariant::A);
        let pb = place(&c, PlacementVariant::B);
        let ds = generate_dataset_multi(
            &c,
            &[&pa, &pb],
            &t,
            &DatasetConfig {
                samples: 4,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(ds.len(), 4, "2 samples per placement");
        let len0 = ds.samples[0].guidance.len();
        assert!(ds.samples.iter().all(|s| s.guidance.len() == len0));
    }
}
