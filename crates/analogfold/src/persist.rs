//! Model persistence: save/load trained models and datasets as JSON.
//!
//! A trained [`ThreeDGnn`] (weights + normalization statistics) and a
//! [`GeniusRouteModel`] are plain serde structures; these helpers give them
//! a stable on-disk workflow so the expensive training step can be amortized
//! across runs — the same way the paper amortizes its 2 000-sample database.

use std::fs;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

use crate::dataset::Dataset;
use crate::genius::GeniusRouteModel;
use crate::gnn::ThreeDGnn;

/// Format tag in the versioned [`ThreeDGnn`] file header.
pub const GNN_FORMAT: &str = "analogfold-gnn";

/// Current [`ThreeDGnn`] file format version. Version 2 replaced the
/// parameter-count checksum with a 128-bit content hash of the model body
/// ([`crate::content_hash_of`]); version-1 files (parameter-count header)
/// and legacy headerless files still load.
pub const GNN_FORMAT_VERSION: u64 = 2;

/// The superseded version-1 header (parameter-count checksum), still
/// accepted by [`ThreeDGnn::load`].
pub const GNN_FORMAT_VERSION_V1: u64 = 1;

/// Persistence failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Json(serde_json::Error),
    /// Model file header validation failure: wrong format tag, unsupported
    /// version, or a content-hash / checksum mismatch (stale, truncated, or
    /// tampered file). Loading such a model would produce garbage
    /// predictions.
    Header(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
            PersistError::Header(msg) => write!(f, "model header error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// Whether retrying the failed operation could plausibly succeed.
    /// I/O failures (including injected ones — see [`af_fault::is_injected`])
    /// are transient: disks fill, NFS blips, chaos tests fire. Serialization
    /// and header failures are deterministic properties of the data and
    /// would fail identically on every retry.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, PersistError::Io(_))
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

fn save<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, serde_json::to_string(value)?)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    Ok(serde_json::from_str(&fs::read_to_string(path)?)?)
}

/// A directory of numbered JSON shards (`shard-0000.json`, `shard-0001.json`,
/// …) used for resumable checkpointing of long generation jobs: each
/// completed shard is written as soon as it finishes, and a restarted job
/// reloads whatever shards already exist instead of recomputing them.
///
/// Writes go through a temporary file renamed into place, so a job killed
/// mid-write leaves no partial shard behind.
///
/// # Crash-consistency contract
///
/// Every write ([`ShardStore::save_shard`] and spill `put`) follows the
/// full durable-rename discipline:
///
/// 1. write the payload to a temporary file in the same directory,
/// 2. `sync_all()` the temporary file (so the *data* is on disk before any
///    name points at it),
/// 3. `rename()` it over the final name (atomic on POSIX filesystems),
/// 4. fsync the directory (unix only; on other platforms the rename's
///    durability is best-effort).
///
/// After a crash at any point, a shard name therefore refers either to the
/// complete old content or the complete new content — never to a torn or
/// empty file — and once `save_shard` returns, the shard survives power
/// loss. A crash between (3) and (4) can lose the *rename* (the old content
/// reappears) but never produces a partial file; the checkpoint loop
/// tolerates that by regenerating any shard it cannot load.
///
/// Transient write failures are retried under the store's [`RetryPolicy`]
/// (default: 3 attempts). The `persist.save_shard` and `persist.spill`
/// failpoints inject `Io` errors here for chaos tests.
#[derive(Debug, Clone)]
pub struct ShardStore {
    dir: std::path::PathBuf,
    retry: af_fault::RetryPolicy,
}

/// Writes `bytes` to `final_path` with the durable-rename discipline
/// documented on [`ShardStore`].
fn write_durable(dir: &Path, tmp: &Path, final_path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(tmp)?;
    f.write_all(bytes)?;
    // Data must be durable before the rename publishes a name for it.
    f.sync_all()?;
    drop(f);
    fs::rename(tmp, final_path)?;
    // Make the rename itself durable: fsync the containing directory.
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    Ok(())
}

impl ShardStore {
    /// Store rooted at `dir` (created lazily on first save) with the
    /// default write [`RetryPolicy`].
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            retry: af_fault::RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 5,
                max_delay_ms: 100,
                ..af_fault::RetryPolicy::default()
            },
        }
    }

    /// Overrides the policy applied to transient write failures.
    #[must_use]
    pub fn with_retry(mut self, retry: af_fault::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `index`.
    pub fn shard_path(&self, index: usize) -> std::path::PathBuf {
        self.dir.join(format!("shard-{index:04}.json"))
    }

    /// Writes shard `index` atomically and durably (see the
    /// crash-consistency contract on [`ShardStore`]); transient I/O
    /// failures are retried under the store's policy.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures that survive retrying.
    pub fn save_shard<T: Serialize>(&self, index: usize, value: &T) -> Result<(), PersistError> {
        let payload = serde_json::to_string(value)?;
        let tmp = self.dir.join(format!(".shard-{index:04}.json.tmp"));
        let final_path = self.shard_path(index);
        self.retry.run(
            "persist.save_shard",
            PersistError::is_transient,
            |attempt| {
                af_fault::fail!(
                    "persist.save_shard",
                    key = af_fault::mix(index as u64, u64::from(attempt)),
                    PersistError::Io(std::io::Error::other(af_fault::injected(
                        "persist.save_shard"
                    )))
                );
                write_durable(&self.dir, &tmp, &final_path, payload.as_bytes())
                    .map_err(PersistError::Io)
            },
        )
    }

    /// Loads shard `index` if it exists and parses cleanly; a missing or
    /// corrupt shard returns `Ok(None)` so the caller regenerates it.
    ///
    /// # Errors
    ///
    /// Filesystem failures other than "not found".
    pub fn load_shard<T: DeserializeOwned>(&self, index: usize) -> Result<Option<T>, PersistError> {
        let path = self.shard_path(index);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match serde_json::from_str(&text) {
            Ok(v) => Ok(Some(v)),
            Err(e) => {
                // Regeneration is the right recovery, but it must be
                // visible: a silently re-generated shard can mask a disk
                // or writer bug indefinitely.
                af_obs::counter("persist.shard_corrupt", 1);
                af_obs::warn(&format!(
                    "corrupt shard {}: {e}; regenerating",
                    path.display()
                ));
                Ok(None)
            }
        }
    }

    /// Indices of the shard files currently present in the directory,
    /// sorted ascending. Presence only — callers decide whether a shard's
    /// *contents* qualify for reuse (see the dataset layer's completeness
    /// check). A missing directory is an empty store, matching
    /// [`load_shard`](Self::load_shard)'s treatment of missing files; used
    /// by the fleet coordinator to seed its lease table when resuming an
    /// interrupted distributed run.
    #[must_use]
    pub fn existing_shards(&self) -> Vec<usize> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<usize> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let idx = name.strip_prefix("shard-")?.strip_suffix(".json")?;
                idx.parse().ok()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether shard `index`'s file exists (contents unchecked).
    #[must_use]
    pub fn has_shard(&self, index: usize) -> bool {
        self.shard_path(index).exists()
    }
}

/// The versioned save envelope: format tag, version, and a 128-bit content
/// hash of the model body (canonical hash of its serialized value tree) as
/// an integrity check against truncated, stale, or tampered files.
struct GnnEnvelope<'a>(&'a ThreeDGnn);

impl Serialize for GnnEnvelope<'_> {
    fn to_value(&self) -> Value {
        let model = self.0.to_value();
        let hash = {
            let mut h = af_cache::ContentHasher::new();
            crate::cache::hash_value(&mut h, &model);
            h.finish()
        };
        Value::Map(vec![
            ("format".to_string(), Value::Str(GNN_FORMAT.to_string())),
            ("version".to_string(), Value::UInt(GNN_FORMAT_VERSION)),
            ("content_hash".to_string(), Value::Str(hash.to_hex())),
            ("model".to_string(), model),
        ])
    }
}

fn header_u64(v: &Value, key: &str) -> Result<u64, PersistError> {
    match v.get(key) {
        Some(Value::UInt(u)) => Ok(*u),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        _ => Err(PersistError::Header(format!(
            "missing or non-integer `{key}` field"
        ))),
    }
}

/// Content-addressed spill through a [`ShardStore`] directory: one
/// `<hex>.spill` file per [`af_cache::ContentHash`] beside the numbered
/// shards, written atomically like the shards themselves. This is what lets
/// flow/dataset caches persist next to the checkpoints they memoize.
impl af_cache::persist::SpillBackend for ShardStore {
    fn put(&self, key: &af_cache::ContentHash, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self
            .dir
            .join(format!(".{}.{:x}.tmp", key.to_hex(), std::process::id()));
        let final_path = self.dir.join(format!("{}.spill", key.to_hex()));
        self.retry.run(
            "persist.spill",
            |_e: &std::io::Error| true,
            |_attempt| {
                af_fault::fail!(
                    "persist.spill",
                    std::io::Error::other(af_fault::injected("persist.spill"))
                );
                write_durable(&self.dir, &tmp, &final_path, bytes)
            },
        )
    }

    fn get(&self, key: &af_cache::ContentHash) -> std::io::Result<Option<Vec<u8>>> {
        match fs::read(self.dir.join(format!("{}.spill", key.to_hex()))) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl ThreeDGnn {
    /// Saves the model (weights + target statistics) as JSON, wrapped in a
    /// versioned header carrying a content hash of the model body.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(&GnnEnvelope(self), path.as_ref())
    }

    /// Loads a model saved with [`ThreeDGnn::save`].
    ///
    /// Files with the versioned header are validated — format tag, version,
    /// and parameter-count checksum — so a stale or truncated model fails
    /// loudly instead of producing garbage predictions. Legacy headerless
    /// files (raw serialized model) still load.
    ///
    /// # Errors
    ///
    /// Filesystem failures, deserialization failures, or
    /// [`PersistError::Header`] when header validation fails.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let text = fs::read_to_string(path.as_ref())?;
        let tree = serde_json::value_from_str(&text)?;
        let Some(format) = tree.get("format") else {
            // Legacy headerless file: the raw serialized model.
            return serde::Deserialize::from_value(&tree).map_err(|e| PersistError::Json(e.into()));
        };
        if format != &Value::Str(GNN_FORMAT.to_string()) {
            return Err(PersistError::Header(format!(
                "format tag {format:?} is not `{GNN_FORMAT}`"
            )));
        }
        let version = header_u64(&tree, "version")?;
        if version != GNN_FORMAT_VERSION && version != GNN_FORMAT_VERSION_V1 {
            return Err(PersistError::Header(format!(
                "unsupported version {version} (this build reads {GNN_FORMAT_VERSION_V1} \
                 and {GNN_FORMAT_VERSION})"
            )));
        }
        let model_tree = tree
            .get("model")
            .ok_or_else(|| PersistError::Header("missing `model` field".to_string()))?;
        if version == GNN_FORMAT_VERSION {
            // v2: verify the content hash of the body *before* spending time
            // deserializing it (and so that any corruption inside the body
            // is caught, not just a wrong parameter count).
            let expected = match tree.get("content_hash") {
                Some(Value::Str(hex)) => af_cache::ContentHash::from_hex(hex).ok_or_else(|| {
                    PersistError::Header(format!("malformed `content_hash` `{hex}`"))
                })?,
                _ => {
                    return Err(PersistError::Header(
                        "missing `content_hash` field".to_string(),
                    ))
                }
            };
            let mut h = af_cache::ContentHasher::new();
            crate::cache::hash_value(&mut h, model_tree);
            let actual = h.finish();
            if actual != expected {
                return Err(PersistError::Header(format!(
                    "content-hash mismatch: header says {expected}, body hashes to {actual} \
                     (stale, truncated, or tampered file?)"
                )));
            }
        }
        let model: ThreeDGnn =
            serde::Deserialize::from_value(model_tree).map_err(|e| PersistError::Json(e.into()))?;
        if version == GNN_FORMAT_VERSION_V1 {
            // v1 back-compat: the weaker parameter-count checksum.
            let params = header_u64(&tree, "params")?;
            let actual = model.param_count() as u64;
            if actual != params {
                return Err(PersistError::Header(format!(
                    "parameter-count checksum mismatch: header says {params}, model has {actual} \
                     (stale or truncated file?)"
                )));
            }
        }
        Ok(model)
    }
}

impl GeniusRouteModel {
    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(self, path.as_ref())
    }

    /// Loads a model saved with [`GeniusRouteModel::save`].
    ///
    /// # Errors
    ///
    /// Filesystem or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path.as_ref())
    }
}

impl Dataset {
    /// Saves the dataset as JSON.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(self, path.as_ref())
    }

    /// Loads a dataset saved with [`Dataset::save`].
    ///
    /// # Errors
    ///
    /// Filesystem or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::GnnConfig;
    use crate::hetero::HeteroGraph;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("analogfold-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn gnn_roundtrip_preserves_predictions() {
        let circuit = benchmarks::ota1();
        let placement = place(&circuit, PlacementVariant::A);
        let graph = HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 2);
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        let n = graph.guided_ap_indices().len() * 3;
        let c = vec![1.2; n];
        let before = gnn.predict(&graph, &c);

        let path = tmp("gnn.json");
        gnn.save(&path).unwrap();
        let loaded = ThreeDGnn::load(&path).unwrap();
        let after = loaded.predict(&graph, &c);
        std::fs::remove_file(&path).ok();

        for (a, b) in before.iter().zip(after) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    fn tiny_gnn() -> ThreeDGnn {
        ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        })
    }

    #[test]
    fn saved_model_carries_validated_header() {
        let gnn = tiny_gnn();
        let path = tmp("gnn-header.json");
        gnn.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let tree = serde_json::value_from_str(&text).unwrap();
        assert_eq!(
            tree.get("format"),
            Some(&serde::Value::Str(GNN_FORMAT.to_string()))
        );
        // v2 headers carry the content hash of the model body.
        match tree.get("content_hash") {
            Some(serde::Value::Str(hex)) => {
                let expected = af_cache::ContentHash::from_hex(hex).expect("well-formed hex");
                let mut h = af_cache::ContentHasher::new();
                crate::cache::hash_value(&mut h, tree.get("model").unwrap());
                assert_eq!(h.finish(), expected, "header hash matches the body");
            }
            other => panic!("missing content_hash header: {other:?}"),
        }
        assert!(ThreeDGnn::load(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_params_envelope_still_loads() {
        let gnn = tiny_gnn();
        let path = tmp("gnn-v1.json");
        // Hand-build the superseded v1 envelope (parameter-count checksum).
        struct V1<'a>(&'a ThreeDGnn);
        impl Serialize for V1<'_> {
            fn to_value(&self) -> Value {
                Value::Map(vec![
                    ("format".to_string(), Value::Str(GNN_FORMAT.to_string())),
                    ("version".to_string(), Value::UInt(GNN_FORMAT_VERSION_V1)),
                    (
                        "params".to_string(),
                        Value::UInt(self.0.param_count() as u64),
                    ),
                    ("model".to_string(), self.0.to_value()),
                ])
            }
        }
        std::fs::write(&path, serde_json::to_string(&V1(&gnn)).unwrap()).unwrap();
        let loaded = ThreeDGnn::load(&path).unwrap();
        assert_eq!(loaded.param_count(), gnn.param_count());

        // A v1 file with a wrong parameter count is still rejected.
        let text = std::fs::read_to_string(&path).unwrap();
        let actual = format!("\"params\":{}", gnn.param_count());
        assert!(text.contains(&actual));
        std::fs::write(&path, text.replace(&actual, "\"params\":1")).unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_headerless_model_still_loads() {
        let gnn = tiny_gnn();
        let path = tmp("gnn-legacy.json");
        // A pre-header file is the raw serialized model.
        std::fs::write(&path, serde_json::to_string(&gnn).unwrap()).unwrap();
        let loaded = ThreeDGnn::load(&path).unwrap();
        assert_eq!(loaded.param_count(), gnn.param_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_headers_are_rejected() {
        let gnn = tiny_gnn();
        let path = tmp("gnn-tamper.json");
        gnn.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // Wrong content hash → mismatch (the body no longer matches).
        let hex_start =
            text.find("\"content_hash\":\"").expect("header present") + "\"content_hash\":\"".len();
        let mut tampered = text.clone();
        tampered.replace_range(hex_start..hex_start + 32, &"0".repeat(32));
        std::fs::write(&path, &tampered).unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Header(_)), "{err}");
        assert!(err.to_string().contains("content-hash mismatch"));

        // A tampered *body* is also caught by the hash, not just headers.
        std::fs::write(&path, text.replacen("0.0", "0.5", 1)).unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        assert!(err.to_string().contains("content-hash mismatch"), "{err}");

        // Future version → rejected, not misread.
        std::fs::write(&path, text.replace("\"version\":2", "\"version\":999")).unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));

        // Wrong format tag → rejected.
        std::fs::write(&path, text.replace(GNN_FORMAT, "somebody-elses-format")).unwrap();
        assert!(matches!(
            ThreeDGnn::load(&path).unwrap_err(),
            PersistError::Header(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_shard_is_counted_and_warned() {
        let dir = tmp("shards-corrupt-obs");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);
        store.save_shard(0, &vec![1u32, 2]).unwrap();
        std::fs::write(store.shard_path(0), "{definitely not json").unwrap();

        let sink = std::sync::Arc::new(af_obs::MemorySink::new());
        let guard = af_obs::install(sink.clone());
        assert!(store.load_shard::<Vec<u32>>(0).unwrap().is_none());
        drop(guard);

        let events = sink.events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                af_obs::Event::Counter { name, value: 1, .. } if name == "persist.shard_corrupt"
            )),
            "corrupt-shard counter flushed"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                af_obs::Event::Log { level, message, .. }
                    if level == "warn" && message.contains("corrupt shard")
            )),
            "warning event emitted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = ThreeDGnn::load("/nonexistent/analogfold.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Json(_)));
    }

    #[test]
    fn shard_store_roundtrip_and_resume_semantics() {
        let dir = tmp("shards");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);

        // Missing shard → None (caller regenerates).
        assert!(store.load_shard::<Vec<u32>>(0).unwrap().is_none());

        store.save_shard(0, &vec![1u32, 2, 3]).unwrap();
        store.save_shard(2, &vec![7u32]).unwrap();
        assert_eq!(
            store.load_shard::<Vec<u32>>(0).unwrap().unwrap(),
            vec![1, 2, 3]
        );
        assert!(
            store.load_shard::<Vec<u32>>(1).unwrap().is_none(),
            "gap stays a gap"
        );
        assert_eq!(store.load_shard::<Vec<u32>>(2).unwrap().unwrap(), vec![7]);

        // Corrupt shard → None, not an error.
        std::fs::write(store.shard_path(2), "{truncated").unwrap();
        assert!(store.load_shard::<Vec<u32>>(2).unwrap().is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
