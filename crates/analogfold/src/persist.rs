//! Model persistence: save/load trained models and datasets as JSON.
//!
//! A trained [`ThreeDGnn`] (weights + normalization statistics) and a
//! [`GeniusRouteModel`] are plain serde structures; these helpers give them
//! a stable on-disk workflow so the expensive training step can be amortized
//! across runs — the same way the paper amortizes its 2 000-sample database.

use std::fs;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

use crate::dataset::Dataset;
use crate::genius::GeniusRouteModel;
use crate::gnn::ThreeDGnn;

/// Format tag in the versioned [`ThreeDGnn`] file header.
pub const GNN_FORMAT: &str = "analogfold-gnn";

/// Current [`ThreeDGnn`] file format version.
pub const GNN_FORMAT_VERSION: u64 = 1;

/// Persistence failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Json(serde_json::Error),
    /// Model file header validation failure: wrong format tag, unsupported
    /// version, or a parameter-count checksum mismatch (stale/truncated
    /// file). Loading such a model would produce garbage predictions.
    Header(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
            PersistError::Header(msg) => write!(f, "model header error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

fn save<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, serde_json::to_string(value)?)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    Ok(serde_json::from_str(&fs::read_to_string(path)?)?)
}

/// A directory of numbered JSON shards (`shard-0000.json`, `shard-0001.json`,
/// …) used for resumable checkpointing of long generation jobs: each
/// completed shard is written as soon as it finishes, and a restarted job
/// reloads whatever shards already exist instead of recomputing them.
///
/// Writes go through a temporary file renamed into place, so a job killed
/// mid-write leaves no partial shard behind.
#[derive(Debug, Clone)]
pub struct ShardStore {
    dir: std::path::PathBuf,
}

impl ShardStore {
    /// Store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `index`.
    pub fn shard_path(&self, index: usize) -> std::path::PathBuf {
        self.dir.join(format!("shard-{index:04}.json"))
    }

    /// Writes shard `index` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save_shard<T: Serialize>(&self, index: usize, value: &T) -> Result<(), PersistError> {
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".shard-{index:04}.json.tmp"));
        fs::write(&tmp, serde_json::to_string(value)?)?;
        fs::rename(&tmp, self.shard_path(index))?;
        Ok(())
    }

    /// Loads shard `index` if it exists and parses cleanly; a missing or
    /// corrupt shard returns `Ok(None)` so the caller regenerates it.
    ///
    /// # Errors
    ///
    /// Filesystem failures other than "not found".
    pub fn load_shard<T: DeserializeOwned>(&self, index: usize) -> Result<Option<T>, PersistError> {
        let path = self.shard_path(index);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match serde_json::from_str(&text) {
            Ok(v) => Ok(Some(v)),
            Err(e) => {
                // Regeneration is the right recovery, but it must be
                // visible: a silently re-generated shard can mask a disk
                // or writer bug indefinitely.
                af_obs::counter("persist.shard_corrupt", 1);
                af_obs::warn(&format!(
                    "corrupt shard {}: {e}; regenerating",
                    path.display()
                ));
                Ok(None)
            }
        }
    }
}

/// The versioned save envelope: format tag, version, and the model's
/// scalar parameter count as a cheap integrity checksum against truncated
/// or stale files.
struct GnnEnvelope<'a>(&'a ThreeDGnn);

impl Serialize for GnnEnvelope<'_> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("format".to_string(), Value::Str(GNN_FORMAT.to_string())),
            ("version".to_string(), Value::UInt(GNN_FORMAT_VERSION)),
            (
                "params".to_string(),
                Value::UInt(self.0.param_count() as u64),
            ),
            ("model".to_string(), self.0.to_value()),
        ])
    }
}

fn header_u64(v: &Value, key: &str) -> Result<u64, PersistError> {
    match v.get(key) {
        Some(Value::UInt(u)) => Ok(*u),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        _ => Err(PersistError::Header(format!(
            "missing or non-integer `{key}` field"
        ))),
    }
}

impl ThreeDGnn {
    /// Saves the model (weights + target statistics) as JSON, wrapped in a
    /// versioned header carrying a parameter-count checksum.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(&GnnEnvelope(self), path.as_ref())
    }

    /// Loads a model saved with [`ThreeDGnn::save`].
    ///
    /// Files with the versioned header are validated — format tag, version,
    /// and parameter-count checksum — so a stale or truncated model fails
    /// loudly instead of producing garbage predictions. Legacy headerless
    /// files (raw serialized model) still load.
    ///
    /// # Errors
    ///
    /// Filesystem failures, deserialization failures, or
    /// [`PersistError::Header`] when header validation fails.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let text = fs::read_to_string(path.as_ref())?;
        let tree = serde_json::value_from_str(&text)?;
        let Some(format) = tree.get("format") else {
            // Legacy headerless file: the raw serialized model.
            return serde::Deserialize::from_value(&tree).map_err(|e| PersistError::Json(e.into()));
        };
        if format != &Value::Str(GNN_FORMAT.to_string()) {
            return Err(PersistError::Header(format!(
                "format tag {format:?} is not `{GNN_FORMAT}`"
            )));
        }
        let version = header_u64(&tree, "version")?;
        if version != GNN_FORMAT_VERSION {
            return Err(PersistError::Header(format!(
                "unsupported version {version} (this build reads {GNN_FORMAT_VERSION})"
            )));
        }
        let params = header_u64(&tree, "params")?;
        let model_tree = tree
            .get("model")
            .ok_or_else(|| PersistError::Header("missing `model` field".to_string()))?;
        let model: ThreeDGnn =
            serde::Deserialize::from_value(model_tree).map_err(|e| PersistError::Json(e.into()))?;
        let actual = model.param_count() as u64;
        if actual != params {
            return Err(PersistError::Header(format!(
                "parameter-count checksum mismatch: header says {params}, model has {actual} \
                 (stale or truncated file?)"
            )));
        }
        Ok(model)
    }
}

impl GeniusRouteModel {
    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(self, path.as_ref())
    }

    /// Loads a model saved with [`GeniusRouteModel::save`].
    ///
    /// # Errors
    ///
    /// Filesystem or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path.as_ref())
    }
}

impl Dataset {
    /// Saves the dataset as JSON.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(self, path.as_ref())
    }

    /// Loads a dataset saved with [`Dataset::save`].
    ///
    /// # Errors
    ///
    /// Filesystem or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::GnnConfig;
    use crate::hetero::HeteroGraph;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("analogfold-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn gnn_roundtrip_preserves_predictions() {
        let circuit = benchmarks::ota1();
        let placement = place(&circuit, PlacementVariant::A);
        let graph = HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 2);
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        let n = graph.guided_ap_indices().len() * 3;
        let c = vec![1.2; n];
        let before = gnn.predict(&graph, &c);

        let path = tmp("gnn.json");
        gnn.save(&path).unwrap();
        let loaded = ThreeDGnn::load(&path).unwrap();
        let after = loaded.predict(&graph, &c);
        std::fs::remove_file(&path).ok();

        for (a, b) in before.iter().zip(after) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    fn tiny_gnn() -> ThreeDGnn {
        ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        })
    }

    #[test]
    fn saved_model_carries_validated_header() {
        let gnn = tiny_gnn();
        let path = tmp("gnn-header.json");
        gnn.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let tree = serde_json::value_from_str(&text).unwrap();
        assert_eq!(
            tree.get("format"),
            Some(&serde::Value::Str(GNN_FORMAT.to_string()))
        );
        // The parser may surface an unsigned literal as Int or UInt;
        // compare the value, not the variant.
        match tree.get("params") {
            Some(serde::Value::UInt(n)) => assert_eq!(*n, gnn.param_count() as u64),
            Some(serde::Value::Int(n)) => assert_eq!(*n, gnn.param_count() as i64),
            other => panic!("missing params header: {other:?}"),
        }
        assert!(ThreeDGnn::load(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_headerless_model_still_loads() {
        let gnn = tiny_gnn();
        let path = tmp("gnn-legacy.json");
        // A pre-header file is the raw serialized model.
        std::fs::write(&path, serde_json::to_string(&gnn).unwrap()).unwrap();
        let loaded = ThreeDGnn::load(&path).unwrap();
        assert_eq!(loaded.param_count(), gnn.param_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_headers_are_rejected() {
        let gnn = tiny_gnn();
        let path = tmp("gnn-tamper.json");
        gnn.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // Wrong parameter count → checksum mismatch.
        let actual = format!("\"params\":{}", gnn.param_count());
        assert!(text.contains(&actual));
        std::fs::write(&path, text.replace(&actual, "\"params\":1")).unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Header(_)), "{err}");
        assert!(err.to_string().contains("checksum mismatch"));

        // Future version → rejected, not misread.
        std::fs::write(&path, text.replace("\"version\":1", "\"version\":999")).unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));

        // Wrong format tag → rejected.
        std::fs::write(&path, text.replace(GNN_FORMAT, "somebody-elses-format")).unwrap();
        assert!(matches!(
            ThreeDGnn::load(&path).unwrap_err(),
            PersistError::Header(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_shard_is_counted_and_warned() {
        let dir = tmp("shards-corrupt-obs");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);
        store.save_shard(0, &vec![1u32, 2]).unwrap();
        std::fs::write(store.shard_path(0), "{definitely not json").unwrap();

        let sink = std::sync::Arc::new(af_obs::MemorySink::new());
        let guard = af_obs::install(sink.clone());
        assert!(store.load_shard::<Vec<u32>>(0).unwrap().is_none());
        drop(guard);

        let events = sink.events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                af_obs::Event::Counter { name, value: 1, .. } if name == "persist.shard_corrupt"
            )),
            "corrupt-shard counter flushed"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                af_obs::Event::Log { level, message, .. }
                    if level == "warn" && message.contains("corrupt shard")
            )),
            "warning event emitted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = ThreeDGnn::load("/nonexistent/analogfold.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Json(_)));
    }

    #[test]
    fn shard_store_roundtrip_and_resume_semantics() {
        let dir = tmp("shards");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);

        // Missing shard → None (caller regenerates).
        assert!(store.load_shard::<Vec<u32>>(0).unwrap().is_none());

        store.save_shard(0, &vec![1u32, 2, 3]).unwrap();
        store.save_shard(2, &vec![7u32]).unwrap();
        assert_eq!(
            store.load_shard::<Vec<u32>>(0).unwrap().unwrap(),
            vec![1, 2, 3]
        );
        assert!(
            store.load_shard::<Vec<u32>>(1).unwrap().is_none(),
            "gap stays a gap"
        );
        assert_eq!(store.load_shard::<Vec<u32>>(2).unwrap().unwrap(), vec![7]);

        // Corrupt shard → None, not an error.
        std::fs::write(store.shard_path(2), "{truncated").unwrap();
        assert!(store.load_shard::<Vec<u32>>(2).unwrap().is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
