//! Model persistence: save/load trained models and datasets as JSON.
//!
//! A trained [`ThreeDGnn`] (weights + normalization statistics) and a
//! [`GeniusRouteModel`] are plain serde structures; these helpers give them
//! a stable on-disk workflow so the expensive training step can be amortized
//! across runs — the same way the paper amortizes its 2 000-sample database.

use std::fs;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::dataset::Dataset;
use crate::genius::GeniusRouteModel;
use crate::gnn::ThreeDGnn;

/// Persistence failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

fn save<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, serde_json::to_string(value)?)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    Ok(serde_json::from_str(&fs::read_to_string(path)?)?)
}

/// A directory of numbered JSON shards (`shard-0000.json`, `shard-0001.json`,
/// …) used for resumable checkpointing of long generation jobs: each
/// completed shard is written as soon as it finishes, and a restarted job
/// reloads whatever shards already exist instead of recomputing them.
///
/// Writes go through a temporary file renamed into place, so a job killed
/// mid-write leaves no partial shard behind.
#[derive(Debug, Clone)]
pub struct ShardStore {
    dir: std::path::PathBuf,
}

impl ShardStore {
    /// Store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `index`.
    pub fn shard_path(&self, index: usize) -> std::path::PathBuf {
        self.dir.join(format!("shard-{index:04}.json"))
    }

    /// Writes shard `index` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save_shard<T: Serialize>(&self, index: usize, value: &T) -> Result<(), PersistError> {
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".shard-{index:04}.json.tmp"));
        fs::write(&tmp, serde_json::to_string(value)?)?;
        fs::rename(&tmp, self.shard_path(index))?;
        Ok(())
    }

    /// Loads shard `index` if it exists and parses cleanly; a missing or
    /// corrupt shard returns `Ok(None)` so the caller regenerates it.
    ///
    /// # Errors
    ///
    /// Filesystem failures other than "not found".
    pub fn load_shard<T: DeserializeOwned>(&self, index: usize) -> Result<Option<T>, PersistError> {
        let path = self.shard_path(index);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(serde_json::from_str(&text).ok())
    }
}

impl ThreeDGnn {
    /// Saves the model (weights + target statistics) as JSON.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(self, path.as_ref())
    }

    /// Loads a model saved with [`ThreeDGnn::save`].
    ///
    /// # Errors
    ///
    /// Filesystem or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path.as_ref())
    }
}

impl GeniusRouteModel {
    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(self, path.as_ref())
    }

    /// Loads a model saved with [`GeniusRouteModel::save`].
    ///
    /// # Errors
    ///
    /// Filesystem or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path.as_ref())
    }
}

impl Dataset {
    /// Saves the dataset as JSON.
    ///
    /// # Errors
    ///
    /// Filesystem or serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save(self, path.as_ref())
    }

    /// Loads a dataset saved with [`Dataset::save`].
    ///
    /// # Errors
    ///
    /// Filesystem or deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::GnnConfig;
    use crate::hetero::HeteroGraph;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("analogfold-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn gnn_roundtrip_preserves_predictions() {
        let circuit = benchmarks::ota1();
        let placement = place(&circuit, PlacementVariant::A);
        let graph = HeteroGraph::build(&circuit, &placement, &Technology::nm40(), 2);
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        let n = graph.guided_ap_indices().len() * 3;
        let c = vec![1.2; n];
        let before = gnn.predict(&graph, &c);

        let path = tmp("gnn.json");
        gnn.save(&path).unwrap();
        let loaded = ThreeDGnn::load(&path).unwrap();
        let after = loaded.predict(&graph, &c);
        std::fs::remove_file(&path).ok();

        for (a, b) in before.iter().zip(after) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn load_missing_file_errors() {
        let err = ThreeDGnn::load("/nonexistent/analogfold.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = ThreeDGnn::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Json(_)));
    }

    #[test]
    fn shard_store_roundtrip_and_resume_semantics() {
        let dir = tmp("shards");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardStore::new(&dir);

        // Missing shard → None (caller regenerates).
        assert!(store.load_shard::<Vec<u32>>(0).unwrap().is_none());

        store.save_shard(0, &vec![1u32, 2, 3]).unwrap();
        store.save_shard(2, &vec![7u32]).unwrap();
        assert_eq!(
            store.load_shard::<Vec<u32>>(0).unwrap().unwrap(),
            vec![1, 2, 3]
        );
        assert!(
            store.load_shard::<Vec<u32>>(1).unwrap().is_none(),
            "gap stays a gap"
        );
        assert_eq!(store.load_shard::<Vec<u32>>(2).unwrap().unwrap(), vec![7]);

        // Corrupt shard → None, not an error.
        std::fs::write(store.shard_path(2), "{truncated").unwrap();
        assert!(store.load_shard::<Vec<u32>>(2).unwrap().is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
