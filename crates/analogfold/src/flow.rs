//! The end-to-end AnalogFold flow (paper Fig. 1(c) and Fig. 2) with the
//! runtime breakdown of Fig. 5.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use af_extract::{extract, Parasitics};
use af_netlist::Circuit;
use af_place::Placement;
use af_route::{RouteError, RoutedLayout, Router, RouterConfig, RoutingGuidance};
use af_sim::{simulate, Performance, SimConfig, SimError};
use af_tech::Technology;

use crate::dataset::{generate_dataset, guidance_field, DatasetConfig, DatasetError};
use crate::error::Error;
use crate::gnn::{GnnConfig, ThreeDGnn, TrainReport};
use crate::hetero::HeteroGraph;
use crate::potential::{relax_seeded, Potential, RelaxConfig};

/// A shareable observability sink carried inside [`FlowConfig`].
///
/// Wraps an [`af_obs::Sink`] so the config stays `Clone` + `Debug`. When
/// set, [`AnalogFoldFlow::run`] installs the sink for the duration of the
/// run (see [`af_obs::install`]) and every stage, restart, and router
/// iteration records into it.
#[derive(Clone)]
pub struct ObsSinkHandle(pub Arc<dyn af_obs::Sink>);

impl std::fmt::Debug for ObsSinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ObsSinkHandle(..)")
    }
}

/// Configuration of the full flow.
///
/// Prefer [`FlowConfig::builder`], which validates at `build()` time; the
/// struct itself stays public (and fully field-constructible) for
/// backwards compatibility.
#[derive(Debug, Clone, Default)]
pub struct FlowConfig {
    /// Technology (defaults to the 40 nm-class stack).
    pub tech: Technology,
    /// Cross-net kNN edges per access point in the heterogeneous graph.
    pub graph_knn: usize,
    /// Dataset generation settings.
    pub dataset: DatasetConfig,
    /// 3DGNN settings.
    pub gnn: GnnConfig,
    /// Potential-relaxation settings.
    pub relax: RelaxConfig,
    /// Router settings for the final guided routing.
    pub router: RouterConfig,
    /// Simulator settings for the final evaluation.
    pub sim: SimConfig,
    /// Wall-clock seconds spent on placement (reported in the Fig. 5
    /// breakdown; the flow itself takes the placement as input).
    pub placement_s: f64,
    /// Observability sink; when set, [`AnalogFoldFlow::run`] records spans
    /// and metrics into it. `None` (the default) keeps recording disabled.
    pub obs: Option<ObsSinkHandle>,
}

impl FlowConfig {
    /// Fluent builder with `build()`-time validation.
    #[must_use]
    pub fn builder() -> FlowConfigBuilder {
        FlowConfigBuilder::default()
    }

    /// Sets the worker-thread count on every parallel stage of the flow
    /// (dataset generation, relaxation restarts, candidate evaluation).
    /// `0` means auto (`AFRT_THREADS`, then hardware parallelism).
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.dataset.threads = n;
        self.relax.threads = n;
        self
    }

    /// Sets the memoization budget (MiB) on every caching tier of the flow
    /// (relaxation evaluation memo, dataset guidance→route cache). `0`
    /// disables both; results are bit-identical either way.
    #[must_use]
    pub fn with_cache_mb(mut self, mb: u64) -> Self {
        self.dataset.cache_mb = mb;
        self.relax.cache_mb = mb;
        self
    }
}

/// Fluent builder for [`FlowConfig`]; created by [`FlowConfig::builder`].
///
/// ```
/// use analogfold::FlowConfig;
/// let cfg = FlowConfig::builder()
///     .samples(40)
///     .epochs(20)
///     .threads(8)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.dataset.samples, 40);
/// assert_eq!(cfg.relax.threads, 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowConfigBuilder {
    cfg: FlowConfig,
}

impl FlowConfigBuilder {
    /// Technology stack (defaults to the 40 nm-class stack).
    #[must_use]
    pub fn tech(mut self, tech: Technology) -> Self {
        self.cfg.tech = tech;
        self
    }

    /// Cross-net kNN edges per access point (`0` resolves to the default 3).
    #[must_use]
    pub fn graph_knn(mut self, k: usize) -> Self {
        self.cfg.graph_knn = k;
        self
    }

    /// Number of training samples to generate.
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.cfg.dataset.samples = n;
        self
    }

    /// GNN training epochs.
    #[must_use]
    pub fn epochs(mut self, n: usize) -> Self {
        self.cfg.gnn.epochs = n;
        self
    }

    /// Relaxation restarts.
    #[must_use]
    pub fn restarts(mut self, n: usize) -> Self {
        self.cfg.relax.restarts = n;
        self
    }

    /// Guidance candidates derived from the relaxation pool.
    #[must_use]
    pub fn n_derive(mut self, n: usize) -> Self {
        self.cfg.relax.n_derive = n;
        self
    }

    /// Root seed, split across the dataset / GNN / relaxation stages with
    /// the same per-stage XOR tweaks the bench harness uses.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.dataset.seed = seed;
        self.cfg.gnn.seed = seed ^ 0x6e6e;
        self.cfg.relax.seed = seed ^ 0x7e1a;
        self
    }

    /// Worker threads for every parallel stage (`0` = auto).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_threads(n);
        self
    }

    /// Memoization budget (MiB) for every caching tier (`0` = off).
    #[must_use]
    pub fn cache_mb(mut self, mb: u64) -> Self {
        self.cfg = self.cfg.with_cache_mb(mb);
        self
    }

    /// Placement wall-clock seconds for the Fig. 5 breakdown.
    #[must_use]
    pub fn placement_s(mut self, s: f64) -> Self {
        self.cfg.placement_s = s;
        self
    }

    /// Replaces the whole dataset section.
    #[must_use]
    pub fn dataset(mut self, dataset: DatasetConfig) -> Self {
        self.cfg.dataset = dataset;
        self
    }

    /// Replaces the whole GNN section.
    #[must_use]
    pub fn gnn(mut self, gnn: GnnConfig) -> Self {
        self.cfg.gnn = gnn;
        self
    }

    /// Replaces the whole relaxation section.
    #[must_use]
    pub fn relax(mut self, relax: RelaxConfig) -> Self {
        self.cfg.relax = relax;
        self
    }

    /// Replaces the router section.
    #[must_use]
    pub fn router(mut self, router: RouterConfig) -> Self {
        self.cfg.router = router;
        self
    }

    /// Sets the router worker-thread count without replacing the rest of
    /// the router section (`0` = auto: `AFRT_THREADS`, then hardware).
    #[must_use]
    pub fn route_threads(mut self, threads: usize) -> Self {
        self.cfg.router.threads = threads;
        self
    }

    /// Replaces the simulator section.
    #[must_use]
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.cfg.sim = sim;
        self
    }

    /// Observability sink installed for the duration of each run.
    #[must_use]
    pub fn obs(mut self, sink: Arc<dyn af_obs::Sink>) -> Self {
        self.cfg.obs = Some(ObsSinkHandle(sink));
        self
    }

    /// Validates and finalizes the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when a section is inconsistent (zero samples,
    /// zero epochs/restarts, `n_derive` exceeding `restarts`, or an
    /// invalid router configuration).
    pub fn build(self) -> Result<FlowConfig, Error> {
        let cfg = self.cfg;
        if cfg.dataset.samples == 0 {
            return Err(Error::config("dataset.samples must be >= 1"));
        }
        if cfg.gnn.epochs == 0 {
            return Err(Error::config("gnn.epochs must be >= 1"));
        }
        if cfg.relax.restarts == 0 {
            return Err(Error::config("relax.restarts must be >= 1"));
        }
        if cfg.relax.n_derive == 0 {
            return Err(Error::config("relax.n_derive must be >= 1"));
        }
        if cfg.relax.n_derive > cfg.relax.restarts {
            return Err(Error::config(format!(
                "relax.n_derive ({}) cannot exceed relax.restarts ({})",
                cfg.relax.n_derive, cfg.relax.restarts
            )));
        }
        cfg.router
            .validate()
            .map_err(|e| Error::config(e.to_string()))?;
        cfg.dataset
            .router
            .validate()
            .map_err(|e| Error::config(format!("dataset.router: {e}")))?;
        Ok(cfg)
    }
}

/// Wall-clock runtime breakdown (Fig. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeBreakdown {
    /// Placement time (seconds) — supplied by the caller.
    pub placement_s: f64,
    /// Heterogeneous-graph / feature construction.
    pub construct_db_s: f64,
    /// Dataset generation + model training.
    pub training_s: f64,
    /// Inference: guidance generation (relaxation included).
    pub guide_gen_s: f64,
    /// Inference: guided detailed routing (+ final evaluation).
    pub guided_route_s: f64,
}

impl RuntimeBreakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.placement_s
            + self.construct_db_s
            + self.training_s
            + self.guide_gen_s
            + self.guided_route_s
    }

    /// Percentages in Fig. 5 order: construct DB, training, guide
    /// generation, guided routing, placement.
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total().max(1e-12);
        [
            100.0 * self.construct_db_s / t,
            100.0 * self.training_s / t,
            100.0 * self.guide_gen_s / t,
            100.0 * self.guided_route_s / t,
            100.0 * self.placement_s / t,
        ]
    }
}

/// Errors of the flow.
///
/// Non-exhaustive, like every error enum in the workspace: match with a
/// wildcard arm. Prefer the unified [`enum@crate::Error`] (which
/// [`AnalogFoldFlow::run`] returns) for new code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// Data generation failed.
    Dataset(String),
    /// Routing failed.
    Route(RouteError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Dataset(e) => write!(f, "dataset generation failed: {e}"),
            FlowError::Route(e) => write!(f, "routing failed: {e}"),
            FlowError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<DatasetError> for FlowError {
    fn from(e: DatasetError) -> Self {
        FlowError::Dataset(e.to_string())
    }
}

/// Result of one AnalogFold run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The derived guidance (flattened, 3 per guided AP). Empty when every
    /// guidance candidate failed to route/simulate and the flow degraded to
    /// the unguided [`magical_route`] fallback (counter
    /// `flow.fallback_unguided`).
    pub guidance: Vec<f64>,
    /// The guided routing solution.
    pub layout: RoutedLayout,
    /// Extracted parasitics of the final layout.
    pub parasitics: Parasitics,
    /// Simulated post-layout performance.
    pub performance: Performance,
    /// Training statistics.
    pub train_report: TrainReport,
    /// Wall-clock breakdown.
    pub breakdown: RuntimeBreakdown,
}

/// The AnalogFold flow driver.
#[derive(Debug, Clone)]
pub struct AnalogFoldFlow {
    cfg: FlowConfig,
}

impl AnalogFoldFlow {
    /// Creates a flow with the given configuration.
    pub fn new(cfg: FlowConfig) -> Self {
        let cfg = FlowConfig {
            graph_knn: if cfg.graph_knn == 0 { 3 } else { cfg.graph_knn },
            ..cfg
        };
        Self { cfg }
    }

    /// Configuration access.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    /// Runs the complete flow on one placed circuit:
    ///
    /// 1. build the heterogeneous graph (construct DB),
    /// 2. generate the training set with the automated engine and train the
    ///    3DGNN (model training),
    /// 3. relax the potential to derive guidance candidates (guide
    ///    generation),
    /// 4. route each candidate, extract, simulate, and keep the best by the
    ///    FoM on normalized metrics (guided routing).
    ///
    /// # Errors
    ///
    /// Any routing or simulation failure is propagated as the unified
    /// [`enum@Error`], carrying the observability span path where it
    /// occurred when recording is enabled.
    pub fn run(&self, circuit: &Circuit, placement: &Placement) -> Result<FlowOutcome, Error> {
        let cfg = &self.cfg;
        // When the config carries a sink, recording is enabled for exactly
        // this run; the guard flushes aggregated metrics on drop.
        let _obs = cfg.obs.as_ref().map(|h| af_obs::install(Arc::clone(&h.0)));
        let _flow = af_obs::span!("flow");
        af_obs::record_span("placement", cfg.placement_s);

        // 1. Construct database (graph + features).
        let (graph, construct_db_s) = af_obs::timed_span("construct_db", || {
            HeteroGraph::build(circuit, placement, &cfg.tech, cfg.graph_knn)
        });

        // 2. Dataset + training.
        let (trained, training_s) = af_obs::timed_span("training", || {
            let dataset = generate_dataset(circuit, placement, &cfg.tech, &graph, &cfg.dataset)?;
            let mut gnn = ThreeDGnn::new(&cfg.gnn);
            let train_report = gnn.train(&graph, &dataset, &cfg.gnn);
            Ok::<_, Error>((dataset, gnn, train_report))
        });
        let (dataset, gnn, train_report) = trained?;

        // Warm-start seeds: the best simulated guidance assignments from the
        // training set (the relaxation pool admits arbitrary initializers).
        let seeds = best_dataset_seeds(&gnn, &dataset, 3);

        self.infer(
            circuit,
            placement,
            graph,
            gnn,
            train_report,
            construct_db_s,
            training_s,
            seeds,
        )
    }

    /// Runs inference only, reusing an already-trained model — the
    /// train-once / guide-many workflow (pair with [`crate::ThreeDGnn::save`]
    /// / [`crate::ThreeDGnn::load`]).
    ///
    /// # Errors
    ///
    /// Any routing or simulation failure is propagated as the unified
    /// [`enum@Error`].
    pub fn run_with_model(
        &self,
        circuit: &Circuit,
        placement: &Placement,
        gnn: &ThreeDGnn,
    ) -> Result<FlowOutcome, Error> {
        let cfg = &self.cfg;
        let _obs = cfg.obs.as_ref().map(|h| af_obs::install(Arc::clone(&h.0)));
        let _flow = af_obs::span!("flow");
        af_obs::record_span("placement", cfg.placement_s);
        let (graph, construct_db_s) = af_obs::timed_span("construct_db", || {
            HeteroGraph::build(circuit, placement, &cfg.tech, cfg.graph_knn)
        });
        let empty_report = TrainReport {
            epoch_losses: Vec::new(),
            final_loss: f64::NAN,
        };
        self.infer(
            circuit,
            placement,
            graph,
            gnn.clone(),
            empty_report,
            construct_db_s,
            0.0,
            Vec::new(),
        )
    }

    /// Shared inference tail: relax the potential, route the candidates,
    /// keep the best by simulated FoM.
    #[allow(clippy::too_many_arguments)]
    fn infer(
        &self,
        circuit: &Circuit,
        placement: &Placement,
        graph: HeteroGraph,
        gnn: ThreeDGnn,
        train_report: TrainReport,
        construct_db_s: f64,
        training_s: f64,
        seeds: Vec<Vec<f64>>,
    ) -> Result<FlowOutcome, Error> {
        let cfg = &self.cfg;

        // Guidance generation by potential relaxation. The tier-A memo
        // turns exact-duplicate surrogate evaluations (pool re-seeds,
        // repeated relax calls) into lookups without changing a bit of the
        // output.
        let ((candidates, potential), guide_gen_s) = af_obs::timed_span("guide_gen", || {
            let mut potential = Potential::new(&gnn, &graph);
            potential.enable_memo(cfg.relax.cache_mb);
            let candidates = relax_seeded(&potential, &cfg.relax, &seeds);
            (candidates, potential)
        });

        // Guided routing: evaluate the derived candidates concurrently,
        // keep the best (ties break toward the lower-potential candidate,
        // i.e. the lower index, matching the old sequential scan).
        let stats = gnn.stats().clone();
        let weights = potential.weights;
        let runtime = afrt::Runtime::with_threads(cfg.relax.threads);
        let router =
            Router::new(cfg.router.clone()).map_err(|e| Error::from(RouteError::from(e)))?;
        let (evaluated, guided_route_s) = af_obs::timed_span("guided_route", || {
            runtime
                .par_map(&candidates, |i, cand| {
                    let _s = af_obs::span!("candidate", i);
                    af_fault::fail!(
                        "flow.candidate",
                        key = i as u64,
                        Error::config(af_fault::injected("flow.candidate"))
                    );
                    let field = RoutingGuidance::NonUniform(guidance_field(&graph, &cand.guidance));
                    let layout = router
                        .route(circuit, placement, &cfg.tech, &field)
                        .map_err(Error::from)?;
                    let parasitics = extract(circuit, &cfg.tech, &layout);
                    let perf =
                        simulate(circuit, Some(&parasitics), &cfg.sim).map_err(Error::from)?;
                    let normalized = stats.normalize(&perf.as_array());
                    let score: f64 = normalized
                        .iter()
                        .zip(weights.iter())
                        .map(|(y, w)| y * w)
                        .sum();
                    Ok::<_, Error>((score, cand.guidance.clone(), layout, parasitics, perf))
                })
                .unwrap_or_else(|e| panic!("candidate evaluation failed: {e}"))
        });
        // Graceful degradation: a candidate that fails to route or simulate
        // is logged and skipped — the remaining candidates still compete.
        // Only when *every* candidate fails does the flow fall back to the
        // unguided baseline, which still yields a complete (if unguided)
        // layout instead of aborting a run that may have hours of training
        // behind it.
        let mut best: Option<(f64, Vec<f64>, RoutedLayout, Parasitics, Performance)> = None;
        for (i, result) in evaluated.into_iter().enumerate() {
            match result {
                Ok((score, guidance, layout, parasitics, perf)) => {
                    let better = best.as_ref().map(|(s, ..)| score < *s).unwrap_or(true);
                    if better {
                        best = Some((score, guidance, layout, parasitics, perf));
                    }
                }
                Err(e) => {
                    af_obs::counter("flow.candidate_failed", 1);
                    af_obs::warn(&format!("guidance candidate {i} failed ({e}); skipping"));
                }
            }
        }
        let (_, guidance, layout, parasitics, performance) = match best {
            Some(found) => found,
            None => {
                af_obs::counter("flow.fallback_unguided", 1);
                af_obs::warn("all guidance candidates failed; falling back to unguided routing");
                let (layout, parasitics, performance) =
                    magical_route(circuit, placement, &cfg.tech, &cfg.router, &cfg.sim)
                        .map_err(Error::from)?;
                (f64::NAN, Vec::new(), layout, parasitics, performance)
            }
        };

        Ok(FlowOutcome {
            guidance,
            layout,
            parasitics,
            performance,
            train_report,
            breakdown: RuntimeBreakdown {
                placement_s: cfg.placement_s,
                construct_db_s,
                training_s,
                guide_gen_s,
                guided_route_s,
            },
        })
    }
}

/// The `k` dataset guidance vectors with the best simulated weighted FoM
/// (clamped into the relaxation's feasible region).
fn best_dataset_seeds(gnn: &ThreeDGnn, dataset: &crate::Dataset, k: usize) -> Vec<Vec<f64>> {
    let stats = gnn.stats();
    let weights = [1.0, -1.0, -1.0, -1.0, 1.0];
    let (lo, hi) = gnn.guidance_bounds();
    let eps = (hi - lo) * 1e-3;
    let mut scored: Vec<(f64, &crate::Sample)> = dataset
        .samples
        .iter()
        .map(|s| {
            let z = stats.normalize(&s.metrics());
            let score: f64 = z.iter().zip(weights.iter()).map(|(y, w)| y * w).sum();
            (score, s)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    scored
        .into_iter()
        .take(k)
        .map(|(_, s)| {
            s.guidance
                .iter()
                .map(|&c| c.clamp(lo + eps, hi - eps))
                .collect()
        })
        .collect()
}

/// The MagicalRoute baseline: unguided constraint-aware iterative routing,
/// extracted and simulated with the same settings.
///
/// # Errors
///
/// Propagates routing/simulation failures.
pub fn magical_route(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    router: &RouterConfig,
    sim: &SimConfig,
) -> Result<(RoutedLayout, Parasitics, Performance), FlowError> {
    let layout = Router::new(router.clone())
        .map_err(|e| FlowError::Route(RouteError::from(e)))?
        .route(circuit, placement, tech, &RoutingGuidance::None)
        .map_err(FlowError::Route)?;
    let parasitics = extract(circuit, tech, &layout);
    let performance = simulate(circuit, Some(&parasitics), sim).map_err(FlowError::Sim)?;
    Ok((layout, parasitics, performance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let b = RuntimeBreakdown {
            placement_s: 1.0,
            construct_db_s: 0.5,
            training_s: 6.0,
            guide_gen_s: 0.3,
            guided_route_s: 0.2,
        };
        let p = b.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((b.total() - 8.0).abs() < 1e-12);
        // training dominates, as in Fig. 5
        assert!(p[1] > p[0] && p[1] > p[2] && p[1] > p[3] && p[1] > p[4]);
    }

    #[test]
    fn magical_route_baseline_runs() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let (layout, px, perf) =
            magical_route(&c, &p, &t, &RouterConfig::default(), &SimConfig::default()).unwrap();
        assert!(layout.total_wirelength() > 0);
        assert!(!px.couplings().is_empty());
        assert!(perf.dc_gain_db.is_finite());
    }

    #[test]
    fn run_with_model_reuses_training() {
        use crate::dataset::generate_dataset;
        use af_tech::Technology;

        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let tech = Technology::nm40();
        let graph = HeteroGraph::build(&c, &p, &tech, 3);
        let gnn_cfg = GnnConfig {
            epochs: 3,
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        };
        let dataset = generate_dataset(
            &c,
            &p,
            &tech,
            &graph,
            &DatasetConfig {
                samples: 4,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        let mut gnn = ThreeDGnn::new(&gnn_cfg);
        gnn.train(&graph, &dataset, &gnn_cfg);

        let flow = AnalogFoldFlow::new(FlowConfig {
            relax: RelaxConfig {
                restarts: 2,
                n_derive: 1,
                lbfgs_iters: 5,
                ..RelaxConfig::default()
            },
            ..FlowConfig::default()
        });
        let outcome = flow.run_with_model(&c, &p, &gnn).unwrap();
        assert!(outcome.breakdown.training_s == 0.0, "no training time");
        assert!(outcome.train_report.epoch_losses.is_empty());
        assert!(outcome.performance.dc_gain_db.is_finite());
    }

    #[test]
    fn tiny_flow_end_to_end() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let cfg = FlowConfig {
            dataset: DatasetConfig {
                samples: 6,
                ..DatasetConfig::default()
            },
            gnn: GnnConfig {
                epochs: 4,
                hidden: 8,
                layers: 1,
                ..GnnConfig::default()
            },
            relax: RelaxConfig {
                restarts: 3,
                n_derive: 1,
                lbfgs_iters: 8,
                ..RelaxConfig::default()
            },
            ..FlowConfig::default()
        };
        let outcome = AnalogFoldFlow::new(cfg).run(&c, &p).unwrap();
        assert!(!outcome.guidance.is_empty());
        assert!(outcome.layout.total_wirelength() > 0);
        assert!(outcome.performance.dc_gain_db.is_finite());
        assert!(outcome.breakdown.training_s > 0.0);
        assert!(outcome.breakdown.guide_gen_s > 0.0);
    }
}
