//! Heterogeneous routing graph construction (paper §4.1, Fig. 3).
//!
//! `G_H = <V_AP, V_M, E_PP, E_MM, E_MP>`:
//!
//! * `V_AP` — pin access points (from [`af_route::PinAccessMap`]);
//! * `V_M` — placed modules (devices);
//! * `E_PP` — access points that may be joined by a wire: same-net pairs
//!   (potential segments) plus spatial nearest neighbors across nets (the
//!   routing-resource competition the paper highlights);
//! * `E_MM` — modules connected by a net (logical connectivity);
//! * `E_MP` — each module to its own access points, bridging physical and
//!   logical message passing.

use af_geom::Point3;
use af_netlist::{Circuit, DeviceKind, NetId, NetType, PinId};
use af_place::{PinSource, Placement};
use af_route::{PinAccessMap, RoutingGrid};
use af_tech::Technology;

/// Number of scalar features per access-point node.
pub const AP_FEATURES: usize = 12;
/// Number of scalar features per module node.
pub const MODULE_FEATURES: usize = 10;

/// One access-point node of the graph.
#[derive(Debug, Clone)]
pub struct ApNode {
    /// Net the access point belongs to.
    pub net: NetId,
    /// dbu location (z = layer index).
    pub pos: Point3,
    /// Whether this AP's net receives routing guidance (`N*`).
    pub guided: bool,
    /// Input feature vector (normalized).
    pub features: [f64; AP_FEATURES],
    /// Originating placed-pin index.
    pub pin_index: usize,
}

/// One module node of the graph.
#[derive(Debug, Clone)]
pub struct ModuleNode {
    /// dbu center of the module (z = 0).
    pub pos: Point3,
    /// Input feature vector (normalized).
    pub features: [f64; MODULE_FEATURES],
}

/// Edge types of the heterogeneous graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Access point ↔ access point (distance-augmented).
    PinPin,
    /// Module → access point and access point → module (distance-augmented).
    ModulePin,
    /// Module ↔ module (logical, no distance term).
    ModuleModule,
}

/// The assembled heterogeneous graph.
///
/// Edges are stored directed (messages flow `src → dst`); undirected
/// relations are stored once per direction.
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    /// Access-point nodes.
    pub aps: Vec<ApNode>,
    /// Module nodes.
    pub modules: Vec<ModuleNode>,
    /// `E_PP`: (src AP, dst AP).
    pub pp_edges: Vec<(usize, usize)>,
    /// `E_MP`: (module, AP) — expanded in both directions by the GNN.
    pub mp_edges: Vec<(usize, usize)>,
    /// `E_MM`: (src module, dst module).
    pub mm_edges: Vec<(usize, usize)>,
    /// Die half-perimeter used for normalization, dbu.
    pub scale: f64,
    /// dbu equivalent of one layer hop.
    pub layer_pitch: i64,
}

impl HeteroGraph {
    /// Builds the graph for one placement.
    ///
    /// `knn` is the number of cross-net spatial neighbor edges added per
    /// access point (resource competition); same-net access points are fully
    /// connected (potential wires).
    pub fn build(circuit: &Circuit, placement: &Placement, tech: &Technology, knn: usize) -> Self {
        // Extract access points exactly the way the router will.
        let mut grid = RoutingGrid::new(circuit, placement, tech, 2);
        let access = PinAccessMap::extract(circuit, placement, &mut grid);

        let die = placement.die();
        let scale = die.half_perimeter() as f64;
        let guided = circuit.guided_nets();

        // AP nodes.
        let mut aps = Vec::with_capacity(access.len());
        for ap in access.all() {
            let net = circuit.net(ap.net);
            let ty = net.ty;
            let one_hot = |t: NetType| if ty == t { 1.0 } else { 0.0 };
            let pin = &placement.pins()[ap.pin_index];
            let is_pad = matches!(pin.source, PinSource::Pad);
            let features = [
                (ap.dbu.x - die.lo().x) as f64 / scale,
                (ap.dbu.y - die.lo().y) as f64 / scale,
                f64::from(ap.dbu.z) / f64::from(tech.num_layers()),
                net.weight / 4.0,
                net.degree() as f64 / 8.0,
                one_hot(NetType::Signal),
                one_hot(NetType::Input),
                one_hot(NetType::Output),
                one_hot(NetType::Sensitive),
                one_hot(NetType::Bias),
                if ty.is_supply() { 1.0 } else { 0.0 },
                if is_pad { 1.0 } else { 0.0 },
            ];
            aps.push(ApNode {
                net: ap.net,
                pos: ap.dbu,
                guided: guided.contains(&ap.net),
                features,
                pin_index: ap.pin_index,
            });
        }

        // Module nodes.
        let mut modules = Vec::with_capacity(circuit.devices().len());
        for (i, dev) in circuit.devices().iter().enumerate() {
            let r = placement.device_rects()[i];
            let c = r.center();
            let kind_hot = |k: DeviceKind| if dev.kind == k { 1.0 } else { 0.0 };
            let pins = circuit
                .device_pins(af_netlist::DeviceId::new(i as u32))
                .count();
            let features = [
                (c.x - die.lo().x) as f64 / scale,
                (c.y - die.lo().y) as f64 / scale,
                r.width() as f64 / scale,
                r.height() as f64 / scale,
                kind_hot(DeviceKind::Pmos),
                kind_hot(DeviceKind::Nmos),
                kind_hot(DeviceKind::Capacitor),
                kind_hot(DeviceKind::Resistor),
                kind_hot(DeviceKind::Dummy),
                pins as f64 / 4.0,
            ];
            modules.push(ModuleNode {
                pos: Point3::new(c.x, c.y, 0),
                features,
            });
        }

        // E_PP: same-net pairs.
        let mut pp_edges = Vec::new();
        let mut by_net: Vec<Vec<usize>> = vec![Vec::new(); circuit.nets().len()];
        for (i, ap) in aps.iter().enumerate() {
            by_net[ap.net.index()].push(i);
        }
        for nodes in &by_net {
            for (a, &i) in nodes.iter().enumerate() {
                for &j in nodes.iter().skip(a + 1) {
                    pp_edges.push((i, j));
                    pp_edges.push((j, i));
                }
            }
        }
        // E_PP: cross-net k nearest neighbors (resource competition).
        let lp = tech.layer_pitch();
        for (i, ap) in aps.iter().enumerate() {
            let mut dists: Vec<(i64, usize)> = aps
                .iter()
                .enumerate()
                .filter(|(j, other)| *j != i && other.net != ap.net)
                .map(|(j, other)| (ap.pos.manhattan_3d(other.pos, lp), j))
                .collect();
            dists.sort_unstable();
            for &(_, j) in dists.iter().take(knn) {
                pp_edges.push((j, i)); // competition flows into i
            }
        }
        pp_edges.sort_unstable();
        pp_edges.dedup();

        // E_MP: module to its own APs (device pins only; pads have no module).
        let mut mp_edges = Vec::new();
        for (ai, ap) in aps.iter().enumerate() {
            let pin = &placement.pins()[ap.pin_index];
            if let PinSource::Device(pid) = pin.source {
                let dev = circuit.pin(PinId::new(pid.index() as u32)).device;
                mp_edges.push((dev.index(), ai));
            }
        }

        // E_MM: modules sharing a net.
        let mut mm_edges = Vec::new();
        for net in circuit.nets() {
            let devs: Vec<usize> = {
                let mut d: Vec<usize> = net
                    .pins
                    .iter()
                    .map(|&pid| circuit.pin(pid).device.index())
                    .collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            for (a, &i) in devs.iter().enumerate() {
                for &j in devs.iter().skip(a + 1) {
                    mm_edges.push((i, j));
                    mm_edges.push((j, i));
                }
            }
        }
        mm_edges.sort_unstable();
        mm_edges.dedup();

        Self {
            aps,
            modules,
            pp_edges,
            mp_edges,
            mm_edges,
            scale,
            layer_pitch: lp,
        }
    }

    /// Indices of guided access points (the rows of the guidance matrix that
    /// the relaxation optimizes).
    pub fn guided_ap_indices(&self) -> Vec<usize> {
        self.aps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.guided)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of access points.
    pub fn num_aps(&self) -> usize {
        self.aps.len()
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Per-axis deltas `(|dx|, |dy|, |dz_dbu|)` between an AP and another
    /// node position, in dbu (z expressed via the layer pitch).
    pub fn deltas(&self, ap: usize, other: Point3) -> (f64, f64, f64) {
        let (h, w, z) = self.aps[ap].pos.abs_deltas(other);
        (h as f64, w as f64, (z * self.layer_pitch) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};

    fn graph() -> (Circuit, HeteroGraph) {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let t = Technology::nm40();
        let g = HeteroGraph::build(&c, &p, &t, 3);
        (c, g)
    }

    #[test]
    fn node_counts() {
        let (c, g) = graph();
        assert_eq!(g.num_modules(), c.devices().len());
        // one AP per placed pin
        let p = place(&c, PlacementVariant::A);
        assert_eq!(g.num_aps(), p.pins().len());
    }

    #[test]
    fn features_are_normalized() {
        let (_, g) = graph();
        for ap in &g.aps {
            for f in &ap.features {
                assert!((-0.1..=4.0).contains(f), "ap feature {f}");
            }
        }
        for m in &g.modules {
            for f in &m.features {
                assert!((-0.1..=4.0).contains(f), "module feature {f}");
            }
        }
    }

    #[test]
    fn same_net_aps_connected() {
        let (c, g) = graph();
        let vout = c.net_by_name("vout").unwrap();
        let vout_aps: Vec<usize> = g
            .aps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.net == vout)
            .map(|(i, _)| i)
            .collect();
        assert!(vout_aps.len() >= 2);
        let (a, b) = (vout_aps[0], vout_aps[1]);
        assert!(g.pp_edges.contains(&(a, b)));
        assert!(g.pp_edges.contains(&(b, a)));
    }

    #[test]
    fn cross_net_competition_edges_exist() {
        let (_, g) = graph();
        let cross = g
            .pp_edges
            .iter()
            .filter(|&&(i, j)| g.aps[i].net != g.aps[j].net)
            .count();
        assert!(cross > 0, "expected kNN competition edges");
    }

    #[test]
    fn mp_edges_reference_owning_device() {
        let (c, g) = graph();
        let p = place(&c, PlacementVariant::A);
        for &(m, a) in &g.mp_edges {
            let pin = &p.pins()[g.aps[a].pin_index];
            match pin.source {
                PinSource::Device(pid) => {
                    assert_eq!(c.pin(pid).device.index(), m);
                }
                PinSource::Pad => panic!("pads must not appear in E_MP"),
            }
        }
    }

    #[test]
    fn mm_edges_follow_netlist() {
        let (c, g) = graph();
        let m1 = c.device_by_name("M1").unwrap().index();
        let m2 = c.device_by_name("M2").unwrap().index();
        // M1 and M2 share the tail net
        assert!(g.mm_edges.contains(&(m1, m2)));
        assert!(g.mm_edges.contains(&(m2, m1)));
        // no self loops
        assert!(g.mm_edges.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn guided_indices_match_flags() {
        let (_, g) = graph();
        let guided = g.guided_ap_indices();
        assert!(!guided.is_empty());
        for &i in &guided {
            assert!(g.aps[i].guided);
        }
        // supplies are never guided
        for (i, ap) in g.aps.iter().enumerate() {
            if !ap.guided {
                assert!(!guided.contains(&i));
            }
        }
    }

    #[test]
    fn builds_for_every_benchmark_including_extension() {
        for name in ["OTA1", "OTA2", "OTA3", "OTA4", "OTA5"] {
            let c = benchmarks::by_name(name).unwrap();
            let p = place(&c, PlacementVariant::B);
            let g = HeteroGraph::build(&c, &p, &Technology::nm40(), 3);
            assert!(g.num_aps() > 0, "{name}");
            assert!(!g.pp_edges.is_empty(), "{name}");
            assert!(!g.mm_edges.is_empty(), "{name}");
            assert!(!g.guided_ap_indices().is_empty(), "{name}");
            // every edge index in range
            for &(s, d) in &g.pp_edges {
                assert!(s < g.num_aps() && d < g.num_aps(), "{name}");
            }
            for &(m, a) in &g.mp_edges {
                assert!(m < g.num_modules() && a < g.num_aps(), "{name}");
            }
        }
    }

    #[test]
    fn deltas_match_geometry() {
        let (_, g) = graph();
        let other = g.aps[1].pos;
        let (h, w, z) = g.deltas(0, other);
        assert!(h >= 0.0 && w >= 0.0 && z >= 0.0);
        assert_eq!(h, (g.aps[0].pos.x - other.x).abs() as f64);
    }
}
