//! Routing-performance potential modeling and pool-assisted relaxation
//! (paper §4.3).
//!
//! The potential is `V(C) = w_FoM · f_θ(G_H, C) + g(C)` (Eq. 7) with the
//! interior-point barrier of Eq. (8):
//!
//! `g(C_i) = −r Σ_j ( log C_i[j] + log(c_max − C_i[j]) )`
//!
//! Relaxation minimizes `V` with L-BFGS from many random initializations; a
//! pool of the `N_pool` lowest-potential guidance sets is maintained, and
//! once full, a fraction `p_relax` of subsequent restarts is seeded from
//! pool members with added noise. The top `N_derive` results are returned.
//!
//! Restarts execute on the [`afrt`] worker pool in *rounds* of `N_pool`
//! restarts each. The pool snapshot that noisy restarts draw from is only
//! refreshed at round boundaries, and every restart derives its RNG from
//! `afrt::split_seed(cfg.seed, restart_index)` — so results are a function
//! of the config alone and are bit-identical for any worker count.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use af_nn::lbfgs_minimize;

use crate::gnn::{GraphTensors, ThreeDGnn};
use crate::hetero::HeteroGraph;

/// The potential function `V(C)`.
pub struct Potential<'a> {
    gnn: &'a ThreeDGnn,
    tensors: std::sync::Arc<GraphTensors>,
    /// FoM weights on the normalized metric predictions
    /// `[offset, cmrr, bandwidth, gain, noise]`; positive = minimize,
    /// negative = maximize. The paper found equal weighting best.
    pub weights: [f64; 5],
    /// Barrier strength `r`.
    pub barrier_r: f64,
    c_min: f64,
    c_max: f64,
    /// Tier-A memo of exact-duplicate surrogate evaluations (see
    /// [`enable_memo`](Self::enable_memo)).
    memo: Option<crate::cache::FomMemo>,
}

impl<'a> Potential<'a> {
    /// Builds the potential for one graph and trained model.
    pub fn new(gnn: &'a ThreeDGnn, graph: &HeteroGraph) -> Self {
        let (c_min, c_max) = gnn.guidance_bounds();
        Self {
            gnn,
            tensors: gnn.tensors(graph),
            weights: [1.0, -1.0, -1.0, -1.0, 1.0],
            barrier_r: 1e-3,
            c_min,
            c_max,
            memo: None,
        }
    }

    /// Enables memoization of `f_θ` evaluations (the dominant cost of
    /// [`value_and_grad`](Self::value_and_grad)). Keys cover the exact
    /// guidance bits *and* the FoM weights, so a hit replays precisely the
    /// evaluation that would have been computed — pool-seeded restarts and
    /// repeated relax calls over the same points become lookups, and
    /// results stay bit-identical. A `capacity_mb` of `0` disables the
    /// memo.
    pub fn enable_memo(&mut self, capacity_mb: u64) {
        self.memo = (capacity_mb > 0).then(|| crate::cache::FomMemo::new(capacity_mb));
    }

    /// Counter snapshot of the evaluation memo (zeroed when disabled).
    pub fn memo_stats(&self) -> af_cache::CacheStats {
        self.memo
            .as_ref()
            .map(crate::cache::FomMemo::stats)
            .unwrap_or_default()
    }

    /// Dimension of the flattened guidance vector.
    pub fn dim(&self) -> usize {
        self.tensors.guidance_len()
    }

    /// Feasible guidance bounds.
    pub fn bounds(&self) -> (f64, f64) {
        (self.c_min, self.c_max)
    }

    /// Evaluates `V(C)` and `∇V(C)`.
    ///
    /// Outside the feasible region the barrier returns `+∞` with a gradient
    /// pointing back inside.
    ///
    /// Each call compiles a fresh surrogate program; the relaxation loops use
    /// [`evaluator`](Self::evaluator), which compiles once and replays the
    /// same tape for every L-BFGS iteration. Results are bit-identical.
    pub fn value_and_grad(&self, c: &[f64]) -> (f64, Vec<f64>) {
        // Chaos hook: inject a non-finite evaluation *before* the memo so a
        // poisoned value can never be cached. Disarmed cost is one relaxed
        // atomic load — this is the relaxation hot path.
        if af_fault::enabled() && af_fault::should_fail("relax.value_grad").is_some() {
            return (f64::NAN, vec![0.0; c.len()]);
        }
        // The surrogate term is a pure function of (weights, C); the barrier
        // is recomputed (cheap) so the memo stores exactly one tier of the
        // sum and `barrier_r` can change without invalidation.
        let (fom, grad) = match &self.memo {
            Some(memo) if crate::cache::cache_enabled() => {
                let key = crate::cache::FomMemo::key(&self.weights, c);
                memo.get_or_compute(key, || {
                    self.gnn.fom_and_grad(&self.tensors, c, &self.weights)
                })
            }
            _ => self.gnn.fom_and_grad(&self.tensors, c, &self.weights),
        };
        self.apply_barrier(fom, grad, c)
    }

    /// Builds a reusable evaluator: the surrogate forward+backward program is
    /// compiled once, and every subsequent [`PotentialEval::value_and_grad`]
    /// call replays the same tape in place — no per-iteration allocation or
    /// graph construction. Bit-identical to [`value_and_grad`](Self::value_and_grad).
    pub fn evaluator(&self) -> PotentialEval<'_, 'a> {
        let program = (!crate::gnn::oracle_forced())
            .then(|| crate::gnn::GnnProgram::compile_fom(self.gnn, &self.tensors, &self.weights));
        PotentialEval {
            potential: self,
            program,
        }
    }

    /// Adds the interior-point barrier term to a surrogate evaluation.
    fn apply_barrier(&self, fom: f64, mut grad: Vec<f64>, c: &[f64]) -> (f64, Vec<f64>) {
        let mut v = fom;
        for (i, &x) in c.iter().enumerate() {
            let lo = x - self.c_min;
            let hi = self.c_max - x;
            if lo <= 0.0 || hi <= 0.0 {
                return (f64::INFINITY, c.iter().map(|&x| x.signum()).collect());
            }
            v -= self.barrier_r * (lo.ln() + hi.ln());
            grad[i] += self.barrier_r * (1.0 / hi - 1.0 / lo);
        }
        (v, grad)
    }

    /// Clamps a vector strictly inside the feasible region.
    pub fn project(&self, c: &mut [f64]) {
        let eps = (self.c_max - self.c_min) * 1e-3;
        for x in c.iter_mut() {
            *x = x.clamp(self.c_min + eps, self.c_max - eps);
        }
    }
}

/// A reusable `V(C)` evaluator holding one compiled surrogate program.
///
/// Built by [`Potential::evaluator`]. The forward+backward tape is recorded
/// once; every [`value_and_grad`](Self::value_and_grad) call replays it over
/// the same buffers, which is what makes the L-BFGS inner loop of
/// [`relax_seeded`] allocation-free per iteration. Evaluations are
/// bit-identical to [`Potential::value_and_grad`]: the same failpoint, memo,
/// surrogate kernels, and barrier run in the same order.
pub struct PotentialEval<'p, 'a> {
    potential: &'p Potential<'a>,
    /// `None` when `AF_GNN_ORACLE` forces the scalar path.
    program: Option<crate::gnn::GnnProgram>,
}

impl PotentialEval<'_, '_> {
    /// Evaluates `V(C)` and `∇V(C)` by replaying the compiled tape.
    pub fn value_and_grad(&mut self, c: &[f64]) -> (f64, Vec<f64>) {
        if af_fault::enabled() && af_fault::should_fail("relax.value_grad").is_some() {
            return (f64::NAN, vec![0.0; c.len()]);
        }
        let pot = self.potential;
        let program = &mut self.program;
        let (fom, grad) = match &pot.memo {
            Some(memo) if crate::cache::cache_enabled() => {
                let key = crate::cache::FomMemo::key(&pot.weights, c);
                memo.get_or_compute(key, || match program {
                    Some(p) => p.fom_and_grad(c),
                    None => pot.gnn.fom_and_grad(&pot.tensors, c, &pot.weights),
                })
            }
            _ => match program {
                Some(p) => p.fom_and_grad(c),
                None => pot.gnn.fom_and_grad(&pot.tensors, c, &pot.weights),
            },
        };
        pot.apply_barrier(fom, grad, c)
    }

    /// The underlying potential.
    pub fn potential(&self) -> &Potential<'_> {
        self.potential
    }
}

/// Pool-assisted relaxation settings.
#[derive(Debug, Clone)]
pub struct RelaxConfig {
    /// Total restarts.
    pub restarts: usize,
    /// Pool capacity `N_pool`.
    pub pool_size: usize,
    /// Fraction of restarts seeded from the pool once it is full.
    pub p_relax: f64,
    /// Standard deviation of the noise added to pool seeds.
    pub noise_sigma: f64,
    /// Results to derive (`N_derive`).
    pub n_derive: usize,
    /// L-BFGS iterations per restart.
    pub lbfgs_iters: usize,
    /// L-BFGS memory.
    pub lbfgs_memory: usize,
    /// Minimum mean per-component distance between derived candidates; the
    /// top-`n_derive` selection skips near-duplicates so the downstream
    /// route-and-evaluate step sees genuinely different guidance fields.
    pub diversity_tol: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the restart fan-out; `0` resolves through
    /// `AFRT_THREADS`, then hardware parallelism. Any value yields
    /// bit-identical results.
    pub threads: usize,
    /// Capacity (MiB) of the tier-A surrogate-evaluation memo enabled on
    /// the potential by the flow; `0` disables it. Memoization is
    /// exact-key, so results are bit-identical either way.
    pub cache_mb: u64,
}

impl Default for RelaxConfig {
    fn default() -> Self {
        Self {
            restarts: 24,
            pool_size: 10,
            p_relax: 0.5,
            noise_sigma: 0.25,
            n_derive: 3,
            lbfgs_iters: 30,
            lbfgs_memory: 8,
            diversity_tol: 0.05,
            seed: 99,
            threads: 0,
            cache_mb: 64,
        }
    }
}

/// One relaxed guidance candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelaxOutcome {
    /// The guidance vector.
    pub guidance: Vec<f64>,
    /// Its potential value.
    pub potential: f64,
}

/// Runs pool-assisted potential relaxation; returns the top `n_derive`
/// lowest-potential guidance sets, best first.
///
/// # Panics
///
/// Panics if the potential has zero dimension.
pub fn relax(potential: &Potential<'_>, cfg: &RelaxConfig) -> Vec<RelaxOutcome> {
    relax_seeded(potential, cfg, &[])
}

/// [`relax`] with warm starts: each seed (e.g. the best-performing guidance
/// assignments observed while generating the training set) is refined by
/// L-BFGS and inserted into the pool before the random restarts begin.
///
/// # Panics
///
/// Panics if the potential has zero dimension or a seed has the wrong
/// length.
pub fn relax_seeded(
    potential: &Potential<'_>,
    cfg: &RelaxConfig,
    seeds: &[Vec<f64>],
) -> Vec<RelaxOutcome> {
    let _relax = af_obs::span!("relax");
    let dim = potential.dim();
    assert!(dim > 0, "no guided access points to relax");
    for s in seeds {
        assert_eq!(s.len(), dim, "seed length mismatch");
    }
    let (c_min, c_max) = potential.bounds();
    let runtime = afrt::Runtime::with_threads(cfg.threads);
    let mut pool: Vec<RelaxOutcome> = Vec::new();

    // Warm starts: refine every provided seed concurrently. Keep the raw
    // seed itself in the pool too: L-BFGS refines it under the *surrogate*,
    // which may lose what the simulator liked about it.
    if !seeds.is_empty() {
        let refined = runtime
            .par_map(seeds, |_, s| {
                // One compiled program serves the seed probe and every
                // L-BFGS iteration of its refinement.
                let mut eval = potential.evaluator();
                let mut x0 = s.clone();
                potential.project(&mut x0);
                let (v0, _) = eval.value_and_grad(&x0);
                let raw = v0.is_finite().then(|| RelaxOutcome {
                    guidance: x0.clone(),
                    potential: v0,
                });
                let opt = minimize_one(&mut eval, &x0, cfg);
                (raw, opt)
            })
            .unwrap_or_else(|e| panic!("relaxation warm-start failed: {e}"));
        for (raw, opt) in refined {
            // Non-finite evaluations never enter the pool; seeds are data
            // (not random draws), so a bad one is dropped, not re-drawn.
            if raw.is_none() || opt.is_none() {
                af_obs::counter("relax.nonfinite_restarts", 1);
            }
            pool.extend(raw);
            pool.extend(opt);
        }
        merge_pool(&mut pool, cfg);
    }

    // Random restarts in rounds of `N_pool`. Each round snapshots the pool;
    // every restart inside the round derives its initialization purely from
    // `(cfg.seed, restart_index)` and that snapshot, so scheduling order is
    // irrelevant to the result.
    let round_len = cfg.pool_size.max(1);
    let mut next_restart = 0usize;
    while next_restart < cfg.restarts {
        let round: Vec<usize> =
            (next_restart..cfg.restarts.min(next_restart + round_len)).collect();
        next_restart += round.len();
        let snapshot = &pool;
        let results = runtime
            .par_map(&round, |_, &restart| {
                let _s = af_obs::span!("restart", restart);
                // A restart whose descent lands on a non-finite potential
                // (NaN from an unlucky surrogate evaluation, or injected by
                // the `relax.nonfinite` failpoint) is *re-initialized* from
                // a fresh deterministic draw rather than admitted to the
                // pool or discarded outright — the paper's relaxation
                // depends on many noisy restarts surviving bad
                // initializations. Attempt 0 reproduces the historical
                // draw exactly, so fault-free runs are bit-identical to
                // before; re-draw seeds chain through `(seed, restart,
                // attempt)` so recovery is deterministic too.
                const REINIT_SALT: u64 = 0x6e6f_6e66_696e_6974; // "nonfinit"
                const MAX_ATTEMPTS: u64 = 4;
                // Compile the surrogate program once per restart; all
                // attempts and every L-BFGS iteration replay the same tape.
                let mut eval = potential.evaluator();
                let mut rng = ChaCha8Rng::seed_from_u64(afrt::split_seed(cfg.seed, restart as u64));
                let mut outcome: Option<RelaxOutcome> = None;
                for attempt in 0..MAX_ATTEMPTS {
                    let mut x0: Vec<f64> = if attempt > 0 {
                        let mut redraw = ChaCha8Rng::seed_from_u64(afrt::split_seed(
                            cfg.seed ^ REINIT_SALT,
                            af_fault::mix(restart as u64, attempt),
                        ));
                        (0..dim)
                            .map(|_| redraw.gen_range(c_min + 0.05..c_max - 0.05))
                            .collect()
                    } else if snapshot.len() >= cfg.pool_size && rng.gen::<f64>() < cfg.p_relax {
                        // Noisy restart from a pool member (the paper's
                        // `p_relax · N_pool` re-initializations).
                        let pick = rng.gen_range(0..snapshot.len());
                        snapshot[pick]
                            .guidance
                            .iter()
                            .map(|&v| v + cfg.noise_sigma * normal(&mut rng))
                            .collect()
                    } else {
                        (0..dim)
                            .map(|_| rng.gen_range(c_min + 0.05..c_max - 0.05))
                            .collect()
                    };
                    potential.project(&mut x0);
                    let injected = af_fault::should_fail_keyed(
                        "relax.nonfinite",
                        af_fault::mix(restart as u64, attempt),
                    )
                    .is_some();
                    outcome = if injected {
                        None
                    } else {
                        minimize_one(&mut eval, &x0, cfg)
                    };
                    if outcome.is_some() {
                        break;
                    }
                    af_obs::counter("relax.nonfinite_restarts", 1);
                }
                outcome
            })
            .unwrap_or_else(|e| panic!("relaxation restart failed: {e}"));
        pool.extend(results.into_iter().flatten());
        merge_pool(&mut pool, cfg);
    }

    // Diversity-aware top-N: greedily take the lowest-potential candidates
    // that differ from everything already selected by at least the
    // tolerance; fall back to duplicates only if the pool is too uniform.
    let mut selected: Vec<RelaxOutcome> = Vec::new();
    for cand in &pool {
        if selected.len() >= cfg.n_derive {
            break;
        }
        let distinct = selected.iter().all(|s| {
            let mean_diff: f64 = s
                .guidance
                .iter()
                .zip(&cand.guidance)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / s.guidance.len() as f64;
            mean_diff >= cfg.diversity_tol
        });
        if distinct {
            selected.push(cand.clone());
        }
    }
    for cand in &pool {
        if selected.len() >= cfg.n_derive {
            break;
        }
        if !selected.iter().any(|s| s.guidance == cand.guidance) {
            selected.push(cand.clone());
        }
    }
    selected
}

/// One L-BFGS descent from `x0`, projected back into the feasible region.
/// Returns `None` when the descent produced a non-finite potential or
/// guidance — such results must never become pool entries, because the
/// pool sort and the noisy pool-seeded restarts would both be poisoned.
///
/// Every evaluation — L-BFGS line searches and the final check — replays the
/// caller's compiled tape, so the inner loop allocates nothing per step.
fn minimize_one(
    eval: &mut PotentialEval<'_, '_>,
    x0: &[f64],
    cfg: &RelaxConfig,
) -> Option<RelaxOutcome> {
    let result = lbfgs_minimize(
        |x| eval.value_and_grad(x),
        x0,
        cfg.lbfgs_iters,
        cfg.lbfgs_memory,
        1e-8,
    );
    af_obs::counter("relax.lbfgs_iters", result.iterations as u64);
    if result.converged {
        af_obs::counter("relax.lbfgs_converged", 1);
    }
    let mut guidance = result.x;
    eval.potential().project(&mut guidance);
    let (v, _) = eval.value_and_grad(&guidance);
    if !v.is_finite() || guidance.iter().any(|g| !g.is_finite()) {
        return None;
    }
    af_obs::hist("relax.potential_final", v);
    Some(RelaxOutcome {
        guidance,
        potential: v,
    })
}

/// Sorts the pool best-first and bounds its size. `sort_by` is stable and
/// the insertion order is deterministic, so ties resolve identically on
/// every run and thread count.
fn merge_pool(pool: &mut Vec<RelaxOutcome>, cfg: &RelaxConfig) {
    pool.sort_by(|a, b| {
        a.potential
            .partial_cmp(&b.potential)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    pool.truncate((cfg.pool_size.max(cfg.n_derive)) * 2);
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::GnnConfig;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;

    fn setup() -> (HeteroGraph, ThreeDGnn) {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let graph = HeteroGraph::build(&c, &p, &Technology::nm40(), 2);
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        (graph, gnn)
    }

    #[test]
    fn barrier_repels_boundaries() {
        let (graph, gnn) = setup();
        let mut pot = Potential::new(&gnn, &graph);
        // isolate the barrier from the (untrained) FoM term
        pot.weights = [0.0; 5];
        pot.barrier_r = 1e-3;
        let dim = pot.dim();
        let (v_mid, _) = pot.value_and_grad(&vec![1.0; dim]);
        let (v_edge, _) = pot.value_and_grad(&vec![pot.bounds().0 + 1e-9; dim]);
        assert!(v_edge > v_mid, "barrier must grow near the boundary");
        let (v_out, _) = pot.value_and_grad(&vec![-1.0; dim]);
        assert!(v_out.is_infinite());
    }

    #[test]
    fn project_clamps_inside() {
        let (graph, gnn) = setup();
        let pot = Potential::new(&gnn, &graph);
        let (lo, hi) = pot.bounds();
        let mut c = vec![-5.0, 10.0, 1.0];
        pot.project(&mut c);
        assert!(c.iter().all(|&x| x > lo && x < hi));
        assert!((c[2] - 1.0).abs() < 1e-12, "interior points untouched");
    }

    #[test]
    fn relaxation_improves_potential() {
        let (graph, gnn) = setup();
        let pot = Potential::new(&gnn, &graph);
        let dim = pot.dim();
        let (v_init, _) = pot.value_and_grad(&vec![1.0; dim]);
        let cfg = RelaxConfig {
            restarts: 6,
            pool_size: 3,
            n_derive: 2,
            lbfgs_iters: 15,
            ..RelaxConfig::default()
        };
        let out = relax(&pot, &cfg);
        assert_eq!(out.len(), 2);
        assert!(out[0].potential <= out[1].potential, "sorted best-first");
        // diversity: the two derived candidates are not near-duplicates
        let mean_diff: f64 = out[0]
            .guidance
            .iter()
            .zip(&out[1].guidance)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / out[0].guidance.len() as f64;
        assert!(mean_diff > 1e-6, "candidates should differ: {mean_diff}");
        assert!(
            out[0].potential <= v_init,
            "relaxed {} vs neutral {}",
            out[0].potential,
            v_init
        );
        // results stay feasible
        let (lo, hi) = pot.bounds();
        for o in &out {
            assert!(o.guidance.iter().all(|&x| x > lo && x < hi));
        }
    }

    #[test]
    fn memoized_relaxation_is_bit_identical_and_hits() {
        let (graph, gnn) = setup();
        let cfg = RelaxConfig {
            restarts: 4,
            lbfgs_iters: 10,
            ..RelaxConfig::default()
        };
        let plain = Potential::new(&gnn, &graph);
        let base = relax(&plain, &cfg);

        let mut memoized = Potential::new(&gnn, &graph);
        memoized.enable_memo(16);
        let cold = relax(&memoized, &cfg);
        let warm = relax(&memoized, &cfg);
        for run in [&cold, &warm] {
            assert_eq!(base.len(), run.len());
            for (a, b) in base.iter().zip(run.iter()) {
                assert_eq!(a.guidance, b.guidance, "memo must not change results");
                assert_eq!(a.potential.to_bits(), b.potential.to_bits());
            }
        }
        let stats = memoized.memo_stats();
        assert!(stats.hits > 0, "warm relax must hit the memo: {stats:?}");
    }

    #[test]
    fn evaluator_matches_value_and_grad_bitwise() {
        let (graph, gnn) = setup();
        let pot = Potential::new(&gnn, &graph);
        let mut eval = pot.evaluator();
        let dim = pot.dim();
        for k in 0..3usize {
            let c: Vec<f64> = (0..dim).map(|i| 0.5 + 0.1 * ((i + k) % 7) as f64).collect();
            let (v1, g1) = pot.value_and_grad(&c);
            let (v2, g2) = eval.value_and_grad(&c);
            assert_eq!(v1.to_bits(), v2.to_bits(), "value diverged at probe {k}");
            assert_eq!(g1.len(), g2.len());
            for (a, b) in g1.iter().zip(&g2) {
                assert_eq!(a.to_bits(), b.to_bits(), "gradient diverged at probe {k}");
            }
        }
        // Infeasible input: same infinite-barrier answer through the tape.
        let c_bad = vec![-1.0; dim];
        let (v1, g1) = pot.value_and_grad(&c_bad);
        let (v2, g2) = eval.value_and_grad(&c_bad);
        assert!(v1.is_infinite() && v2.is_infinite());
        assert_eq!(g1, g2);
    }

    #[test]
    fn relaxation_is_deterministic() {
        let (graph, gnn) = setup();
        let pot = Potential::new(&gnn, &graph);
        let cfg = RelaxConfig {
            restarts: 4,
            lbfgs_iters: 10,
            ..RelaxConfig::default()
        };
        let a = relax(&pot, &cfg);
        let b = relax(&pot, &cfg);
        assert_eq!(a[0].guidance, b[0].guidance);
    }
}
