//! The protein-inspired 3DGNN (paper §4.2).
//!
//! Messages between nodes are modulated by the **cost-aware distance** of
//! Eq. (1), expanded with radial basis functions (Eq. 2–3, after SchNet) and
//! combined per Eq. (5):
//!
//! `e = MLP( MLP(v_src) ⊙ MLP(Ψ(d_cost(v_k, v_s))) )`
//!
//! Aggregation is summation (Eq. 4); after `L` layers a global sum readout
//! and a fully connected head predict the five normalized metrics (Eq. 6).
//!
//! The guidance matrix `C` participates only through `d_cost`, exactly as in
//! the paper — so the prediction is differentiable w.r.t. `C` and the
//! potential relaxation can run gradient descent on it.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use af_nn::{
    Activation, Adam, AdamConfig, BoundMlp, Graph, Mlp, NodeId, TapeAdam, TapeMlp, Tensor,
};
use af_tensor::{CsrIndex, CsrRef, Tape, Var};

use crate::dataset::{Dataset, TargetStats};
use crate::hetero::{HeteroGraph, AP_FEATURES, MODULE_FEATURES};

/// Hyper-parameters of the 3DGNN.
#[derive(Debug, Clone)]
pub struct GnnConfig {
    /// Hidden width of node embeddings.
    pub hidden: usize,
    /// Message-passing layers `L`.
    pub layers: usize,
    /// Radial-basis centers for distance expansion.
    pub rbf_centers: usize,
    /// RBF width γ (distances are normalized by the die half-perimeter).
    pub rbf_gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs over the dataset.
    pub epochs: usize,
    /// Init / shuffle seed.
    pub seed: u64,
    /// Lower guidance bound (barrier interior).
    pub c_min: f64,
    /// Upper guidance bound `c_max` of Eq. (8).
    pub c_max: f64,
    /// Ablation: expand distances with RBFs (`true`, the paper's choice) or
    /// feed the raw distance to the message MLP (`false`).
    pub use_rbf: bool,
    /// Ablation: use the heterogeneous graph (`true`) or drop module nodes
    /// and their edges (`false`, homogeneous AP-only graph).
    pub use_modules: bool,
}

impl Default for GnnConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            // One message-passing layer trains markedly better than two in
            // this small-data regime (no normalization layers in the tiny
            // autograd); the layer count remains an explicit knob.
            layers: 1,
            rbf_centers: 12,
            rbf_gamma: 8.0,
            lr: 3e-3,
            epochs: 60,
            seed: 7,
            // Barrier bounds track the dataset sampling range so the
            // relaxation stays inside the model's training support.
            c_min: 0.3,
            c_max: 2.5,
            use_rbf: true,
            use_modules: true,
        }
    }
}

/// Training statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Final epoch mean loss.
    pub final_loss: f64,
}

/// Per-edge-type message-passing weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MessageWeights {
    src: Mlp,
    rbf: Mlp,
    out: Mlp,
}

struct BoundMessage {
    src: BoundMlp,
    rbf: BoundMlp,
    out: BoundMlp,
}

impl MessageWeights {
    fn new(hidden: usize, dist_features: usize, rng: &mut ChaCha8Rng) -> Self {
        Self {
            src: Mlp::new(&[hidden, hidden], Activation::Silu, rng),
            rbf: Mlp::new(&[dist_features, hidden], Activation::Silu, rng),
            out: Mlp::new(&[hidden, hidden], Activation::Silu, rng),
        }
    }

    fn bind(&self, g: &mut Graph, frozen: bool) -> BoundMessage {
        let b = |m: &Mlp, g: &mut Graph| if frozen { m.bind_frozen(g) } else { m.bind(g) };
        BoundMessage {
            src: b(&self.src, g),
            rbf: b(&self.rbf, g),
            out: b(&self.out, g),
        }
    }

    fn sync(&mut self, g: &Graph, b: &BoundMessage) {
        self.src.sync_from(g, &b.src);
        self.rbf.sync_from(g, &b.rbf);
        self.out.sync_from(g, &b.out);
    }

    fn params(b: &BoundMessage) -> Vec<NodeId> {
        let mut p = b.src.params();
        p.extend(b.rbf.params());
        p.extend(b.out.params());
        p
    }

    fn bind_tape(&self, t: &mut Tape) -> TapeMessage {
        TapeMessage {
            src: self.src.bind_tape(t),
            rbf: self.rbf.bind_tape(t),
            out: self.out.bind_tape(t),
        }
    }

    fn sync_tape(&mut self, t: &Tape, b: &TapeMessage) {
        self.src.sync_from_tape(t, &b.src);
        self.rbf.sync_from_tape(t, &b.rbf);
        self.out.sync_from_tape(t, &b.out);
    }

    fn tape_params(b: &TapeMessage) -> Vec<Var> {
        let mut p = b.src.params();
        p.extend(b.rbf.params());
        p.extend(b.out.params());
        p
    }
}

struct TapeMessage {
    src: TapeMlp,
    rbf: TapeMlp,
    out: TapeMlp,
}

/// The 3DGNN model: encoders, per-layer per-edge-type message MLPs, readout
/// and metric head, plus target normalization statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreeDGnn {
    cfg_hidden: usize,
    cfg_layers: usize,
    cfg_rbf_centers: usize,
    cfg_rbf_gamma: f64,
    cfg_c_min: f64,
    cfg_c_max: f64,
    cfg_use_rbf: bool,
    cfg_use_modules: bool,
    ap_encoder: Mlp,
    m_encoder: Mlp,
    pp: Vec<MessageWeights>,
    mp: Vec<MessageWeights>,
    pm: Vec<MessageWeights>,
    mm: Vec<Mlp>,
    readout: Mlp,
    head: Mlp,
    stats: TargetStats,
}

/// Precomputed constant tensors of one heterogeneous graph, shared across
/// many forward passes (training samples, relaxation restarts).
pub struct GraphTensors {
    ap_feats: Tensor,
    m_feats: Tensor,
    /// Per-PP-edge |dx|,|dy|,|dz| normalized by the die scale.
    pp_deltas: Tensor,
    pp_src: Vec<usize>,
    pp_dst: Vec<usize>,
    mp_deltas: Tensor,
    mp_src_m: Vec<usize>,
    mp_dst_a: Vec<usize>,
    mm_src: Vec<usize>,
    mm_dst: Vec<usize>,
    guided_idx: Vec<usize>,
    /// Base guidance: 1.0 on unguided AP rows, 0.0 on guided rows.
    c_base: Tensor,
    n_aps: usize,
    n_modules: usize,
    /// Row-grouped relation indices for the `af_tensor` fast path. Each is
    /// built once per graph and shared (`Arc`) into every compiled tape.
    pp_src_csr: Arc<CsrIndex>,
    pp_dst_csr: Arc<CsrIndex>,
    mp_src_csr: Arc<CsrIndex>,
    mp_dst_csr: Arc<CsrIndex>,
    mm_src_csr: Arc<CsrIndex>,
    mm_dst_csr: Arc<CsrIndex>,
    guided_csr: Arc<CsrIndex>,
}

impl GraphTensors {
    /// Precomputes the constant tensors of one graph.
    pub fn new(graph: &HeteroGraph) -> Self {
        let n_aps = graph.num_aps();
        let n_modules = graph.num_modules();
        let ap_feats = Tensor::from_vec(
            graph.aps.iter().flat_map(|a| a.features).collect(),
            n_aps,
            AP_FEATURES,
        );
        let m_feats = Tensor::from_vec(
            graph.modules.iter().flat_map(|m| m.features).collect(),
            n_modules,
            MODULE_FEATURES,
        );
        let scale = graph.scale;
        let mut pp_deltas = Vec::with_capacity(graph.pp_edges.len() * 3);
        let mut pp_src = Vec::with_capacity(graph.pp_edges.len());
        let mut pp_dst = Vec::with_capacity(graph.pp_edges.len());
        for &(s, d) in &graph.pp_edges {
            let (h, w, z) = graph.deltas(d, graph.aps[s].pos);
            pp_deltas.extend([h / scale, w / scale, z / scale]);
            pp_src.push(s);
            pp_dst.push(d);
        }
        let mut mp_deltas = Vec::with_capacity(graph.mp_edges.len() * 3);
        let mut mp_src_m = Vec::with_capacity(graph.mp_edges.len());
        let mut mp_dst_a = Vec::with_capacity(graph.mp_edges.len());
        for &(m, a) in &graph.mp_edges {
            let (h, w, z) = graph.deltas(a, graph.modules[m].pos);
            mp_deltas.extend([h / scale, w / scale, z / scale]);
            mp_src_m.push(m);
            mp_dst_a.push(a);
        }
        let (mm_src, mm_dst): (Vec<usize>, Vec<usize>) = graph.mm_edges.iter().copied().unzip();
        let guided_idx = graph.guided_ap_indices();
        let mut base = vec![0.0; n_aps * 3];
        for i in 0..n_aps {
            if !graph.aps[i].guided {
                base[i * 3] = 1.0;
                base[i * 3 + 1] = 1.0;
                base[i * 3 + 2] = 1.0;
            }
        }
        let pp_src_csr = Arc::new(CsrIndex::new(&pp_src, n_aps));
        let pp_dst_csr = Arc::new(CsrIndex::new(&pp_dst, n_aps));
        let mp_src_csr = Arc::new(CsrIndex::new(&mp_src_m, n_modules));
        let mp_dst_csr = Arc::new(CsrIndex::new(&mp_dst_a, n_aps));
        let mm_src_csr = Arc::new(CsrIndex::new(&mm_src, n_modules));
        let mm_dst_csr = Arc::new(CsrIndex::new(&mm_dst, n_modules));
        let guided_csr = Arc::new(CsrIndex::new(&guided_idx, n_aps));
        Self {
            ap_feats,
            m_feats,
            pp_deltas: Tensor::from_vec(pp_deltas, graph.pp_edges.len(), 3),
            pp_src,
            pp_dst,
            mp_deltas: Tensor::from_vec(mp_deltas, graph.mp_edges.len(), 3),
            mp_src_m,
            mp_dst_a,
            mm_src,
            mm_dst,
            guided_idx,
            c_base: Tensor::from_vec(base, n_aps, 3),
            n_aps,
            n_modules,
            pp_src_csr,
            pp_dst_csr,
            mp_src_csr,
            mp_dst_csr,
            mm_src_csr,
            mm_dst_csr,
            guided_csr,
        }
    }

    /// Length of the flattened guidance vector the model expects.
    pub fn guidance_len(&self) -> usize {
        self.guided_idx.len() * 3
    }

    /// Messages moved per message-passing layer: PP plus both MP directions
    /// plus MM. The throughput benchmarks report edges/second against this.
    pub fn edges_per_pass(&self) -> usize {
        self.pp_src.len() + 2 * self.mp_src_m.len() + self.mm_src.len()
    }

    /// Approximate resident size in bytes, used as the weight of a cached
    /// prefix in the process-wide tensor cache.
    pub fn approx_bytes(&self) -> usize {
        let f64s = self.ap_feats.data().len()
            + self.m_feats.data().len()
            + self.pp_deltas.data().len()
            + self.mp_deltas.data().len()
            + self.c_base.data().len();
        let idxs = self.pp_src.len()
            + self.pp_dst.len()
            + self.mp_src_m.len()
            + self.mp_dst_a.len()
            + self.mm_src.len()
            + self.mm_dst.len()
            + self.guided_idx.len();
        let csrs = self.pp_src_csr.approx_bytes()
            + self.pp_dst_csr.approx_bytes()
            + self.mp_src_csr.approx_bytes()
            + self.mp_dst_csr.approx_bytes()
            + self.mm_src_csr.approx_bytes()
            + self.mm_dst_csr.approx_bytes()
            + self.guided_csr.approx_bytes();
        (f64s + idxs) * 8 + csrs + std::mem::size_of::<Self>()
    }
}

struct BoundGnn {
    ap_encoder: BoundMlp,
    m_encoder: BoundMlp,
    pp: Vec<BoundMessage>,
    mp: Vec<BoundMessage>,
    pm: Vec<BoundMessage>,
    mm: Vec<BoundMlp>,
    readout: BoundMlp,
    head: BoundMlp,
}

struct TapeGnn {
    ap_encoder: TapeMlp,
    m_encoder: TapeMlp,
    pp: Vec<TapeMessage>,
    mp: Vec<TapeMessage>,
    pm: Vec<TapeMessage>,
    mm: Vec<TapeMlp>,
    readout: TapeMlp,
    head: TapeMlp,
}

/// Forces every GNN entry point onto the scalar `af_nn::Graph` oracle.
/// Checked once per process: set `AF_GNN_ORACLE=1` before startup.
pub(crate) fn oracle_forced() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("AF_GNN_ORACLE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

impl ThreeDGnn {
    /// Creates an untrained model.
    pub fn new(cfg: &GnnConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let h = cfg.hidden;
        let dist_features = if cfg.use_rbf { cfg.rbf_centers } else { 1 };
        let ap_encoder = Mlp::new(&[AP_FEATURES, h], Activation::Silu, &mut rng);
        let m_encoder = Mlp::new(&[MODULE_FEATURES, h], Activation::Silu, &mut rng);
        let mut pp = Vec::new();
        let mut mp = Vec::new();
        let mut pm = Vec::new();
        let mut mm = Vec::new();
        for _ in 0..cfg.layers {
            pp.push(MessageWeights::new(h, dist_features, &mut rng));
            mp.push(MessageWeights::new(h, dist_features, &mut rng));
            pm.push(MessageWeights::new(h, dist_features, &mut rng));
            mm.push(Mlp::new(&[h, h], Activation::Silu, &mut rng));
        }
        let readout = Mlp::new(&[h, h], Activation::Silu, &mut rng);
        let head = Mlp::new(&[h, h, 5], Activation::Silu, &mut rng);
        Self {
            cfg_hidden: h,
            cfg_layers: cfg.layers,
            cfg_rbf_centers: cfg.rbf_centers,
            cfg_rbf_gamma: cfg.rbf_gamma,
            cfg_c_min: cfg.c_min,
            cfg_c_max: cfg.c_max,
            cfg_use_rbf: cfg.use_rbf,
            cfg_use_modules: cfg.use_modules,
            ap_encoder,
            m_encoder,
            pp,
            mp,
            pm,
            mm,
            readout,
            head,
            stats: TargetStats::identity(),
        }
    }

    /// Guidance bounds `(c_min, c_max)` used by the barrier.
    pub fn guidance_bounds(&self) -> (f64, f64) {
        (self.cfg_c_min, self.cfg_c_max)
    }

    /// Target normalization statistics learned from the training set.
    pub fn stats(&self) -> &TargetStats {
        &self.stats
    }

    fn rbf_centers_vec(&self) -> Vec<f64> {
        // distances are normalized by the die scale; cost multipliers reach
        // c_max, so cover [0, c_max]
        let k = self.cfg_rbf_centers;
        if k == 1 {
            // A single center degenerates the spacing formula (i / (k - 1));
            // anchor it at zero distance.
            return vec![0.0];
        }
        (0..k)
            .map(|i| self.cfg_c_max * i as f64 / (k - 1) as f64)
            .collect()
    }

    fn bind(&self, g: &mut Graph, frozen: bool) -> BoundGnn {
        let b = |m: &Mlp, g: &mut Graph| if frozen { m.bind_frozen(g) } else { m.bind(g) };
        BoundGnn {
            ap_encoder: b(&self.ap_encoder, g),
            m_encoder: b(&self.m_encoder, g),
            pp: self.pp.iter().map(|w| w.bind(g, frozen)).collect(),
            mp: self.mp.iter().map(|w| w.bind(g, frozen)).collect(),
            pm: self.pm.iter().map(|w| w.bind(g, frozen)).collect(),
            mm: self.mm.iter().map(|m| b(m, g)).collect(),
            readout: b(&self.readout, g),
            head: b(&self.head, g),
        }
    }

    fn bind_tape(&self, t: &mut Tape) -> TapeGnn {
        TapeGnn {
            ap_encoder: self.ap_encoder.bind_tape(t),
            m_encoder: self.m_encoder.bind_tape(t),
            pp: self.pp.iter().map(|w| w.bind_tape(t)).collect(),
            mp: self.mp.iter().map(|w| w.bind_tape(t)).collect(),
            pm: self.pm.iter().map(|w| w.bind_tape(t)).collect(),
            mm: self.mm.iter().map(|m| m.bind_tape(t)).collect(),
            readout: self.readout.bind_tape(t),
            head: self.head.bind_tape(t),
        }
    }

    /// Distance-augmented message pass for one edge type. `rbf_centers` is
    /// the table hoisted out of the per-layer loop by `forward` (empty when
    /// RBF features are disabled).
    #[allow(clippy::too_many_arguments)]
    fn message_pass(
        &self,
        g: &mut Graph,
        weights: &BoundMessage,
        h_src: NodeId,
        src_idx: &[usize],
        dst_idx: &[usize],
        deltas: NodeId,
        c_full: NodeId,
        n_dst: usize,
        rbf_centers: &[f64],
    ) -> NodeId {
        let v_src = g.gather(h_src, src_idx);
        // d_cost (Eq. 1): the receiver's guidance scales the per-axis deltas.
        let c_dst = g.gather(c_full, dst_idx);
        let scaled = g.mul(c_dst, deltas);
        let sq = g.square(scaled);
        let ssum = g.sum_cols(sq);
        let d = g.sqrt(ssum);
        let psi = if self.cfg_use_rbf {
            g.rbf(d, self.cfg_rbf_gamma, rbf_centers)
        } else {
            d
        };
        // Eq. 5: MLP(MLP(v_src) ⊙ MLP(Ψ(d)))
        let a = weights.src.forward(g, v_src);
        let bm = weights.rbf.forward(g, psi);
        let prod = g.mul(a, bm);
        let msg = weights.out.forward(g, prod);
        g.scatter_add(msg, dst_idx, n_dst)
    }

    /// Full forward pass: returns the `1 × 5` **normalized** prediction.
    fn forward(
        &self,
        g: &mut Graph,
        bound: &BoundGnn,
        t: &GraphTensors,
        c_guided: NodeId,
    ) -> NodeId {
        // Assemble the full per-AP guidance: guided rows from the input,
        // neutral rows elsewhere.
        let scattered = g.scatter_add(c_guided, &t.guided_idx, t.n_aps);
        let base = g.input(t.c_base.clone());
        let c_full = g.add(scattered, base);

        let ap_in = g.input(t.ap_feats.clone());
        let m_in = g.input(t.m_feats.clone());
        let mut h_ap = bound.ap_encoder.forward(g, ap_in);
        let mut h_m = bound.m_encoder.forward(g, m_in);

        let pp_deltas = g.input(t.pp_deltas.clone());
        let mp_deltas = g.input(t.mp_deltas.clone());

        // Hoisted out of the layer loop: the RBF center table is a pure
        // function of the model config, so one allocation serves every
        // message pass of this forward.
        let rbf_centers = if self.cfg_use_rbf {
            self.rbf_centers_vec()
        } else {
            Vec::new()
        };

        for l in 0..self.cfg_layers {
            // E_PP: AP -> AP.
            if !t.pp_src.is_empty() {
                let agg = self.message_pass(
                    g,
                    &bound.pp[l],
                    h_ap,
                    &t.pp_src,
                    &t.pp_dst,
                    pp_deltas,
                    c_full,
                    t.n_aps,
                    &rbf_centers,
                );
                h_ap = g.add(h_ap, agg);
            }
            // E_MP: module -> AP.
            if self.cfg_use_modules && !t.mp_src_m.is_empty() {
                let agg = self.message_pass(
                    g,
                    &bound.mp[l],
                    h_m,
                    &t.mp_src_m,
                    &t.mp_dst_a,
                    mp_deltas,
                    c_full,
                    t.n_aps,
                    &rbf_centers,
                );
                h_ap = g.add(h_ap, agg);
                // E_PM: AP -> module (reverse direction, same deltas/C).
                let v_src = g.gather(h_ap, &t.mp_dst_a);
                let c_dst = g.gather(c_full, &t.mp_dst_a);
                let scaled = g.mul(c_dst, mp_deltas);
                let sq = g.square(scaled);
                let ssum = g.sum_cols(sq);
                let d = g.sqrt(ssum);
                let psi = if self.cfg_use_rbf {
                    g.rbf(d, self.cfg_rbf_gamma, &rbf_centers)
                } else {
                    d
                };
                let a = bound.pm[l].src.forward(g, v_src);
                let bm = bound.pm[l].rbf.forward(g, psi);
                let prod = g.mul(a, bm);
                let msg = bound.pm[l].out.forward(g, prod);
                let agg_m = g.scatter_add(msg, &t.mp_src_m, t.n_modules);
                h_m = g.add(h_m, agg_m);
            }
            // E_MM: module -> module (logical, no distance term).
            if self.cfg_use_modules && !t.mm_src.is_empty() {
                let v_src = g.gather(h_m, &t.mm_src);
                let msg = bound.mm[l].forward(g, v_src);
                let agg = g.scatter_add(msg, &t.mm_dst, t.n_modules);
                h_m = g.add(h_m, agg);
            }
        }

        // Global readout: u = Σ MLP(v) over both node sets (Eq. 4's φ_u),
        // scaled by 1/N (equivalent up to head weights, but keeps the head's
        // input O(1) so the guidance-driven modulation is not drowned out).
        let r_ap = bound.readout.forward(g, h_ap);
        let r_m = bound.readout.forward(g, h_m);
        let ones_ap = g.input(Tensor::ones(1, t.n_aps));
        let ones_m = g.input(Tensor::ones(1, t.n_modules));
        let sum_ap = g.matmul(ones_ap, r_ap);
        let sum_m = g.matmul(ones_m, r_m);
        let u = g.add(sum_ap, sum_m);
        let u = g.scale(u, 1.0 / (t.n_aps + t.n_modules) as f64);
        bound.head.forward(g, u)
    }

    /// Trains on a dataset of (guidance, metrics) pairs; returns per-epoch
    /// mean L2 loss on normalized targets.
    ///
    /// Runs on the `af_tensor` fast path: the whole forward+backward is
    /// compiled onto one tape and replayed per sample with zero allocations.
    /// Bit-identical to [`train_oracle`](Self::train_oracle) (same shuffle
    /// stream, same Adam math); set `AF_GNN_ORACLE=1` to force the scalar
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or guidance lengths mismatch the graph.
    pub fn train(
        &mut self,
        graph: &HeteroGraph,
        dataset: &Dataset,
        cfg: &GnnConfig,
    ) -> TrainReport {
        if oracle_forced() {
            return self.train_oracle(graph, dataset, cfg);
        }
        assert!(!dataset.samples.is_empty(), "empty dataset");
        let t = GraphTensors::new(graph);
        assert_eq!(
            dataset.samples[0].guidance.len(),
            t.guidance_len(),
            "guidance length mismatch"
        );
        self.stats = TargetStats::fit(dataset);

        let mut prog = GnnProgram::compile_train(self, &t);
        let mut opt = TapeAdam::new(
            prog.params.clone(),
            AdamConfig {
                lr: cfg.lr,
                ..AdamConfig::default()
            },
            &prog.tape,
        );

        let _train = af_obs::span!("gnn_train");
        let mut order: Vec<usize> = (0..dataset.samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xdead);
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let _e = af_obs::span!("epoch", epoch);
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &si in &order {
                let sample = &dataset.samples[si];
                let target = self.stats.normalize(&sample.metrics());
                total += prog.train_step(&sample.guidance, &target, &mut opt);
            }
            epoch_losses.push(total / dataset.samples.len() as f64);
        }
        prog.sync_into(self);

        let final_loss = *epoch_losses.last().expect("at least one epoch");
        TrainReport {
            epoch_losses,
            final_loss,
        }
    }

    /// The scalar-graph training path, kept verbatim as the bit-exactness
    /// oracle for [`train`](Self::train).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or guidance lengths mismatch the graph.
    pub fn train_oracle(
        &mut self,
        graph: &HeteroGraph,
        dataset: &Dataset,
        cfg: &GnnConfig,
    ) -> TrainReport {
        assert!(!dataset.samples.is_empty(), "empty dataset");
        let t = GraphTensors::new(graph);
        assert_eq!(
            dataset.samples[0].guidance.len(),
            t.guidance_len(),
            "guidance length mismatch"
        );
        self.stats = TargetStats::fit(dataset);

        let mut g = Graph::new();
        let bound = self.bind(&mut g, false);
        let params: Vec<NodeId> = {
            let mut p = bound.ap_encoder.params();
            p.extend(bound.m_encoder.params());
            for w in &bound.pp {
                p.extend(MessageWeights::params(w));
            }
            for w in &bound.mp {
                p.extend(MessageWeights::params(w));
            }
            for w in &bound.pm {
                p.extend(MessageWeights::params(w));
            }
            for m in &bound.mm {
                p.extend(m.params());
            }
            p.extend(bound.readout.params());
            p.extend(bound.head.params());
            p
        };
        let mut opt = Adam::new(
            params,
            AdamConfig {
                lr: cfg.lr,
                ..AdamConfig::default()
            },
            &g,
        );

        let _train = af_obs::span!("gnn_train");
        let mut order: Vec<usize> = (0..dataset.samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xdead);
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let _e = af_obs::span!("epoch", epoch);
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &si in &order {
                let sample = &dataset.samples[si];
                g.reset();
                let c = g.input(Tensor::from_vec(
                    sample.guidance.clone(),
                    t.guided_idx.len(),
                    3,
                ));
                let pred = self.forward(&mut g, &bound, &t, c);
                let target = g.input(Tensor::from_vec(
                    self.stats.normalize(&sample.metrics()).to_vec(),
                    1,
                    5,
                ));
                let loss = g.mse(pred, target);
                g.backward(loss);
                total += g.value(loss).get(0, 0);
                opt.step(&mut g);
            }
            epoch_losses.push(total / dataset.samples.len() as f64);
        }
        // Persist trained weights.
        self.ap_encoder.sync_from(&g, &bound.ap_encoder);
        self.m_encoder.sync_from(&g, &bound.m_encoder);
        for (w, b) in self.pp.iter_mut().zip(&bound.pp) {
            w.sync(&g, b);
        }
        for (w, b) in self.mp.iter_mut().zip(&bound.mp) {
            w.sync(&g, b);
        }
        for (w, b) in self.pm.iter_mut().zip(&bound.pm) {
            w.sync(&g, b);
        }
        for (w, b) in self.mm.iter_mut().zip(&bound.mm) {
            w.sync_from(&g, b);
        }
        self.readout.sync_from(&g, &bound.readout);
        self.head.sync_from(&g, &bound.head);

        let final_loss = *epoch_losses.last().expect("at least one epoch");
        TrainReport {
            epoch_losses,
            final_loss,
        }
    }

    /// Predicts the five (unnormalized) metrics for a guidance vector.
    ///
    /// Runs on the `af_tensor` fast path (bit-identical to
    /// [`predict_oracle`](Self::predict_oracle); set `AF_GNN_ORACLE=1` to
    /// force the scalar path). For repeated predictions over one graph,
    /// prefer [`session`](Self::session), which compiles the tape once.
    ///
    /// # Panics
    ///
    /// Panics if `guidance.len()` mismatches the graph's guided APs × 3.
    pub fn predict(&self, graph: &HeteroGraph, guidance: &[f64]) -> [f64; 5] {
        if oracle_forced() {
            return self.predict_oracle(graph, guidance);
        }
        let t = crate::cache::tensors_cached(graph);
        GnnProgram::compile_predict(self, &t).predict(guidance)
    }

    /// The scalar-graph prediction path, kept verbatim as the bit-exactness
    /// oracle for [`predict`](Self::predict).
    ///
    /// # Panics
    ///
    /// Panics if `guidance.len()` mismatches the graph's guided APs × 3.
    pub fn predict_oracle(&self, graph: &HeteroGraph, guidance: &[f64]) -> [f64; 5] {
        let t = crate::cache::tensors_cached(graph);
        assert_eq!(guidance.len(), t.guidance_len(), "guidance length mismatch");
        let mut g = Graph::new();
        let bound = self.bind(&mut g, true);
        let c = g.input(Tensor::from_vec(guidance.to_vec(), t.guided_idx.len(), 3));
        let pred = self.forward(&mut g, &bound, &t, c);
        let row = g.value(pred);
        let normalized = [
            row.get(0, 0),
            row.get(0, 1),
            row.get(0, 2),
            row.get(0, 3),
            row.get(0, 4),
        ];
        self.stats.denormalize(&normalized)
    }

    /// Weighted FoM of the normalized predictions and its gradient w.r.t.
    /// the guidance vector: `f(C) = Σ_k w_k · ŷ_norm_k`.
    ///
    /// The relaxation minimizes this (plus a barrier), so weights are
    /// positive for lower-is-better metrics and negative for
    /// higher-is-better ones.
    ///
    /// Runs on the `af_tensor` fast path, with the weight-gradient cone
    /// statically pruned (bit-identical to
    /// [`fom_and_grad_oracle`](Self::fom_and_grad_oracle); set
    /// `AF_GNN_ORACLE=1` to force the scalar path). Callers evaluating many
    /// points should compile [`GnnProgram::compile_fom`] once and replay it.
    pub fn fom_and_grad(
        &self,
        tensors: &GraphTensors,
        guidance: &[f64],
        weights: &[f64; 5],
    ) -> (f64, Vec<f64>) {
        if oracle_forced() {
            return self.fom_and_grad_oracle(tensors, guidance, weights);
        }
        GnnProgram::compile_fom(self, tensors, weights).fom_and_grad(guidance)
    }

    /// The scalar-graph FoM path, kept verbatim as the bit-exactness oracle
    /// for [`fom_and_grad`](Self::fom_and_grad).
    pub fn fom_and_grad_oracle(
        &self,
        tensors: &GraphTensors,
        guidance: &[f64],
        weights: &[f64; 5],
    ) -> (f64, Vec<f64>) {
        // The relaxation's hot path: time surrogate evaluations only when
        // recording is on (the measured wall time never feeds the result).
        let t0 = af_obs::enabled().then(std::time::Instant::now);
        let mut g = Graph::new();
        let c = g.param(Tensor::from_vec(
            guidance.to_vec(),
            tensors.guided_idx.len(),
            3,
        ));
        let bound = self.bind(&mut g, true);
        let pred = self.forward(&mut g, &bound, tensors, c);
        let w = g.input(Tensor::from_vec(weights.to_vec(), 1, 5));
        let weighted = g.mul(pred, w);
        let fom = g.sum(weighted);
        g.backward(fom);
        if let Some(t0) = t0 {
            af_obs::hist("gnn.fom_grad_us", t0.elapsed().as_secs_f64() * 1e6);
            af_obs::counter("gnn.fom_grad_evals", 1);
        }
        (g.value(fom).get(0, 0), g.grad(c).data().to_vec())
    }

    /// Builds the constant tensor cache for a graph (shared across many
    /// relaxation evaluations). Served from the process-wide prefix cache
    /// when enabled; the tensors are a pure function of the graph content
    /// either way.
    pub fn tensors(&self, graph: &HeteroGraph) -> std::sync::Arc<GraphTensors> {
        crate::cache::tensors_cached(graph)
    }

    /// Total scalar parameter count across every weight matrix and bias.
    /// Persisted in the model file header as a cheap integrity checksum.
    pub fn param_count(&self) -> usize {
        let msg =
            |w: &MessageWeights| w.src.param_count() + w.rbf.param_count() + w.out.param_count();
        self.ap_encoder.param_count()
            + self.m_encoder.param_count()
            + self.pp.iter().map(msg).sum::<usize>()
            + self.mp.iter().map(msg).sum::<usize>()
            + self.pm.iter().map(msg).sum::<usize>()
            + self.mm.iter().map(Mlp::param_count).sum::<usize>()
            + self.readout.param_count()
            + self.head.param_count()
    }

    /// Opens a long-lived prediction session for one graph: the tensor
    /// cache is built once and the whole forward pass is compiled onto one
    /// reusable tape, so repeated predictions are allocation-free replays.
    /// This is what keeps a resident model (e.g. `af-serve`) cheap per
    /// request. Every [`PredictSession::predict`] is bit-identical to
    /// [`ThreeDGnn::predict`].
    pub fn session(&self, graph: &HeteroGraph) -> PredictSession {
        let tensors = crate::cache::tensors_cached(graph);
        let program = GnnProgram::compile_predict(self, &tensors);
        PredictSession { tensors, program }
    }
}

/// What a compiled [`GnnProgram`] is sealed for.
enum ProgramMode {
    /// Forward only.
    Predict,
    /// Loss = Σ w·ŷ, gradient w.r.t. the guidance input.
    Fom([f64; 5]),
    /// Loss = MSE(ŷ, target), gradients w.r.t. every weight.
    Train,
}

/// The whole GNN forward (and optionally backward) compiled onto one
/// [`Tape`]: weights, graph constants and relation indices are recorded
/// once, then every evaluation is an allocation-free replay over fresh
/// input values. Gather/scatter run as per-relation CSR row-block batches.
///
/// Three seal modes exist (see the constructors): forward-only prediction,
/// FoM + guidance gradient for the potential relaxation (weight gradients
/// are statically pruned), and training (guidance-side gradients pruned).
/// All three match the scalar `af_nn::Graph` oracle bit for bit on default
/// builds; see the `af_tensor` crate docs for the contract.
pub struct GnnProgram {
    tape: Tape,
    bound: TapeGnn,
    c: Var,
    target: Option<Var>,
    pred: Var,
    loss: Option<Var>,
    params: Vec<Var>,
    stats: TargetStats,
    guidance_len: usize,
}

impl GnnProgram {
    /// Compiles a forward-only prediction program.
    pub fn compile_predict(gnn: &ThreeDGnn, tensors: &GraphTensors) -> Self {
        Self::compile(gnn, tensors, ProgramMode::Predict)
    }

    /// Compiles a FoM + guidance-gradient program (the relaxation hot path).
    pub fn compile_fom(gnn: &ThreeDGnn, tensors: &GraphTensors, weights: &[f64; 5]) -> Self {
        Self::compile(gnn, tensors, ProgramMode::Fom(*weights))
    }

    /// Compiles a training program (loss + weight gradients).
    pub fn compile_train(gnn: &ThreeDGnn, tensors: &GraphTensors) -> Self {
        Self::compile(gnn, tensors, ProgramMode::Train)
    }

    fn compile(gnn: &ThreeDGnn, t: &GraphTensors, mode: ProgramMode) -> Self {
        let mut tape = Tape::new();
        let c = tape.input(t.guided_idx.len(), 3);
        let bound = gnn.bind_tape(&mut tape);

        let guided = tape.register_csr(t.guided_csr.clone());
        let pp_src = tape.register_csr(t.pp_src_csr.clone());
        let pp_dst = tape.register_csr(t.pp_dst_csr.clone());
        let mp_src = tape.register_csr(t.mp_src_csr.clone());
        let mp_dst = tape.register_csr(t.mp_dst_csr.clone());
        let mm_src = tape.register_csr(t.mm_src_csr.clone());
        let mm_dst = tape.register_csr(t.mm_dst_csr.clone());

        // Constant leaves: set once at compile, never touched again.
        let scattered = tape.scatter_add(c, guided);
        let base = tape.leaf(t.c_base.data(), t.n_aps, 3);
        let c_full = tape.add(scattered, base);

        let ap_in = tape.leaf(t.ap_feats.data(), t.n_aps, AP_FEATURES);
        let m_in = tape.leaf(t.m_feats.data(), t.n_modules, MODULE_FEATURES);
        let mut h_ap = bound.ap_encoder.forward(&mut tape, ap_in);
        let mut h_m = bound.m_encoder.forward(&mut tape, m_in);

        let pp_deltas = tape.leaf(t.pp_deltas.data(), t.pp_src.len(), 3);
        let mp_deltas = tape.leaf(t.mp_deltas.data(), t.mp_src_m.len(), 3);

        let rbf_centers = if gnn.cfg_use_rbf {
            gnn.rbf_centers_vec()
        } else {
            Vec::new()
        };

        for l in 0..gnn.cfg_layers {
            // E_PP: AP -> AP.
            if !t.pp_src.is_empty() {
                let agg = Self::message_pass(
                    gnn,
                    &mut tape,
                    &bound.pp[l],
                    h_ap,
                    pp_src,
                    pp_dst,
                    pp_deltas,
                    c_full,
                    &rbf_centers,
                );
                h_ap = tape.add(h_ap, agg);
            }
            // E_MP: module -> AP.
            if gnn.cfg_use_modules && !t.mp_src_m.is_empty() {
                let agg = Self::message_pass(
                    gnn,
                    &mut tape,
                    &bound.mp[l],
                    h_m,
                    mp_src,
                    mp_dst,
                    mp_deltas,
                    c_full,
                    &rbf_centers,
                );
                h_ap = tape.add(h_ap, agg);
                // E_PM: AP -> module (reverse direction, same deltas/C).
                let v_src = tape.gather(h_ap, mp_dst);
                let c_dst = tape.gather(c_full, mp_dst);
                let scaled = tape.mul(c_dst, mp_deltas);
                let sq = tape.square(scaled);
                let ssum = tape.sum_cols(sq);
                let d = tape.sqrt(ssum);
                let psi = if gnn.cfg_use_rbf {
                    tape.rbf(d, gnn.cfg_rbf_gamma, &rbf_centers)
                } else {
                    d
                };
                let a = bound.pm[l].src.forward(&mut tape, v_src);
                let bm = bound.pm[l].rbf.forward(&mut tape, psi);
                let prod = tape.mul(a, bm);
                let msg = bound.pm[l].out.forward(&mut tape, prod);
                let agg_m = tape.scatter_add(msg, mp_src);
                h_m = tape.add(h_m, agg_m);
            }
            // E_MM: module -> module (logical, no distance term).
            if gnn.cfg_use_modules && !t.mm_src.is_empty() {
                let v_src = tape.gather(h_m, mm_src);
                let msg = bound.mm[l].forward(&mut tape, v_src);
                let agg = tape.scatter_add(msg, mm_dst);
                h_m = tape.add(h_m, agg);
            }
        }

        // Global readout; `sum_rows` replaces the oracle's `ones × R`
        // matmul with the identical per-column ascending-row sum.
        let r_ap = bound.readout.forward(&mut tape, h_ap);
        let r_m = bound.readout.forward(&mut tape, h_m);
        let sum_ap = tape.sum_rows(r_ap);
        let sum_m = tape.sum_rows(r_m);
        let u = tape.add(sum_ap, sum_m);
        let u = tape.scale(u, 1.0 / (t.n_aps + t.n_modules) as f64);
        let pred = bound.head.forward(&mut tape, u);

        let mut target = None;
        let mut loss = None;
        let mut params = Vec::new();
        match mode {
            ProgramMode::Predict => tape.seal(None, &[]),
            ProgramMode::Fom(w) => {
                let wleaf = tape.leaf(&w, 1, 5);
                let weighted = tape.mul(pred, wleaf);
                let fom = tape.sum(weighted);
                tape.seal(Some(fom), &[c]);
                loss = Some(fom);
            }
            ProgramMode::Train => {
                let tgt = tape.input(1, 5);
                let l = tape.mse(pred, tgt);
                params = Self::collect_params(&bound);
                tape.seal(Some(l), &params);
                target = Some(tgt);
                loss = Some(l);
            }
        }
        Self {
            tape,
            bound,
            c,
            target,
            pred,
            loss,
            params,
            stats: gnn.stats.clone(),
            guidance_len: t.guidance_len(),
        }
    }

    /// Tape analogue of the oracle's `message_pass`: same op sequence, with
    /// gather/scatter routed through the relation's CSR grouping.
    #[allow(clippy::too_many_arguments)]
    fn message_pass(
        gnn: &ThreeDGnn,
        tape: &mut Tape,
        weights: &TapeMessage,
        h_src: Var,
        src: CsrRef,
        dst: CsrRef,
        deltas: Var,
        c_full: Var,
        rbf_centers: &[f64],
    ) -> Var {
        let v_src = tape.gather(h_src, src);
        // d_cost (Eq. 1): the receiver's guidance scales the per-axis deltas.
        let c_dst = tape.gather(c_full, dst);
        let scaled = tape.mul(c_dst, deltas);
        let sq = tape.square(scaled);
        let ssum = tape.sum_cols(sq);
        let d = tape.sqrt(ssum);
        let psi = if gnn.cfg_use_rbf {
            tape.rbf(d, gnn.cfg_rbf_gamma, rbf_centers)
        } else {
            d
        };
        // Eq. 5: MLP(MLP(v_src) ⊙ MLP(Ψ(d)))
        let a = weights.src.forward(tape, v_src);
        let bm = weights.rbf.forward(tape, psi);
        let prod = tape.mul(a, bm);
        let msg = weights.out.forward(tape, prod);
        tape.scatter_add(msg, dst)
    }

    /// Weight vars in the oracle's parameter order (`[w, b]` per layer,
    /// encoders → pp → mp → pm → mm → readout → head).
    fn collect_params(bound: &TapeGnn) -> Vec<Var> {
        let mut p = bound.ap_encoder.params();
        p.extend(bound.m_encoder.params());
        for w in &bound.pp {
            p.extend(MessageWeights::tape_params(w));
        }
        for w in &bound.mp {
            p.extend(MessageWeights::tape_params(w));
        }
        for w in &bound.pm {
            p.extend(MessageWeights::tape_params(w));
        }
        for m in &bound.mm {
            p.extend(m.params());
        }
        p.extend(bound.readout.params());
        p.extend(bound.head.params());
        p
    }

    /// Length of the flattened guidance vector the program expects.
    pub fn guidance_len(&self) -> usize {
        self.guidance_len
    }

    /// Forward replay: the five **unnormalized** metrics for one guidance
    /// vector. Bit-identical to [`ThreeDGnn::predict`] on the same model.
    ///
    /// # Panics
    ///
    /// Panics if `guidance.len()` mismatches the compiled graph.
    pub fn predict(&mut self, guidance: &[f64]) -> [f64; 5] {
        assert_eq!(
            guidance.len(),
            self.guidance_len,
            "guidance length mismatch"
        );
        self.tape.set_value(self.c, guidance);
        self.tape.forward();
        let row = self.tape.value(self.pred);
        let normalized = [row[0], row[1], row[2], row[3], row[4]];
        self.stats.denormalize(&normalized)
    }

    /// Forward + backward replay on a FoM program: the weighted FoM of the
    /// normalized prediction and its gradient w.r.t. the guidance vector.
    ///
    /// # Panics
    ///
    /// Panics if the program was not compiled with
    /// [`compile_fom`](Self::compile_fom) or the length mismatches.
    pub fn fom_and_grad(&mut self, guidance: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(
            guidance.len(),
            self.guidance_len,
            "guidance length mismatch"
        );
        let loss = self.loss.expect("program not compiled for FoM");
        let t0 = af_obs::enabled().then(std::time::Instant::now);
        self.tape.set_value(self.c, guidance);
        self.tape.forward();
        self.tape.backward();
        if let Some(t0) = t0 {
            af_obs::hist("gnn.fom_grad_us", t0.elapsed().as_secs_f64() * 1e6);
            af_obs::counter("gnn.fom_grad_evals", 1);
        }
        (self.tape.value(loss)[0], self.tape.grad(self.c).to_vec())
    }

    /// One training replay on a train program: sets the sample, runs
    /// forward + backward, applies the optimizer, returns the sample loss.
    fn train_step(&mut self, guidance: &[f64], target_norm: &[f64; 5], opt: &mut TapeAdam) -> f64 {
        self.tape.set_value(self.c, guidance);
        self.tape
            .set_value(self.target.expect("train program"), target_norm);
        self.tape.forward();
        self.tape.backward();
        let loss = self.tape.value(self.loss.expect("train program"))[0];
        opt.step(&mut self.tape);
        loss
    }

    /// Copies the (trained) weight leaves back into the model.
    fn sync_into(&self, gnn: &mut ThreeDGnn) {
        gnn.ap_encoder
            .sync_from_tape(&self.tape, &self.bound.ap_encoder);
        gnn.m_encoder
            .sync_from_tape(&self.tape, &self.bound.m_encoder);
        for (w, b) in gnn.pp.iter_mut().zip(&self.bound.pp) {
            w.sync_tape(&self.tape, b);
        }
        for (w, b) in gnn.mp.iter_mut().zip(&self.bound.mp) {
            w.sync_tape(&self.tape, b);
        }
        for (w, b) in gnn.pm.iter_mut().zip(&self.bound.pm) {
            w.sync_tape(&self.tape, b);
        }
        for (m, b) in gnn.mm.iter_mut().zip(&self.bound.mm) {
            m.sync_from_tape(&self.tape, b);
        }
        gnn.readout.sync_from_tape(&self.tape, &self.bound.readout);
        gnn.head.sync_from_tape(&self.tape, &self.bound.head);
    }
}

/// A reusable prediction context: one graph's tensor cache plus a bound
/// autograd graph, amortized across many [`predict`](Self::predict) calls.
/// Created by [`ThreeDGnn::session`].
pub struct PredictSession {
    tensors: std::sync::Arc<GraphTensors>,
    program: GnnProgram,
}

impl PredictSession {
    /// Length of the flattened guidance vector the session expects.
    pub fn guidance_len(&self) -> usize {
        self.tensors.guidance_len()
    }

    /// Predicts the five (unnormalized) metrics for one guidance vector.
    /// Bit-identical to [`ThreeDGnn::predict`] on the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `guidance.len()` mismatches the graph's guided APs × 3.
    pub fn predict(&mut self, guidance: &[f64]) -> [f64; 5] {
        self.program.predict(guidance)
    }

    /// Predicts a batch of guidance vectors. Each element is computed
    /// independently (identical to calling [`predict`](Self::predict) per
    /// item), so batching changes throughput, never results.
    pub fn predict_batch(&mut self, batch: &[Vec<f64>]) -> Vec<[f64; 5]> {
        batch.iter().map(|c| self.predict(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_sim::Performance;
    use af_tech::Technology;

    fn tiny_graph() -> HeteroGraph {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        HeteroGraph::build(&c, &p, &Technology::nm40(), 2)
    }

    fn synthetic_dataset(graph: &HeteroGraph, n: usize) -> Dataset {
        // target: offset is the mean of guidance x-components (a learnable
        // smooth function), other metrics constants
        let t = GraphTensors::new(graph);
        let len = t.guidance_len();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut samples = Vec::new();
        for _ in 0..n {
            use rand::Rng;
            let guidance: Vec<f64> = (0..len).map(|_| rng.gen_range(0.2..2.0)).collect();
            let mean_x: f64 = guidance.iter().step_by(3).sum::<f64>() / (len as f64 / 3.0);
            samples.push(Sample {
                guidance,
                performance: Performance {
                    offset_uv: 100.0 * mean_x,
                    cmrr_db: 80.0,
                    bandwidth_mhz: 50.0 + 10.0 * mean_x,
                    dc_gain_db: 40.0,
                    noise_uvrms: 300.0,
                },
            });
        }
        Dataset { samples }
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let graph = tiny_graph();
        let gnn = ThreeDGnn::new(&GnnConfig::default());
        let t = GraphTensors::new(&graph);
        let c = vec![1.0; t.guidance_len()];
        let y1 = gnn.predict(&graph, &c);
        let y2 = gnn.predict(&graph, &c);
        assert_eq!(y1, y2);
        assert!(y1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prediction_depends_on_guidance() {
        let graph = tiny_graph();
        let gnn = ThreeDGnn::new(&GnnConfig::default());
        let t = GraphTensors::new(&graph);
        let a = gnn.predict(&graph, &vec![0.5; t.guidance_len()]);
        let b = gnn.predict(&graph, &vec![2.0; t.guidance_len()]);
        assert_ne!(a, b, "guidance must influence the prediction");
    }

    #[test]
    fn training_reduces_loss() {
        let graph = tiny_graph();
        let cfg = GnnConfig {
            epochs: 80,
            lr: 5e-3,
            hidden: 12,
            layers: 1,
            ..GnnConfig::default()
        };
        let mut gnn = ThreeDGnn::new(&cfg);
        let data = synthetic_dataset(&graph, 24);
        let report = gnn.train(&graph, &data, &cfg);
        // with the 1/N readout the initial loss already sits near the
        // mean-predictor level, so expect a solid but not 2x reduction
        assert!(
            report.final_loss < report.epoch_losses[0] * 0.75,
            "loss {} -> {}",
            report.epoch_losses[0],
            report.final_loss
        );
    }

    #[test]
    fn session_predictions_bit_identical_to_one_shot() {
        let graph = tiny_graph();
        let cfg = GnnConfig {
            hidden: 8,
            layers: 1,
            epochs: 5,
            ..GnnConfig::default()
        };
        let mut gnn = ThreeDGnn::new(&cfg);
        let data = synthetic_dataset(&graph, 8);
        gnn.train(&graph, &data, &cfg);
        let t = GraphTensors::new(&graph);
        let mut session = gnn.session(&graph);
        assert_eq!(session.guidance_len(), t.guidance_len());
        let inputs: Vec<Vec<f64>> = [0.4, 1.0, 1.7]
            .iter()
            .map(|&v| vec![v; t.guidance_len()])
            .collect();
        // Repeated session predicts (graph reuse across resets) must match
        // the fresh-graph one-shot path exactly, in any order.
        for c in inputs.iter().chain(inputs.iter().rev()) {
            assert_eq!(session.predict(c), gnn.predict(&graph, c));
        }
        let batched = session.predict_batch(&inputs);
        for (c, got) in inputs.iter().zip(&batched) {
            assert_eq!(*got, gnn.predict(&graph, c));
        }
    }

    #[test]
    fn param_count_matches_architecture() {
        let cfg = GnnConfig {
            hidden: 8,
            layers: 2,
            ..GnnConfig::default()
        };
        let gnn = ThreeDGnn::new(&cfg);
        let count = gnn.param_count();
        assert!(count > 0);
        // Doubling the layer count adds exactly the per-layer weights.
        let one = ThreeDGnn::new(&GnnConfig {
            layers: 1,
            ..cfg.clone()
        });
        assert!(count > one.param_count());
        // Same config → same count (it is a pure function of architecture).
        assert_eq!(count, ThreeDGnn::new(&cfg).param_count());
    }

    #[test]
    fn fast_path_matches_oracle() {
        // Tolerances per the af-tensor parity contract: single evaluations
        // sit within ≤1e-9 of the scalar oracle (polynomial exp ≲1e-13 per
        // call, plus fused-multiply-add rounding where the runtime AVX2+FMA
        // dispatch engages); a full training run compounds per-step
        // deviations through Adam, so it gets a looser 1e-8 relative band.
        fn close(a: f64, b: f64, tol: f64, what: &str) {
            assert!(
                (a - b).abs() <= tol * (1.0 + b.abs()),
                "{what} diverged: {a} vs {b} (|Δ| = {:e})",
                (a - b).abs()
            );
        }
        let graph = tiny_graph();
        let cfg = GnnConfig {
            hidden: 8,
            layers: 1,
            epochs: 3,
            ..GnnConfig::default()
        };
        let data = synthetic_dataset(&graph, 6);
        let mut fast = ThreeDGnn::new(&cfg);
        let mut oracle = ThreeDGnn::new(&cfg);

        // Stage 1: untrained forward parity.
        let t = GraphTensors::new(&graph);
        let c = vec![0.9; t.guidance_len()];
        let p_fast = fast.predict(&graph, &c);
        let p_oracle = fast.predict_oracle(&graph, &c);
        for (a, b) in p_fast.iter().zip(&p_oracle) {
            close(*a, *b, 1e-9, "untrained prediction");
        }

        // Stage 2: untrained guidance-gradient parity (backward to C).
        let w = [1.0, -1.0, -1.0, -1.0, 1.0];
        let (f1, g1) = fast.fom_and_grad(&t, &c, &w);
        let (f2, g2) = fast.fom_and_grad_oracle(&t, &c, &w);
        close(f1, f2, 1e-9, "FoM");
        assert_eq!(g1.len(), g2.len());
        for (a, b) in g1.iter().zip(&g2) {
            close(*a, *b, 1e-9, "guidance gradient");
        }

        // Stage 3: full training parity (weight gradients + Adam).
        let r_fast = fast.train(&graph, &data, &cfg);
        let r_oracle = oracle.train_oracle(&graph, &data, &cfg);
        for (a, b) in r_fast.epoch_losses.iter().zip(&r_oracle.epoch_losses) {
            close(*a, *b, 1e-8, "training loss");
        }
        let p_fast = fast.predict(&graph, &c);
        let p_oracle = oracle.predict_oracle(&graph, &c);
        for (a, b) in p_fast.iter().zip(&p_oracle) {
            close(*a, *b, 1e-8, "trained prediction");
        }
    }

    #[test]
    fn single_rbf_center_is_finite() {
        // Regression: `rbf_centers == 1` used to divide by zero in the
        // center-spacing formula (i / (k - 1)).
        let graph = tiny_graph();
        let cfg = GnnConfig {
            rbf_centers: 1,
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        };
        let gnn = ThreeDGnn::new(&cfg);
        assert_eq!(gnn.rbf_centers_vec(), vec![0.0]);
        let t = GraphTensors::new(&graph);
        let c = vec![1.0; t.guidance_len()];
        let y = gnn.predict(&graph, &c);
        assert!(y.iter().all(|v| v.is_finite()), "fast path: {y:?}");
        let y2 = gnn.predict_oracle(&graph, &c);
        assert!(y2.iter().all(|v| v.is_finite()), "oracle path: {y2:?}");
        for (a, b) in y.iter().zip(&y2) {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "paths diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let graph = tiny_graph();
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        let t = GraphTensors::new(&graph);
        let w = [1.0, -1.0, -1.0, -1.0, 1.0];
        let c0 = vec![1.0; t.guidance_len()];
        let (f0, grad) = gnn.fom_and_grad(&t, &c0, &w);
        assert!(f0.is_finite());
        let eps = 1e-5;
        for i in [0usize, 1, 2, t.guidance_len() - 1] {
            let mut cp = c0.clone();
            cp[i] += eps;
            let (fp, _) = gnn.fom_and_grad(&t, &cp, &w);
            let numeric = (fp - f0) / eps;
            assert!(
                (grad[i] - numeric).abs() < 1e-3 * (1.0 + numeric.abs()),
                "grad[{i}] {} vs numeric {}",
                grad[i],
                numeric
            );
        }
    }
}
