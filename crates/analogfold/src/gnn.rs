//! The protein-inspired 3DGNN (paper §4.2).
//!
//! Messages between nodes are modulated by the **cost-aware distance** of
//! Eq. (1), expanded with radial basis functions (Eq. 2–3, after SchNet) and
//! combined per Eq. (5):
//!
//! `e = MLP( MLP(v_src) ⊙ MLP(Ψ(d_cost(v_k, v_s))) )`
//!
//! Aggregation is summation (Eq. 4); after `L` layers a global sum readout
//! and a fully connected head predict the five normalized metrics (Eq. 6).
//!
//! The guidance matrix `C` participates only through `d_cost`, exactly as in
//! the paper — so the prediction is differentiable w.r.t. `C` and the
//! potential relaxation can run gradient descent on it.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use af_nn::{Activation, Adam, AdamConfig, BoundMlp, Graph, Mlp, NodeId, Tensor};

use crate::dataset::{Dataset, TargetStats};
use crate::hetero::{HeteroGraph, AP_FEATURES, MODULE_FEATURES};

/// Hyper-parameters of the 3DGNN.
#[derive(Debug, Clone)]
pub struct GnnConfig {
    /// Hidden width of node embeddings.
    pub hidden: usize,
    /// Message-passing layers `L`.
    pub layers: usize,
    /// Radial-basis centers for distance expansion.
    pub rbf_centers: usize,
    /// RBF width γ (distances are normalized by the die half-perimeter).
    pub rbf_gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs over the dataset.
    pub epochs: usize,
    /// Init / shuffle seed.
    pub seed: u64,
    /// Lower guidance bound (barrier interior).
    pub c_min: f64,
    /// Upper guidance bound `c_max` of Eq. (8).
    pub c_max: f64,
    /// Ablation: expand distances with RBFs (`true`, the paper's choice) or
    /// feed the raw distance to the message MLP (`false`).
    pub use_rbf: bool,
    /// Ablation: use the heterogeneous graph (`true`) or drop module nodes
    /// and their edges (`false`, homogeneous AP-only graph).
    pub use_modules: bool,
}

impl Default for GnnConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            // One message-passing layer trains markedly better than two in
            // this small-data regime (no normalization layers in the tiny
            // autograd); the layer count remains an explicit knob.
            layers: 1,
            rbf_centers: 12,
            rbf_gamma: 8.0,
            lr: 3e-3,
            epochs: 60,
            seed: 7,
            // Barrier bounds track the dataset sampling range so the
            // relaxation stays inside the model's training support.
            c_min: 0.3,
            c_max: 2.5,
            use_rbf: true,
            use_modules: true,
        }
    }
}

/// Training statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Final epoch mean loss.
    pub final_loss: f64,
}

/// Per-edge-type message-passing weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MessageWeights {
    src: Mlp,
    rbf: Mlp,
    out: Mlp,
}

struct BoundMessage {
    src: BoundMlp,
    rbf: BoundMlp,
    out: BoundMlp,
}

impl MessageWeights {
    fn new(hidden: usize, dist_features: usize, rng: &mut ChaCha8Rng) -> Self {
        Self {
            src: Mlp::new(&[hidden, hidden], Activation::Silu, rng),
            rbf: Mlp::new(&[dist_features, hidden], Activation::Silu, rng),
            out: Mlp::new(&[hidden, hidden], Activation::Silu, rng),
        }
    }

    fn bind(&self, g: &mut Graph, frozen: bool) -> BoundMessage {
        let b = |m: &Mlp, g: &mut Graph| if frozen { m.bind_frozen(g) } else { m.bind(g) };
        BoundMessage {
            src: b(&self.src, g),
            rbf: b(&self.rbf, g),
            out: b(&self.out, g),
        }
    }

    fn sync(&mut self, g: &Graph, b: &BoundMessage) {
        self.src.sync_from(g, &b.src);
        self.rbf.sync_from(g, &b.rbf);
        self.out.sync_from(g, &b.out);
    }

    fn params(b: &BoundMessage) -> Vec<NodeId> {
        let mut p = b.src.params();
        p.extend(b.rbf.params());
        p.extend(b.out.params());
        p
    }
}

/// The 3DGNN model: encoders, per-layer per-edge-type message MLPs, readout
/// and metric head, plus target normalization statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreeDGnn {
    cfg_hidden: usize,
    cfg_layers: usize,
    cfg_rbf_centers: usize,
    cfg_rbf_gamma: f64,
    cfg_c_min: f64,
    cfg_c_max: f64,
    cfg_use_rbf: bool,
    cfg_use_modules: bool,
    ap_encoder: Mlp,
    m_encoder: Mlp,
    pp: Vec<MessageWeights>,
    mp: Vec<MessageWeights>,
    pm: Vec<MessageWeights>,
    mm: Vec<Mlp>,
    readout: Mlp,
    head: Mlp,
    stats: TargetStats,
}

/// Precomputed constant tensors of one heterogeneous graph, shared across
/// many forward passes (training samples, relaxation restarts).
pub struct GraphTensors {
    ap_feats: Tensor,
    m_feats: Tensor,
    /// Per-PP-edge |dx|,|dy|,|dz| normalized by the die scale.
    pp_deltas: Tensor,
    pp_src: Vec<usize>,
    pp_dst: Vec<usize>,
    mp_deltas: Tensor,
    mp_src_m: Vec<usize>,
    mp_dst_a: Vec<usize>,
    mm_src: Vec<usize>,
    mm_dst: Vec<usize>,
    guided_idx: Vec<usize>,
    /// Base guidance: 1.0 on unguided AP rows, 0.0 on guided rows.
    c_base: Tensor,
    n_aps: usize,
    n_modules: usize,
}

impl GraphTensors {
    /// Precomputes the constant tensors of one graph.
    pub fn new(graph: &HeteroGraph) -> Self {
        let n_aps = graph.num_aps();
        let n_modules = graph.num_modules();
        let ap_feats = Tensor::from_vec(
            graph.aps.iter().flat_map(|a| a.features).collect(),
            n_aps,
            AP_FEATURES,
        );
        let m_feats = Tensor::from_vec(
            graph.modules.iter().flat_map(|m| m.features).collect(),
            n_modules,
            MODULE_FEATURES,
        );
        let scale = graph.scale;
        let mut pp_deltas = Vec::with_capacity(graph.pp_edges.len() * 3);
        let mut pp_src = Vec::with_capacity(graph.pp_edges.len());
        let mut pp_dst = Vec::with_capacity(graph.pp_edges.len());
        for &(s, d) in &graph.pp_edges {
            let (h, w, z) = graph.deltas(d, graph.aps[s].pos);
            pp_deltas.extend([h / scale, w / scale, z / scale]);
            pp_src.push(s);
            pp_dst.push(d);
        }
        let mut mp_deltas = Vec::with_capacity(graph.mp_edges.len() * 3);
        let mut mp_src_m = Vec::with_capacity(graph.mp_edges.len());
        let mut mp_dst_a = Vec::with_capacity(graph.mp_edges.len());
        for &(m, a) in &graph.mp_edges {
            let (h, w, z) = graph.deltas(a, graph.modules[m].pos);
            mp_deltas.extend([h / scale, w / scale, z / scale]);
            mp_src_m.push(m);
            mp_dst_a.push(a);
        }
        let (mm_src, mm_dst): (Vec<usize>, Vec<usize>) = graph.mm_edges.iter().copied().unzip();
        let guided_idx = graph.guided_ap_indices();
        let mut base = vec![0.0; n_aps * 3];
        for i in 0..n_aps {
            if !graph.aps[i].guided {
                base[i * 3] = 1.0;
                base[i * 3 + 1] = 1.0;
                base[i * 3 + 2] = 1.0;
            }
        }
        Self {
            ap_feats,
            m_feats,
            pp_deltas: Tensor::from_vec(pp_deltas, graph.pp_edges.len(), 3),
            pp_src,
            pp_dst,
            mp_deltas: Tensor::from_vec(mp_deltas, graph.mp_edges.len(), 3),
            mp_src_m,
            mp_dst_a,
            mm_src,
            mm_dst,
            guided_idx,
            c_base: Tensor::from_vec(base, n_aps, 3),
            n_aps,
            n_modules,
        }
    }

    /// Length of the flattened guidance vector the model expects.
    pub fn guidance_len(&self) -> usize {
        self.guided_idx.len() * 3
    }

    /// Approximate resident size in bytes, used as the weight of a cached
    /// prefix in the process-wide tensor cache.
    pub fn approx_bytes(&self) -> usize {
        let f64s = self.ap_feats.data().len()
            + self.m_feats.data().len()
            + self.pp_deltas.data().len()
            + self.mp_deltas.data().len()
            + self.c_base.data().len();
        let idxs = self.pp_src.len()
            + self.pp_dst.len()
            + self.mp_src_m.len()
            + self.mp_dst_a.len()
            + self.mm_src.len()
            + self.mm_dst.len()
            + self.guided_idx.len();
        (f64s + idxs) * 8 + std::mem::size_of::<Self>()
    }
}

struct BoundGnn {
    ap_encoder: BoundMlp,
    m_encoder: BoundMlp,
    pp: Vec<BoundMessage>,
    mp: Vec<BoundMessage>,
    pm: Vec<BoundMessage>,
    mm: Vec<BoundMlp>,
    readout: BoundMlp,
    head: BoundMlp,
}

impl ThreeDGnn {
    /// Creates an untrained model.
    pub fn new(cfg: &GnnConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let h = cfg.hidden;
        let dist_features = if cfg.use_rbf { cfg.rbf_centers } else { 1 };
        let ap_encoder = Mlp::new(&[AP_FEATURES, h], Activation::Silu, &mut rng);
        let m_encoder = Mlp::new(&[MODULE_FEATURES, h], Activation::Silu, &mut rng);
        let mut pp = Vec::new();
        let mut mp = Vec::new();
        let mut pm = Vec::new();
        let mut mm = Vec::new();
        for _ in 0..cfg.layers {
            pp.push(MessageWeights::new(h, dist_features, &mut rng));
            mp.push(MessageWeights::new(h, dist_features, &mut rng));
            pm.push(MessageWeights::new(h, dist_features, &mut rng));
            mm.push(Mlp::new(&[h, h], Activation::Silu, &mut rng));
        }
        let readout = Mlp::new(&[h, h], Activation::Silu, &mut rng);
        let head = Mlp::new(&[h, h, 5], Activation::Silu, &mut rng);
        Self {
            cfg_hidden: h,
            cfg_layers: cfg.layers,
            cfg_rbf_centers: cfg.rbf_centers,
            cfg_rbf_gamma: cfg.rbf_gamma,
            cfg_c_min: cfg.c_min,
            cfg_c_max: cfg.c_max,
            cfg_use_rbf: cfg.use_rbf,
            cfg_use_modules: cfg.use_modules,
            ap_encoder,
            m_encoder,
            pp,
            mp,
            pm,
            mm,
            readout,
            head,
            stats: TargetStats::identity(),
        }
    }

    /// Guidance bounds `(c_min, c_max)` used by the barrier.
    pub fn guidance_bounds(&self) -> (f64, f64) {
        (self.cfg_c_min, self.cfg_c_max)
    }

    /// Target normalization statistics learned from the training set.
    pub fn stats(&self) -> &TargetStats {
        &self.stats
    }

    fn rbf_centers_vec(&self) -> Vec<f64> {
        // distances are normalized by the die scale; cost multipliers reach
        // c_max, so cover [0, c_max]
        let k = self.cfg_rbf_centers;
        (0..k)
            .map(|i| self.cfg_c_max * i as f64 / (k - 1) as f64)
            .collect()
    }

    fn bind(&self, g: &mut Graph, frozen: bool) -> BoundGnn {
        let b = |m: &Mlp, g: &mut Graph| if frozen { m.bind_frozen(g) } else { m.bind(g) };
        BoundGnn {
            ap_encoder: b(&self.ap_encoder, g),
            m_encoder: b(&self.m_encoder, g),
            pp: self.pp.iter().map(|w| w.bind(g, frozen)).collect(),
            mp: self.mp.iter().map(|w| w.bind(g, frozen)).collect(),
            pm: self.pm.iter().map(|w| w.bind(g, frozen)).collect(),
            mm: self.mm.iter().map(|m| b(m, g)).collect(),
            readout: b(&self.readout, g),
            head: b(&self.head, g),
        }
    }

    /// Distance-augmented message pass for one edge type. `rbf_centers` is
    /// the table hoisted out of the per-layer loop by `forward` (empty when
    /// RBF features are disabled).
    #[allow(clippy::too_many_arguments)]
    fn message_pass(
        &self,
        g: &mut Graph,
        weights: &BoundMessage,
        h_src: NodeId,
        src_idx: &[usize],
        dst_idx: &[usize],
        deltas: NodeId,
        c_full: NodeId,
        n_dst: usize,
        rbf_centers: &[f64],
    ) -> NodeId {
        let v_src = g.gather(h_src, src_idx);
        // d_cost (Eq. 1): the receiver's guidance scales the per-axis deltas.
        let c_dst = g.gather(c_full, dst_idx);
        let scaled = g.mul(c_dst, deltas);
        let sq = g.square(scaled);
        let ssum = g.sum_cols(sq);
        let d = g.sqrt(ssum);
        let psi = if self.cfg_use_rbf {
            g.rbf(d, self.cfg_rbf_gamma, rbf_centers)
        } else {
            d
        };
        // Eq. 5: MLP(MLP(v_src) ⊙ MLP(Ψ(d)))
        let a = weights.src.forward(g, v_src);
        let bm = weights.rbf.forward(g, psi);
        let prod = g.mul(a, bm);
        let msg = weights.out.forward(g, prod);
        g.scatter_add(msg, dst_idx, n_dst)
    }

    /// Full forward pass: returns the `1 × 5` **normalized** prediction.
    fn forward(
        &self,
        g: &mut Graph,
        bound: &BoundGnn,
        t: &GraphTensors,
        c_guided: NodeId,
    ) -> NodeId {
        // Assemble the full per-AP guidance: guided rows from the input,
        // neutral rows elsewhere.
        let scattered = g.scatter_add(c_guided, &t.guided_idx, t.n_aps);
        let base = g.input(t.c_base.clone());
        let c_full = g.add(scattered, base);

        let ap_in = g.input(t.ap_feats.clone());
        let m_in = g.input(t.m_feats.clone());
        let mut h_ap = bound.ap_encoder.forward(g, ap_in);
        let mut h_m = bound.m_encoder.forward(g, m_in);

        let pp_deltas = g.input(t.pp_deltas.clone());
        let mp_deltas = g.input(t.mp_deltas.clone());

        // Hoisted out of the layer loop: the RBF center table is a pure
        // function of the model config, so one allocation serves every
        // message pass of this forward.
        let rbf_centers = if self.cfg_use_rbf {
            self.rbf_centers_vec()
        } else {
            Vec::new()
        };

        for l in 0..self.cfg_layers {
            // E_PP: AP -> AP.
            if !t.pp_src.is_empty() {
                let agg = self.message_pass(
                    g,
                    &bound.pp[l],
                    h_ap,
                    &t.pp_src,
                    &t.pp_dst,
                    pp_deltas,
                    c_full,
                    t.n_aps,
                    &rbf_centers,
                );
                h_ap = g.add(h_ap, agg);
            }
            // E_MP: module -> AP.
            if self.cfg_use_modules && !t.mp_src_m.is_empty() {
                let agg = self.message_pass(
                    g,
                    &bound.mp[l],
                    h_m,
                    &t.mp_src_m,
                    &t.mp_dst_a,
                    mp_deltas,
                    c_full,
                    t.n_aps,
                    &rbf_centers,
                );
                h_ap = g.add(h_ap, agg);
                // E_PM: AP -> module (reverse direction, same deltas/C).
                let v_src = g.gather(h_ap, &t.mp_dst_a);
                let c_dst = g.gather(c_full, &t.mp_dst_a);
                let scaled = g.mul(c_dst, mp_deltas);
                let sq = g.square(scaled);
                let ssum = g.sum_cols(sq);
                let d = g.sqrt(ssum);
                let psi = if self.cfg_use_rbf {
                    g.rbf(d, self.cfg_rbf_gamma, &rbf_centers)
                } else {
                    d
                };
                let a = bound.pm[l].src.forward(g, v_src);
                let bm = bound.pm[l].rbf.forward(g, psi);
                let prod = g.mul(a, bm);
                let msg = bound.pm[l].out.forward(g, prod);
                let agg_m = g.scatter_add(msg, &t.mp_src_m, t.n_modules);
                h_m = g.add(h_m, agg_m);
            }
            // E_MM: module -> module (logical, no distance term).
            if self.cfg_use_modules && !t.mm_src.is_empty() {
                let v_src = g.gather(h_m, &t.mm_src);
                let msg = bound.mm[l].forward(g, v_src);
                let agg = g.scatter_add(msg, &t.mm_dst, t.n_modules);
                h_m = g.add(h_m, agg);
            }
        }

        // Global readout: u = Σ MLP(v) over both node sets (Eq. 4's φ_u),
        // scaled by 1/N (equivalent up to head weights, but keeps the head's
        // input O(1) so the guidance-driven modulation is not drowned out).
        let r_ap = bound.readout.forward(g, h_ap);
        let r_m = bound.readout.forward(g, h_m);
        let ones_ap = g.input(Tensor::ones(1, t.n_aps));
        let ones_m = g.input(Tensor::ones(1, t.n_modules));
        let sum_ap = g.matmul(ones_ap, r_ap);
        let sum_m = g.matmul(ones_m, r_m);
        let u = g.add(sum_ap, sum_m);
        let u = g.scale(u, 1.0 / (t.n_aps + t.n_modules) as f64);
        bound.head.forward(g, u)
    }

    /// Trains on a dataset of (guidance, metrics) pairs; returns per-epoch
    /// mean L2 loss on normalized targets.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or guidance lengths mismatch the graph.
    pub fn train(
        &mut self,
        graph: &HeteroGraph,
        dataset: &Dataset,
        cfg: &GnnConfig,
    ) -> TrainReport {
        assert!(!dataset.samples.is_empty(), "empty dataset");
        let t = GraphTensors::new(graph);
        assert_eq!(
            dataset.samples[0].guidance.len(),
            t.guidance_len(),
            "guidance length mismatch"
        );
        self.stats = TargetStats::fit(dataset);

        let mut g = Graph::new();
        let bound = self.bind(&mut g, false);
        let params: Vec<NodeId> = {
            let mut p = bound.ap_encoder.params();
            p.extend(bound.m_encoder.params());
            for w in &bound.pp {
                p.extend(MessageWeights::params(w));
            }
            for w in &bound.mp {
                p.extend(MessageWeights::params(w));
            }
            for w in &bound.pm {
                p.extend(MessageWeights::params(w));
            }
            for m in &bound.mm {
                p.extend(m.params());
            }
            p.extend(bound.readout.params());
            p.extend(bound.head.params());
            p
        };
        let mut opt = Adam::new(
            params,
            AdamConfig {
                lr: cfg.lr,
                ..AdamConfig::default()
            },
            &g,
        );

        let _train = af_obs::span!("gnn_train");
        let mut order: Vec<usize> = (0..dataset.samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xdead);
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let _e = af_obs::span!("epoch", epoch);
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &si in &order {
                let sample = &dataset.samples[si];
                g.reset();
                let c = g.input(Tensor::from_vec(
                    sample.guidance.clone(),
                    t.guided_idx.len(),
                    3,
                ));
                let pred = self.forward(&mut g, &bound, &t, c);
                let target = g.input(Tensor::from_vec(
                    self.stats.normalize(&sample.metrics()).to_vec(),
                    1,
                    5,
                ));
                let loss = g.mse(pred, target);
                g.backward(loss);
                total += g.value(loss).get(0, 0);
                opt.step(&mut g);
            }
            epoch_losses.push(total / dataset.samples.len() as f64);
        }
        // Persist trained weights.
        self.ap_encoder.sync_from(&g, &bound.ap_encoder);
        self.m_encoder.sync_from(&g, &bound.m_encoder);
        for (w, b) in self.pp.iter_mut().zip(&bound.pp) {
            w.sync(&g, b);
        }
        for (w, b) in self.mp.iter_mut().zip(&bound.mp) {
            w.sync(&g, b);
        }
        for (w, b) in self.pm.iter_mut().zip(&bound.pm) {
            w.sync(&g, b);
        }
        for (w, b) in self.mm.iter_mut().zip(&bound.mm) {
            w.sync_from(&g, b);
        }
        self.readout.sync_from(&g, &bound.readout);
        self.head.sync_from(&g, &bound.head);

        let final_loss = *epoch_losses.last().expect("at least one epoch");
        TrainReport {
            epoch_losses,
            final_loss,
        }
    }

    /// Predicts the five (unnormalized) metrics for a guidance vector.
    ///
    /// # Panics
    ///
    /// Panics if `guidance.len()` mismatches the graph's guided APs × 3.
    pub fn predict(&self, graph: &HeteroGraph, guidance: &[f64]) -> [f64; 5] {
        let t = crate::cache::tensors_cached(graph);
        assert_eq!(guidance.len(), t.guidance_len(), "guidance length mismatch");
        let mut g = Graph::new();
        let bound = self.bind(&mut g, true);
        let c = g.input(Tensor::from_vec(guidance.to_vec(), t.guided_idx.len(), 3));
        let pred = self.forward(&mut g, &bound, &t, c);
        let row = g.value(pred);
        let normalized = [
            row.get(0, 0),
            row.get(0, 1),
            row.get(0, 2),
            row.get(0, 3),
            row.get(0, 4),
        ];
        self.stats.denormalize(&normalized)
    }

    /// Weighted FoM of the normalized predictions and its gradient w.r.t.
    /// the guidance vector: `f(C) = Σ_k w_k · ŷ_norm_k`.
    ///
    /// The relaxation minimizes this (plus a barrier), so weights are
    /// positive for lower-is-better metrics and negative for
    /// higher-is-better ones.
    pub fn fom_and_grad(
        &self,
        tensors: &GraphTensors,
        guidance: &[f64],
        weights: &[f64; 5],
    ) -> (f64, Vec<f64>) {
        // The relaxation's hot path: time surrogate evaluations only when
        // recording is on (the measured wall time never feeds the result).
        let t0 = af_obs::enabled().then(std::time::Instant::now);
        let mut g = Graph::new();
        let c = g.param(Tensor::from_vec(
            guidance.to_vec(),
            tensors.guided_idx.len(),
            3,
        ));
        let bound = self.bind(&mut g, true);
        let pred = self.forward(&mut g, &bound, tensors, c);
        let w = g.input(Tensor::from_vec(weights.to_vec(), 1, 5));
        let weighted = g.mul(pred, w);
        let fom = g.sum(weighted);
        g.backward(fom);
        if let Some(t0) = t0 {
            af_obs::hist("gnn.fom_grad_us", t0.elapsed().as_secs_f64() * 1e6);
            af_obs::counter("gnn.fom_grad_evals", 1);
        }
        (g.value(fom).get(0, 0), g.grad(c).data().to_vec())
    }

    /// Builds the constant tensor cache for a graph (shared across many
    /// relaxation evaluations). Served from the process-wide prefix cache
    /// when enabled; the tensors are a pure function of the graph content
    /// either way.
    pub fn tensors(&self, graph: &HeteroGraph) -> std::sync::Arc<GraphTensors> {
        crate::cache::tensors_cached(graph)
    }

    /// Total scalar parameter count across every weight matrix and bias.
    /// Persisted in the model file header as a cheap integrity checksum.
    pub fn param_count(&self) -> usize {
        let msg =
            |w: &MessageWeights| w.src.param_count() + w.rbf.param_count() + w.out.param_count();
        self.ap_encoder.param_count()
            + self.m_encoder.param_count()
            + self.pp.iter().map(msg).sum::<usize>()
            + self.mp.iter().map(msg).sum::<usize>()
            + self.pm.iter().map(msg).sum::<usize>()
            + self.mm.iter().map(Mlp::param_count).sum::<usize>()
            + self.readout.param_count()
            + self.head.param_count()
    }

    /// Opens a long-lived prediction session for one graph: the tensor
    /// cache is built once and the weights are bound into a reusable
    /// autograd graph, so repeated predictions skip both. This is what
    /// keeps a resident model (e.g. `af-serve`) cheap per request.
    ///
    /// Weights are bound as *persistent* parameters — `Graph::reset`
    /// truncates transient inputs but keeps parameters, which is exactly
    /// the reuse contract `train` relies on — so every
    /// [`PredictSession::predict`] is bit-identical to
    /// [`ThreeDGnn::predict`].
    pub fn session(&self, graph: &HeteroGraph) -> PredictSession {
        let tensors = crate::cache::tensors_cached(graph);
        let mut g = Graph::new();
        let bound = self.bind(&mut g, false);
        PredictSession {
            gnn: self.clone(),
            tensors,
            graph: g,
            bound,
        }
    }
}

/// A reusable prediction context: one graph's tensor cache plus a bound
/// autograd graph, amortized across many [`predict`](Self::predict) calls.
/// Created by [`ThreeDGnn::session`].
pub struct PredictSession {
    gnn: ThreeDGnn,
    tensors: std::sync::Arc<GraphTensors>,
    graph: Graph,
    bound: BoundGnn,
}

impl PredictSession {
    /// Length of the flattened guidance vector the session expects.
    pub fn guidance_len(&self) -> usize {
        self.tensors.guidance_len()
    }

    /// Predicts the five (unnormalized) metrics for one guidance vector.
    /// Bit-identical to [`ThreeDGnn::predict`] on the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `guidance.len()` mismatches the graph's guided APs × 3.
    pub fn predict(&mut self, guidance: &[f64]) -> [f64; 5] {
        assert_eq!(
            guidance.len(),
            self.tensors.guidance_len(),
            "guidance length mismatch"
        );
        self.graph.reset();
        let c = self.graph.input(Tensor::from_vec(
            guidance.to_vec(),
            self.tensors.guided_idx.len(),
            3,
        ));
        let pred = self
            .gnn
            .forward(&mut self.graph, &self.bound, &self.tensors, c);
        let row = self.graph.value(pred);
        let normalized = [
            row.get(0, 0),
            row.get(0, 1),
            row.get(0, 2),
            row.get(0, 3),
            row.get(0, 4),
        ];
        self.gnn.stats.denormalize(&normalized)
    }

    /// Predicts a batch of guidance vectors. Each element is computed
    /// independently (identical to calling [`predict`](Self::predict) per
    /// item), so batching changes throughput, never results.
    pub fn predict_batch(&mut self, batch: &[Vec<f64>]) -> Vec<[f64; 5]> {
        batch.iter().map(|c| self.predict(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_sim::Performance;
    use af_tech::Technology;

    fn tiny_graph() -> HeteroGraph {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        HeteroGraph::build(&c, &p, &Technology::nm40(), 2)
    }

    fn synthetic_dataset(graph: &HeteroGraph, n: usize) -> Dataset {
        // target: offset is the mean of guidance x-components (a learnable
        // smooth function), other metrics constants
        let t = GraphTensors::new(graph);
        let len = t.guidance_len();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut samples = Vec::new();
        for _ in 0..n {
            use rand::Rng;
            let guidance: Vec<f64> = (0..len).map(|_| rng.gen_range(0.2..2.0)).collect();
            let mean_x: f64 = guidance.iter().step_by(3).sum::<f64>() / (len as f64 / 3.0);
            samples.push(Sample {
                guidance,
                performance: Performance {
                    offset_uv: 100.0 * mean_x,
                    cmrr_db: 80.0,
                    bandwidth_mhz: 50.0 + 10.0 * mean_x,
                    dc_gain_db: 40.0,
                    noise_uvrms: 300.0,
                },
            });
        }
        Dataset { samples }
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let graph = tiny_graph();
        let gnn = ThreeDGnn::new(&GnnConfig::default());
        let t = GraphTensors::new(&graph);
        let c = vec![1.0; t.guidance_len()];
        let y1 = gnn.predict(&graph, &c);
        let y2 = gnn.predict(&graph, &c);
        assert_eq!(y1, y2);
        assert!(y1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prediction_depends_on_guidance() {
        let graph = tiny_graph();
        let gnn = ThreeDGnn::new(&GnnConfig::default());
        let t = GraphTensors::new(&graph);
        let a = gnn.predict(&graph, &vec![0.5; t.guidance_len()]);
        let b = gnn.predict(&graph, &vec![2.0; t.guidance_len()]);
        assert_ne!(a, b, "guidance must influence the prediction");
    }

    #[test]
    fn training_reduces_loss() {
        let graph = tiny_graph();
        let cfg = GnnConfig {
            epochs: 80,
            lr: 5e-3,
            hidden: 12,
            layers: 1,
            ..GnnConfig::default()
        };
        let mut gnn = ThreeDGnn::new(&cfg);
        let data = synthetic_dataset(&graph, 24);
        let report = gnn.train(&graph, &data, &cfg);
        // with the 1/N readout the initial loss already sits near the
        // mean-predictor level, so expect a solid but not 2x reduction
        assert!(
            report.final_loss < report.epoch_losses[0] * 0.75,
            "loss {} -> {}",
            report.epoch_losses[0],
            report.final_loss
        );
    }

    #[test]
    fn session_predictions_bit_identical_to_one_shot() {
        let graph = tiny_graph();
        let cfg = GnnConfig {
            hidden: 8,
            layers: 1,
            epochs: 5,
            ..GnnConfig::default()
        };
        let mut gnn = ThreeDGnn::new(&cfg);
        let data = synthetic_dataset(&graph, 8);
        gnn.train(&graph, &data, &cfg);
        let t = GraphTensors::new(&graph);
        let mut session = gnn.session(&graph);
        assert_eq!(session.guidance_len(), t.guidance_len());
        let inputs: Vec<Vec<f64>> = [0.4, 1.0, 1.7]
            .iter()
            .map(|&v| vec![v; t.guidance_len()])
            .collect();
        // Repeated session predicts (graph reuse across resets) must match
        // the fresh-graph one-shot path exactly, in any order.
        for c in inputs.iter().chain(inputs.iter().rev()) {
            assert_eq!(session.predict(c), gnn.predict(&graph, c));
        }
        let batched = session.predict_batch(&inputs);
        for (c, got) in inputs.iter().zip(&batched) {
            assert_eq!(*got, gnn.predict(&graph, c));
        }
    }

    #[test]
    fn param_count_matches_architecture() {
        let cfg = GnnConfig {
            hidden: 8,
            layers: 2,
            ..GnnConfig::default()
        };
        let gnn = ThreeDGnn::new(&cfg);
        let count = gnn.param_count();
        assert!(count > 0);
        // Doubling the layer count adds exactly the per-layer weights.
        let one = ThreeDGnn::new(&GnnConfig {
            layers: 1,
            ..cfg.clone()
        });
        assert!(count > one.param_count());
        // Same config → same count (it is a pure function of architecture).
        assert_eq!(count, ThreeDGnn::new(&cfg).param_count());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let graph = tiny_graph();
        let gnn = ThreeDGnn::new(&GnnConfig {
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        });
        let t = GraphTensors::new(&graph);
        let w = [1.0, -1.0, -1.0, -1.0, 1.0];
        let c0 = vec![1.0; t.guidance_len()];
        let (f0, grad) = gnn.fom_and_grad(&t, &c0, &w);
        assert!(f0.is_finite());
        let eps = 1e-5;
        for i in [0usize, 1, 2, t.guidance_len() - 1] {
            let mut cp = c0.clone();
            cp[i] += eps;
            let (fp, _) = gnn.fom_and_grad(&t, &cp, &w);
            let numeric = (fp - f0) / eps;
            assert!(
                (grad[i] - numeric).abs() < 1e-3 * (1.0 + numeric.abs()),
                "grad[{i}] {} vs numeric {}",
                grad[i],
                numeric
            );
        }
    }
}
