//! The crate-level error type.
//!
//! [`enum@Error`] unifies every failure the flow can surface —
//! [`FlowError`], [`DatasetError`], [`PersistError`], [`RouteError`],
//! [`SimError`], [`NetlistError`], and configuration validation — behind one
//! enum, and each `From` conversion captures the observability span path
//! active where the error occurred ([`af_obs::current_path`]; empty when
//! recording is disabled). All error enums in the workspace, this one
//! included, are `#[non_exhaustive]`: downstream matches must carry a
//! wildcard arm so new failure modes are not breaking changes.

use af_route::RouteError;
use af_sim::SimError;

use crate::dataset::DatasetError;
use crate::flow::FlowError;
use crate::persist::PersistError;

/// Any failure of the AnalogFold flow, CLI, or persistence layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A flow-stage failure (routing/simulation inside the pipeline).
    Flow {
        /// Observability span path where the error occurred (`""` when
        /// recording was disabled).
        span: String,
        /// The underlying failure.
        source: FlowError,
    },
    /// Dataset generation failed.
    Dataset {
        /// Span path at the point of failure.
        span: String,
        /// The underlying failure.
        source: DatasetError,
    },
    /// Model/dataset persistence failed.
    Persist {
        /// Span path at the point of failure.
        span: String,
        /// The underlying failure.
        source: PersistError,
    },
    /// Detailed routing failed.
    Route {
        /// Span path at the point of failure.
        span: String,
        /// The underlying failure.
        source: RouteError,
    },
    /// Circuit simulation failed.
    Sim {
        /// Span path at the point of failure.
        span: String,
        /// The underlying failure.
        source: SimError,
    },
    /// Netlist construction/lookup failed.
    Netlist {
        /// Span path at the point of failure.
        span: String,
        /// The underlying failure.
        source: af_netlist::NetlistError,
    },
    /// A configuration was rejected at `build()`/validation time.
    Config {
        /// Span path at the point of failure.
        span: String,
        /// What was invalid.
        message: String,
    },
}

impl Error {
    /// The observability span path where the error occurred (`""` when
    /// recording was disabled at that point).
    #[must_use]
    pub fn span(&self) -> &str {
        match self {
            Error::Flow { span, .. }
            | Error::Dataset { span, .. }
            | Error::Persist { span, .. }
            | Error::Route { span, .. }
            | Error::Sim { span, .. }
            | Error::Netlist { span, .. }
            | Error::Config { span, .. } => span,
        }
    }

    /// A configuration error at the current span path.
    #[must_use]
    pub fn config(message: impl Into<String>) -> Self {
        Error::Config {
            span: af_obs::current_path(),
            message: message.into(),
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// The classification (see DESIGN.md §11 for the full table):
    ///
    /// - **Persistence I/O** is transient — disks fill, network filesystems
    ///   blip, chaos tests inject. Serialization/header failures are not:
    ///   they are deterministic properties of the data.
    /// - **Injected faults** ([`af_fault::is_injected`]) are transient by
    ///   contract: the real operation never ran.
    /// - **Routing** (`Unroutable`), **simulation** (`Singular`),
    ///   **netlist**, and **configuration** failures are deterministic
    ///   functions of their inputs — retrying recomputes the same failure.
    /// - **Dataset** failures delegate to
    ///   [`DatasetError::is_transient`](crate::dataset::DatasetError::is_transient)
    ///   (worker panics are retried once under fault injection; see there).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        if af_fault::is_injected(&self.to_string()) {
            return true;
        }
        match self {
            Error::Persist { source, .. } => source.is_transient(),
            Error::Dataset { source, .. } => source.is_transient(),
            Error::Flow { .. }
            | Error::Route { .. }
            | Error::Sim { .. }
            | Error::Netlist { .. }
            | Error::Config { .. } => false,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (what, span): (&dyn std::fmt::Display, &str) = match self {
            Error::Flow { span, source } => (source, span),
            Error::Dataset { span, source } => (source, span),
            Error::Persist { span, source } => (source, span),
            Error::Route { span, source } => (source, span),
            Error::Sim { span, source } => (source, span),
            Error::Netlist { span, source } => (source, span),
            Error::Config { span, message } => {
                if span.is_empty() {
                    return write!(f, "invalid configuration: {message}");
                }
                return write!(f, "invalid configuration (at `{span}`): {message}");
            }
        };
        if span.is_empty() {
            write!(f, "{what}")
        } else {
            write!(f, "{what} (at `{span}`)")
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Flow { source, .. } => Some(source),
            Error::Dataset { source, .. } => Some(source),
            Error::Persist { source, .. } => Some(source),
            Error::Route { source, .. } => Some(source),
            Error::Sim { source, .. } => Some(source),
            Error::Netlist { source, .. } => Some(source),
            Error::Config { .. } => None,
        }
    }
}

impl From<FlowError> for Error {
    fn from(source: FlowError) -> Self {
        // Promote the inner failure to the dedicated variant so callers can
        // match the root cause without unwrapping two layers.
        match source {
            FlowError::Route(e) => Error::from(e),
            FlowError::Sim(e) => Error::from(e),
            other => Error::Flow {
                span: af_obs::current_path(),
                source: other,
            },
        }
    }
}

impl From<DatasetError> for Error {
    fn from(source: DatasetError) -> Self {
        Error::Dataset {
            span: af_obs::current_path(),
            source,
        }
    }
}

impl From<PersistError> for Error {
    fn from(source: PersistError) -> Self {
        Error::Persist {
            span: af_obs::current_path(),
            source,
        }
    }
}

impl From<RouteError> for Error {
    fn from(source: RouteError) -> Self {
        Error::Route {
            span: af_obs::current_path(),
            source,
        }
    }
}

impl From<SimError> for Error {
    fn from(source: SimError) -> Self {
        Error::Sim {
            span: af_obs::current_path(),
            source,
        }
    }
}

impl From<af_netlist::NetlistError> for Error {
    fn from(source: af_netlist::NetlistError) -> Self {
        Error::Netlist {
            span: af_obs::current_path(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_capture_span_and_source() {
        let e = Error::from(SimError::Singular);
        assert_eq!(e.span(), "", "obs disabled => empty span");
        assert!(matches!(e, Error::Sim { .. }));
        assert!(std::error::Error::source(&e).is_some());

        let e = Error::from(FlowError::Sim(SimError::Singular));
        assert!(matches!(e, Error::Sim { .. }), "flow wrapper unwrapped");
    }

    #[test]
    fn display_includes_span_when_present() {
        let e = Error::Route {
            span: "flow/guided_route".into(),
            source: RouteError::Unroutable {
                net: af_netlist::NetId::new(0),
                name: "out".into(),
            },
        };
        let text = e.to_string();
        assert!(text.contains("flow/guided_route"), "{text}");
        let c = Error::config("samples must be >= 1");
        assert!(c.to_string().contains("samples must be >= 1"));
        assert_eq!(c.span(), "");
    }
}
