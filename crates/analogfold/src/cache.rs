//! Memoization tiers wiring [`af_cache`] into the AnalogFold pipeline.
//!
//! Three tiers, all keyed by the stable 128-bit [`ContentHash`] so a cached
//! result can only ever be returned for exactly the content that produced
//! it (see DESIGN.md §10 for the determinism argument):
//!
//! - **Tier A (relaxation)** — [`FomMemo`] memoizes exact-duplicate
//!   `f_θ(G_H, C)` evaluations across pool-seeded L-BFGS restarts, and
//!   [`tensors_cached`] caches the C-independent GNN-forward prefix
//!   ([`GraphTensors`]: neighbor lists, edge deltas, static features) per
//!   design across [`crate::Potential`] / session constructions.
//! - **Tier B (serve)** — `af-serve` keys whole `/v1/predict` and
//!   `/v1/guide` response bodies by request content hash (see
//!   `crates/serve`).
//! - **Tier C (flow/dataset)** — [`EvalCache`] memoizes guidance→route
//!   results (`route → extract → simulate` → [`Performance`]) by
//!   `(design hash, guidance key)`, with optional disk spill so dataset
//!   generation shards and resumed runs skip already-routed samples.
//!
//! All tiers respect the process-wide [`set_cache_enabled`] switch
//! (`--no-cache` on the CLI).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use af_cache::persist::SpillBackend;
use af_cache::{Cache, CacheBuilder, CacheStats, ContentHash, ContentHasher, FnWeigher};
use af_route::RouterConfig;
use af_sim::{Performance, SimConfig};

use crate::gnn::GraphTensors;
use crate::hetero::HeteroGraph;

static CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide cache switch. When disabled every tier computes from
/// scratch; results are bit-identical either way (enforced by the
/// workspace determinism tests) — only wall-clock and memory change.
pub fn set_cache_enabled(enabled: bool) {
    CACHE_ENABLED.store(enabled, Ordering::Release);
}

/// Whether the caching tiers are currently enabled.
#[must_use]
pub fn cache_enabled() -> bool {
    CACHE_ENABLED.load(Ordering::Acquire)
}

/// Canonically hashes a serde [`serde::Value`] tree: every variant is
/// tag-disciplined, map keys and order are part of the content, floats hash
/// by exact bit pattern, and non-negative `Int`/`UInt` hash identically (a
/// JSON round trip may surface either variant for the same document).
pub fn hash_value(h: &mut ContentHasher, v: &serde::Value) {
    match v {
        serde::Value::Null => h.write_u8(0),
        serde::Value::Bool(b) => {
            h.write_u8(1);
            h.write_u8(u8::from(*b));
        }
        serde::Value::Int(i) if *i >= 0 => {
            h.write_u8(3);
            h.write_u64(*i as u64);
        }
        serde::Value::Int(i) => {
            h.write_u8(2);
            h.write_i64(*i);
        }
        serde::Value::UInt(u) => {
            h.write_u8(3);
            h.write_u64(*u);
        }
        serde::Value::Float(f) => {
            h.write_u8(4);
            h.write_f64(*f);
        }
        serde::Value::Str(s) => {
            h.write_u8(5);
            h.write_str(s);
        }
        serde::Value::Seq(items) => {
            h.write_u8(6);
            h.write_usize(items.len());
            for item in items {
                hash_value(h, item);
            }
        }
        serde::Value::Map(pairs) => {
            h.write_u8(7);
            h.write_usize(pairs.len());
            for (k, val) in pairs {
                h.write_str(k);
                hash_value(h, val);
            }
        }
    }
}

/// Content hash of any serializable value, via its canonical tree. Because
/// the vendored JSON writer renders floats with shortest-round-trip
/// precision, `hash(value)` equals `hash(parse(serialize(value)))` — the
/// property the model-header integrity check relies on.
#[must_use]
pub fn content_hash_of<T: serde::Serialize>(value: &T) -> ContentHash {
    let mut h = ContentHasher::new();
    hash_value(&mut h, &value.to_value());
    h.finish()
}

/// Content hash of one heterogeneous graph: nodes (positions, features,
/// guidance flags), all three edge sets, and the normalization scale. Two
/// placements of the same circuit hash differently; the same placement
/// hashes identically on every run.
#[must_use]
pub fn graph_hash(graph: &HeteroGraph) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_str("hetero-graph");
    h.write_usize(graph.aps.len());
    for ap in &graph.aps {
        h.write_u64(ap.net.index() as u64);
        h.write_i64(ap.pos.x);
        h.write_i64(ap.pos.y);
        h.write_u8(ap.pos.z);
        h.write_u8(u8::from(ap.guided));
        h.write_f64_slice(&ap.features);
        h.write_usize(ap.pin_index);
    }
    h.write_usize(graph.modules.len());
    for m in &graph.modules {
        h.write_i64(m.pos.x);
        h.write_i64(m.pos.y);
        h.write_u8(m.pos.z);
        h.write_f64_slice(&m.features);
    }
    for edges in [&graph.pp_edges, &graph.mp_edges, &graph.mm_edges] {
        h.write_usize(edges.len());
        for &(a, b) in edges.iter() {
            h.write_usize(a);
            h.write_usize(b);
        }
    }
    h.write_f64(graph.scale);
    h.write_i64(graph.layer_pitch);
    h.finish()
}

/// The design-level key of tier C: everything the guidance→performance
/// mapping depends on besides the guidance itself — the graph (which
/// captures circuit, placement, and tech geometry) plus the router and
/// simulator settings.
#[must_use]
pub fn design_eval_hash(
    graph: &HeteroGraph,
    router: &RouterConfig,
    sim: &SimConfig,
) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_str("design-eval");
    let g = graph_hash(graph);
    h.write_u64(g.0[0]);
    h.write_u64(g.0[1]);
    // RouterConfig and SimConfig are not serde-serializable; hash their
    // fields directly. RouterConfig is `#[non_exhaustive]`, so the binding
    // below needs `..` — any new af-route knob that can change the layout
    // must be added here by hand. `threads` is deliberately excluded: the
    // router's determinism contract makes layouts thread-count independent.
    let RouterConfig {
        coarsen,
        via_cost,
        wrong_dir_mult,
        present_cost,
        history_increment,
        reuse_discount,
        min_guidance,
        bend_penalty,
        max_iterations,
        enforce_symmetry,
        open_list,
        bidirectional,
        guidance_aware_h,
        ..
    } = router.clone();
    h.write_i64(coarsen);
    h.write_f64(via_cost);
    h.write_f64(wrong_dir_mult);
    h.write_f64(present_cost);
    h.write_f64(f64::from(history_increment));
    h.write_f64(reuse_discount);
    h.write_f64(min_guidance);
    h.write_f64(bend_penalty);
    h.write_u64(u64::from(max_iterations));
    h.write_u8(u8::from(enforce_symmetry));
    h.write_u8(match open_list {
        af_route::OpenListKind::Bucket => 0,
        af_route::OpenListKind::Heap => 1,
        _ => u8::MAX,
    });
    h.write_u8(u8::from(bidirectional));
    h.write_u8(u8::from(guidance_aware_h));
    h.write_f64(sim.f_start);
    h.write_f64(sim.f_stop);
    h.write_usize(sim.points_per_decade);
    h.write_f64(sim.supply_noise_v2hz);
    h.write_f64(sim.gamma_noise);
    h.write_f64(sim.temperature);
    h.write_f64(sim.v_overdrive);
    h.write_f64(sim.cmrr_cap_db);
    h.write_f64(sim.cmrr_mismatch_ref_uv);
    h.finish()
}

/// Tier-C sample key: `(design hash, quantized C)`.
///
/// `quant == 0.0` (the default everywhere determinism matters) keys by the
/// exact bit pattern of the guidance, so a hit is guaranteed bit-identical
/// to recomputation. A positive `quant` snaps each component to that grid
/// before hashing — higher hit rates for near-duplicate guidance across
/// runs, at the cost of returning the result of a grid-neighbor instead of
/// the exact input. Only enable it for workloads that tolerate that
/// (e.g. exploratory sweeps), never under a determinism contract.
#[must_use]
pub fn guidance_key(design: &ContentHash, guidance: &[f64], quant: f64) -> ContentHash {
    let mut h = ContentHasher::new();
    h.write_str("guidance");
    h.write_u64(design.0[0]);
    h.write_u64(design.0[1]);
    if quant > 0.0 {
        h.write_f64(quant);
        h.write_usize(guidance.len());
        for &c in guidance {
            h.write_f64((c / quant).round() * quant);
        }
    } else {
        h.write_f64_slice(guidance);
    }
    h.finish()
}

/// Process-wide cache of the C-independent GNN-forward prefix: one
/// [`GraphTensors`] per distinct graph content. Bounded at 64 MiB; entries
/// are shared by `Arc`, so a cached prefix costs nothing to reuse across
/// [`crate::Potential`] constructions, one-shot predictions, and serve
/// sessions on the same design.
fn tensor_cache() -> &'static Cache<ContentHash, Arc<GraphTensors>> {
    static CACHE: OnceLock<Cache<ContentHash, Arc<GraphTensors>>> = OnceLock::new();
    CACHE.get_or_init(|| {
        CacheBuilder::new("tensors")
            .capacity_mb(64)
            .build_weighed(FnWeigher(|_k: &ContentHash, v: &Arc<GraphTensors>| {
                v.approx_bytes() as u64
            }))
    })
}

/// The C-independent forward prefix for `graph`, from the process-wide
/// cache when enabled (falling back to a fresh build when disabled or on a
/// miss). The tensors are a pure function of the graph content, so cached
/// and fresh prefixes are identical.
pub(crate) fn tensors_cached(graph: &HeteroGraph) -> Arc<GraphTensors> {
    if !cache_enabled() {
        return Arc::new(GraphTensors::new(graph));
    }
    tensor_cache().get_or_insert_with(graph_hash(graph), || Arc::new(GraphTensors::new(graph)))
}

/// Hit/miss counters of the process-wide tensor-prefix cache.
#[must_use]
pub fn tensor_cache_stats() -> CacheStats {
    tensor_cache().stats()
}

/// Tier A: memoizes `(FoM, ∇FoM)` evaluations of the surrogate during
/// relaxation. Keys cover the FoM weights and the exact guidance bits, so
/// a hit replays exactly the evaluation that would have been computed —
/// pool-seeded restarts that revisit a guidance point skip the full
/// forward/backward pass.
pub struct FomMemo {
    cache: Cache<ContentHash, (f64, Vec<f64>)>,
}

impl FomMemo {
    /// A memo bounded at `capacity_mb` MiB (entries weighed by gradient
    /// length).
    #[must_use]
    pub fn new(capacity_mb: u64) -> Self {
        Self {
            cache: CacheBuilder::new("fom")
                .capacity_mb(capacity_mb.max(1))
                .build_weighed(FnWeigher(|_k: &ContentHash, v: &(f64, Vec<f64>)| {
                    48 + 8 * v.1.len() as u64
                })),
        }
    }

    /// The memo key for one evaluation point.
    #[must_use]
    pub fn key(weights: &[f64; 5], c: &[f64]) -> ContentHash {
        let mut h = ContentHasher::new();
        h.write_str("fom");
        h.write_f64_slice(weights);
        h.write_f64_slice(c);
        h.finish()
    }

    /// Returns the memoized evaluation or computes, stores, and returns it.
    pub fn get_or_compute(
        &self,
        key: ContentHash,
        compute: impl FnOnce() -> (f64, Vec<f64>),
    ) -> (f64, Vec<f64>) {
        self.cache.get_or_insert_with(key, compute)
    }

    /// Counter snapshot (hits, misses, bytes, …).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Tier C: memoizes guidance→route evaluation results ([`Performance`])
/// with optional disk spill for cross-run warm caches. See
/// [`design_eval_hash`] / [`guidance_key`] for the keying.
pub struct EvalCache {
    mem: Cache<ContentHash, Performance>,
    spill: Option<Arc<dyn SpillBackend>>,
}

impl EvalCache {
    /// An in-memory evaluation cache bounded at `capacity_mb` MiB.
    #[must_use]
    pub fn new(capacity_mb: u64) -> Self {
        Self {
            mem: CacheBuilder::new("eval")
                .capacity_mb(capacity_mb.max(1))
                .build_weighed(FnWeigher(|_k: &ContentHash, _v: &Performance| 32 + 40)),
            spill: None,
        }
    }

    /// Adds a disk-spill backend (e.g. the dataset checkpoint
    /// [`crate::ShardStore`]): stores write through to disk, and an
    /// in-memory miss consults the backend before giving up — that is what
    /// lets a *resumed* run skip samples an earlier process already routed.
    #[must_use]
    pub fn with_spill(mut self, spill: Arc<dyn SpillBackend>) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Looks up a performance by key: memory first, then the spill backend
    /// (promoting a disk hit into memory). Corrupt or unreadable spill
    /// entries degrade to a miss.
    #[must_use]
    pub fn lookup(&self, key: &ContentHash) -> Option<Performance> {
        if let Some(perf) = self.mem.get(key) {
            return Some(perf);
        }
        let spill = self.spill.as_ref()?;
        let bytes = spill.get(key).ok().flatten()?;
        let text = String::from_utf8(bytes).ok()?;
        let perf: Performance = serde_json::from_str(&text).ok()?;
        af_obs::counter("cache.eval.spill_hits", 1);
        self.mem.insert(*key, perf);
        Some(perf)
    }

    /// Stores a performance under `key` (memory + spill when configured).
    pub fn store(&self, key: ContentHash, perf: &Performance) {
        self.mem.insert(key, *perf);
        if let Some(spill) = &self.spill {
            if let Ok(text) = serde_json::to_string(perf) {
                if spill.put(&key, text.as_bytes()).is_ok() {
                    af_obs::counter("cache.eval.spill_stores", 1);
                }
            }
        }
    }

    /// Counter snapshot of the in-memory tier.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.mem.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;
    use af_place::{place, PlacementVariant};
    use af_tech::Technology;
    use serde::Serialize;

    fn graph() -> HeteroGraph {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        HeteroGraph::build(&c, &p, &Technology::nm40(), 2)
    }

    #[test]
    fn graph_hash_is_stable_and_content_sensitive() {
        let g = graph();
        assert_eq!(graph_hash(&g), graph_hash(&g));
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::B);
        let g2 = HeteroGraph::build(&c, &p, &Technology::nm40(), 2);
        assert_ne!(graph_hash(&g), graph_hash(&g2), "placement must matter");
        let mut g3 = graph();
        g3.scale += 1.0;
        assert_ne!(graph_hash(&g), graph_hash(&g3), "scale must matter");
    }

    #[test]
    fn value_hash_survives_json_round_trip() {
        let perf = Performance {
            offset_uv: 12.5,
            cmrr_db: 81.0,
            bandwidth_mhz: 55.125,
            dc_gain_db: 39.0625,
            noise_uvrms: 210.0,
        };
        let direct = content_hash_of(&perf);
        let text = serde_json::to_string(&perf).unwrap();
        let tree = serde_json::value_from_str(&text).unwrap();
        let mut h = ContentHasher::new();
        hash_value(&mut h, &tree);
        assert_eq!(direct, h.finish(), "hash must survive serialize→parse");
        // Sanity: the canonical tree itself round-trips.
        assert_eq!(perf.to_value(), tree);
    }

    #[test]
    fn int_uint_variants_hash_identically() {
        let mut a = ContentHasher::new();
        hash_value(&mut a, &serde::Value::Int(7));
        let mut b = ContentHasher::new();
        hash_value(&mut b, &serde::Value::UInt(7));
        assert_eq!(a.finish(), b.finish());
        let mut c = ContentHasher::new();
        hash_value(&mut c, &serde::Value::Int(-7));
        let mut d = ContentHasher::new();
        hash_value(&mut d, &serde::Value::UInt(7));
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn guidance_key_quantization_semantics() {
        let g = graph();
        let design = design_eval_hash(&g, &RouterConfig::default(), &SimConfig::default());
        let c1 = vec![1.0, 2.0, 3.0];
        let mut c2 = c1.clone();
        c2[0] += 1e-13;
        // Exact keying: any bit difference is a different key.
        assert_ne!(
            guidance_key(&design, &c1, 0.0),
            guidance_key(&design, &c2, 0.0)
        );
        // Quantized keying: grid neighbors collapse onto one key.
        assert_eq!(
            guidance_key(&design, &c1, 1e-6),
            guidance_key(&design, &c2, 1e-6)
        );
        // Different designs never share keys.
        let other = ContentHash::of_bytes(b"other design");
        assert_ne!(
            guidance_key(&design, &c1, 0.0),
            guidance_key(&other, &c1, 0.0)
        );
    }

    #[test]
    fn tensors_cached_reuses_the_prefix() {
        let g = graph();
        let a = tensors_cached(&g);
        let b = tensors_cached(&g);
        assert!(
            Arc::ptr_eq(&a, &b),
            "same graph content must share one prefix"
        );
        assert_eq!(a.guidance_len(), GraphTensors::new(&g).guidance_len());
    }

    #[test]
    fn eval_cache_round_trips_and_spills() {
        let perf = Performance {
            offset_uv: 12.5,
            cmrr_db: 81.0,
            bandwidth_mhz: 55.5,
            dc_gain_db: 39.25,
            noise_uvrms: 210.0,
        };
        let key = ContentHash::of_bytes(b"sample");
        let dir = std::env::temp_dir().join(format!("af-evalcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spill = Arc::new(af_cache::persist::DirSpill::new(&dir).unwrap());

        let warm = EvalCache::new(4).with_spill(spill.clone());
        assert!(warm.lookup(&key).is_none());
        warm.store(key, &perf);
        assert_eq!(warm.lookup(&key).unwrap().as_array(), perf.as_array());

        // A fresh cache (fresh process, conceptually) hits through the spill
        // with the exact same bits.
        let resumed = EvalCache::new(4).with_spill(spill);
        let got = resumed.lookup(&key).unwrap();
        assert_eq!(got.as_array(), perf.as_array());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
