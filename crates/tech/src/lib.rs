#![warn(missing_docs)]
//! Technology description for the AnalogFold reproduction.
//!
//! The paper evaluates under the (closed) TSMC 40 nm PDK. This crate provides
//! a self-contained **40 nm-class** technology: four routing metal layers with
//! alternating preferred directions, width/spacing/via design rules, and
//! parasitic constants (sheet resistance, area/fringe capacitance, coupling
//! capacitance) of realistic 40 nm-era magnitude.
//!
//! Everything downstream (router DRC costs, parasitic extraction, and hence
//! the simulated performance metrics) reads its constants from
//! [`Technology`], so swapping in a different process corner is a single
//! constructor call.
//!
//! Units: lengths are integer dbu with **1 dbu = 1 nm**; resistances are ohms;
//! capacitances are farads.
//!
//! # Examples
//!
//! ```
//! use af_tech::Technology;
//!
//! let tech = Technology::nm40();
//! assert_eq!(tech.num_layers(), 4);
//! let r = tech.wire_resistance(0, 1_000); // 1 µm of M1
//! assert!(r > 0.0);
//! ```

mod layer;
mod rules;

pub use layer::{LayerInfo, PreferredDir};
pub use rules::DesignRules;

use serde::{Deserialize, Serialize};

/// A complete routing technology: layer stack, design rules, and parasitic
/// constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    name: String,
    layers: Vec<LayerInfo>,
    rules: DesignRules,
    /// Resistance of a single via cut between adjacent layers, in ohms.
    via_resistance: f64,
    /// Routing grid pitch in dbu.
    grid_pitch: i64,
    /// Vertical pitch between adjacent metal layers in dbu (used when a
    /// z-distance must be expressed in the same unit as x/y distances).
    layer_pitch: i64,
}

impl Technology {
    /// The bundled 40 nm-class technology used by every experiment.
    ///
    /// Four metals M1–M4; odd metals prefer horizontal wires, even metals
    /// vertical (index 0 = M1 = horizontal). Parasitic constants are
    /// representative of a 40 nm LP process:
    ///
    /// * sheet resistance 0.40 Ω/□ (M1/M2), 0.20 Ω/□ (M3), 0.08 Ω/□ (M4)
    /// * ground capacitance ≈ 0.19 fF/µm of wire
    /// * coupling capacitance ≈ 0.085 fF/µm at minimum spacing
    pub fn nm40() -> Self {
        let layers = vec![
            LayerInfo::new(
                "M1",
                PreferredDir::Horizontal,
                70,
                70,
                0.40,
                0.19e-15,
                0.085e-15,
            ),
            LayerInfo::new(
                "M2",
                PreferredDir::Vertical,
                70,
                70,
                0.40,
                0.18e-15,
                0.082e-15,
            ),
            LayerInfo::new(
                "M3",
                PreferredDir::Horizontal,
                100,
                100,
                0.20,
                0.16e-15,
                0.075e-15,
            ),
            LayerInfo::new(
                "M4",
                PreferredDir::Vertical,
                140,
                140,
                0.08,
                0.14e-15,
                0.065e-15,
            ),
        ];
        let rules = DesignRules::for_layers(&layers);
        Self {
            name: "generic-40nm".to_string(),
            layers,
            rules,
            via_resistance: 4.5,
            grid_pitch: 140,
            layer_pitch: 140,
        }
    }

    /// Builds a custom technology.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or `grid_pitch <= 0`.
    pub fn custom(
        name: impl Into<String>,
        layers: Vec<LayerInfo>,
        via_resistance: f64,
        grid_pitch: i64,
    ) -> Self {
        assert!(!layers.is_empty(), "technology needs at least one layer");
        assert!(grid_pitch > 0, "non-positive grid pitch");
        let rules = DesignRules::for_layers(&layers);
        Self {
            name: name.into(),
            layers,
            rules,
            via_resistance,
            grid_pitch,
            layer_pitch: grid_pitch,
        }
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of routing layers.
    pub fn num_layers(&self) -> u8 {
        self.layers.len() as u8
    }

    /// Layer description.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: u8) -> &LayerInfo {
        &self.layers[layer as usize]
    }

    /// All layers, bottom-up.
    pub fn layers(&self) -> &[LayerInfo] {
        &self.layers
    }

    /// Design rules derived from the layer stack.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Routing grid pitch in dbu.
    pub fn grid_pitch(&self) -> i64 {
        self.grid_pitch
    }

    /// Equivalent dbu distance of one layer hop.
    pub fn layer_pitch(&self) -> i64 {
        self.layer_pitch
    }

    /// Resistance of `length` dbu of minimum-width wire on `layer`, in ohms.
    ///
    /// `R = R_sheet · length / width`.
    pub fn wire_resistance(&self, layer: u8, length: i64) -> f64 {
        let info = self.layer(layer);
        info.sheet_resistance * length as f64 / info.min_width as f64
    }

    /// Ground (area + fringe) capacitance of `length` dbu of wire on `layer`.
    pub fn wire_ground_cap(&self, layer: u8, length: i64) -> f64 {
        // ground_cap_per_um is per µm of wire; dbu are nm.
        self.layer(layer).ground_cap_per_um * length as f64 / 1_000.0
    }

    /// Coupling capacitance between two wires on `layer` that run parallel for
    /// `run` dbu at edge separation `sep` dbu.
    ///
    /// Modeled as the minimum-spacing coupling constant scaled by
    /// `s_min / sep` (inverse-distance falloff), zero beyond four grid
    /// pitches.
    pub fn coupling_cap(&self, layer: u8, run: i64, sep: i64) -> f64 {
        let info = self.layer(layer);
        let s_min = info.min_spacing as f64;
        let sep = sep.max(info.min_spacing) as f64;
        if sep > 4.0 * self.grid_pitch as f64 {
            return 0.0;
        }
        info.coupling_cap_per_um * (run as f64 / 1_000.0) * (s_min / sep)
    }

    /// Resistance of a stack of vias spanning `hops` adjacent-layer crossings.
    pub fn via_stack_resistance(&self, hops: u32) -> f64 {
        self.via_resistance * f64::from(hops)
    }

    /// Resistance of a single adjacent-layer via cut.
    pub fn via_resistance(&self) -> f64 {
        self.via_resistance
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::nm40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nm40_layer_stack() {
        let t = Technology::nm40();
        assert_eq!(t.num_layers(), 4);
        assert_eq!(t.layer(0).name, "M1");
        assert_eq!(t.layer(0).preferred, PreferredDir::Horizontal);
        assert_eq!(t.layer(1).preferred, PreferredDir::Vertical);
        assert_eq!(t.layer(3).name, "M4");
        assert!(t.grid_pitch() > 0);
    }

    #[test]
    fn resistance_scales_linearly_with_length() {
        let t = Technology::nm40();
        let r1 = t.wire_resistance(0, 1_000);
        let r2 = t.wire_resistance(0, 2_000);
        assert!((r2 - 2.0 * r1).abs() < 1e-12);
        // 1 µm of M1 at 70 nm width: 0.4 * 1000/70 ≈ 5.71 Ω
        assert!((r1 - 0.4 * 1000.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn upper_layers_are_less_resistive() {
        let t = Technology::nm40();
        assert!(t.wire_resistance(3, 1_000) < t.wire_resistance(0, 1_000));
    }

    #[test]
    fn ground_cap_magnitude() {
        let t = Technology::nm40();
        let c = t.wire_ground_cap(0, 10_000); // 10 µm
        assert!(
            c > 1e-15 && c < 1e-14,
            "10 µm of M1 should be ~1.9 fF, got {c}"
        );
    }

    #[test]
    fn coupling_decays_with_separation() {
        let t = Technology::nm40();
        let near = t.coupling_cap(0, 10_000, 70);
        let far = t.coupling_cap(0, 10_000, 280);
        assert!(near > far && far > 0.0);
        assert_eq!(t.coupling_cap(0, 10_000, 100_000), 0.0);
    }

    #[test]
    fn coupling_clamps_below_min_spacing() {
        let t = Technology::nm40();
        assert_eq!(t.coupling_cap(0, 1_000, 10), t.coupling_cap(0, 1_000, 70));
    }

    #[test]
    fn via_stack() {
        let t = Technology::nm40();
        assert_eq!(t.via_stack_resistance(0), 0.0);
        assert!((t.via_stack_resistance(3) - 3.0 * t.via_resistance()).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Technology::nm40();
        let json = serde_json::to_string(&t).unwrap();
        let back: Technology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn custom_rejects_empty_stack() {
        let _ = Technology::custom("x", vec![], 1.0, 10);
    }
}
