use serde::{Deserialize, Serialize};

use af_geom::Axis;

/// Preferred routing direction of a metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreferredDir {
    /// Wires on this layer should run along X.
    Horizontal,
    /// Wires on this layer should run along Y.
    Vertical,
}

impl PreferredDir {
    /// The geometric axis of this direction.
    pub const fn axis(self) -> Axis {
        match self {
            PreferredDir::Horizontal => Axis::X,
            PreferredDir::Vertical => Axis::Y,
        }
    }

    /// The other in-plane direction.
    pub const fn other(self) -> PreferredDir {
        match self {
            PreferredDir::Horizontal => PreferredDir::Vertical,
            PreferredDir::Vertical => PreferredDir::Horizontal,
        }
    }
}

/// Physical and electrical description of one routing metal layer.
///
/// # Examples
///
/// ```
/// use af_tech::{LayerInfo, PreferredDir};
///
/// let m1 = LayerInfo::new("M1", PreferredDir::Horizontal, 70, 70, 0.4, 0.19e-15, 0.085e-15);
/// assert_eq!(m1.min_width, 70);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerInfo {
    /// Layer name, e.g. `"M1"`.
    pub name: String,
    /// Preferred routing direction.
    pub preferred: PreferredDir,
    /// Minimum wire width in dbu.
    pub min_width: i64,
    /// Minimum same-layer spacing in dbu.
    pub min_spacing: i64,
    /// Sheet resistance in Ω/square.
    pub sheet_resistance: f64,
    /// Ground (area + fringe) capacitance in F per µm of minimum-width wire.
    pub ground_cap_per_um: f64,
    /// Coupling capacitance in F per µm of parallel run at minimum spacing.
    pub coupling_cap_per_um: f64,
}

impl LayerInfo {
    /// Creates a layer description.
    ///
    /// # Panics
    ///
    /// Panics if widths/spacings are non-positive or electrical constants are
    /// negative.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        preferred: PreferredDir,
        min_width: i64,
        min_spacing: i64,
        sheet_resistance: f64,
        ground_cap_per_um: f64,
        coupling_cap_per_um: f64,
    ) -> Self {
        assert!(min_width > 0, "non-positive min width");
        assert!(min_spacing > 0, "non-positive min spacing");
        assert!(sheet_resistance >= 0.0, "negative sheet resistance");
        assert!(ground_cap_per_um >= 0.0, "negative ground cap");
        assert!(coupling_cap_per_um >= 0.0, "negative coupling cap");
        Self {
            name: name.into(),
            preferred,
            min_width,
            min_spacing,
            sheet_resistance,
            ground_cap_per_um,
            coupling_cap_per_um,
        }
    }

    /// Minimum center-to-center pitch of wires on this layer.
    pub fn min_pitch(&self) -> i64 {
        self.min_width + self.min_spacing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preferred_dir_axis() {
        assert_eq!(PreferredDir::Horizontal.axis(), Axis::X);
        assert_eq!(PreferredDir::Vertical.axis(), Axis::Y);
        assert_eq!(PreferredDir::Horizontal.other(), PreferredDir::Vertical);
        assert_eq!(PreferredDir::Vertical.other(), PreferredDir::Horizontal);
    }

    #[test]
    fn pitch() {
        let l = LayerInfo::new("M1", PreferredDir::Horizontal, 70, 80, 0.4, 1e-16, 1e-16);
        assert_eq!(l.min_pitch(), 150);
    }

    #[test]
    #[should_panic(expected = "non-positive min width")]
    fn rejects_zero_width() {
        let _ = LayerInfo::new("M1", PreferredDir::Horizontal, 0, 70, 0.4, 1e-16, 1e-16);
    }

    #[test]
    #[should_panic(expected = "negative sheet resistance")]
    fn rejects_negative_resistance() {
        let _ = LayerInfo::new("M1", PreferredDir::Horizontal, 70, 70, -0.4, 1e-16, 1e-16);
    }
}
