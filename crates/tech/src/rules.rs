use serde::{Deserialize, Serialize};

use crate::LayerInfo;

/// Design rules derived from a layer stack.
///
/// The router and the DRC checker consult these; they are intentionally the
/// handful of rules that dominate analog detailed routing on a gridded
/// 40 nm-class stack: per-layer width/spacing, via enclosure, and a blanket
/// device-keepout margin (the "no routing over active regions" heuristic of
/// Xiao et al., cited by the paper).
///
/// # Examples
///
/// ```
/// use af_tech::Technology;
///
/// let tech = Technology::nm40();
/// assert!(tech.rules().min_spacing(0) > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignRules {
    widths: Vec<i64>,
    spacings: Vec<i64>,
    /// Metal enclosure required around a via cut, in dbu.
    pub via_enclosure: i64,
    /// Keepout margin around device active regions on M1, in dbu.
    pub device_keepout: i64,
}

impl DesignRules {
    /// Derives the rule set from layer descriptions.
    pub fn for_layers(layers: &[LayerInfo]) -> Self {
        Self {
            widths: layers.iter().map(|l| l.min_width).collect(),
            spacings: layers.iter().map(|l| l.min_spacing).collect(),
            via_enclosure: 20,
            device_keepout: 70,
        }
    }

    /// Minimum wire width on `layer` in dbu.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn min_width(&self, layer: u8) -> i64 {
        self.widths[layer as usize]
    }

    /// Minimum same-net-to-other-net spacing on `layer` in dbu.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn min_spacing(&self, layer: u8) -> i64 {
        self.spacings[layer as usize]
    }

    /// Number of layers covered by the rule set.
    pub fn num_layers(&self) -> u8 {
        self.widths.len() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PreferredDir;

    #[test]
    fn rules_follow_layers() {
        let layers = vec![
            LayerInfo::new("M1", PreferredDir::Horizontal, 70, 75, 0.4, 1e-16, 1e-16),
            LayerInfo::new("M2", PreferredDir::Vertical, 100, 110, 0.4, 1e-16, 1e-16),
        ];
        let r = DesignRules::for_layers(&layers);
        assert_eq!(r.num_layers(), 2);
        assert_eq!(r.min_width(0), 70);
        assert_eq!(r.min_spacing(1), 110);
        assert!(r.via_enclosure > 0);
        assert!(r.device_keepout > 0);
    }
}
