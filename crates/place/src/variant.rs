use serde::{Deserialize, Serialize};

use af_netlist::NetType;

/// A net-weight variant: the paper's "A/B/C/D represents placements of
/// different net weights".
///
/// Each variant scales the netlist's net weights by class and reseeds the
/// annealer, so the same circuit yields structurally different legal
/// placements.
///
/// # Examples
///
/// ```
/// use af_place::PlacementVariant;
///
/// assert_eq!(PlacementVariant::ALL.len(), 4);
/// assert_eq!(PlacementVariant::A.label(), "A");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementVariant {
    /// Baseline weights as annotated in the netlist.
    A,
    /// Input-emphasis: differential inputs dominate.
    B,
    /// Output-emphasis: outputs and sensitive nodes dominate.
    C,
    /// Uniform weights (every net equal).
    D,
}

impl PlacementVariant {
    /// All variants in order.
    pub const ALL: [PlacementVariant; 4] = [
        PlacementVariant::A,
        PlacementVariant::B,
        PlacementVariant::C,
        PlacementVariant::D,
    ];

    /// Single-letter label used in experiment ids like `OTA1-A`.
    pub fn label(self) -> &'static str {
        match self {
            PlacementVariant::A => "A",
            PlacementVariant::B => "B",
            PlacementVariant::C => "C",
            PlacementVariant::D => "D",
        }
    }

    /// Parses a label.
    pub fn from_label(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Some(PlacementVariant::A),
            "B" => Some(PlacementVariant::B),
            "C" => Some(PlacementVariant::C),
            "D" => Some(PlacementVariant::D),
            _ => None,
        }
    }

    /// RNG seed for the annealer under this variant.
    pub fn seed(self) -> u64 {
        match self {
            PlacementVariant::A => 0xA11A,
            PlacementVariant::B => 0xB22B,
            PlacementVariant::C => 0xC33C,
            PlacementVariant::D => 0xD44D,
        }
    }

    /// Multiplier applied to the weight of a net of type `ty`.
    pub fn weight_scale(self, ty: NetType) -> f64 {
        match self {
            PlacementVariant::A => 1.0,
            PlacementVariant::B => match ty {
                NetType::Input => 4.0,
                NetType::Sensitive => 1.5,
                _ => 1.0,
            },
            PlacementVariant::C => match ty {
                NetType::Output => 4.0,
                NetType::Sensitive => 2.5,
                NetType::Input => 0.5,
                _ => 1.0,
            },
            PlacementVariant::D => 0.0, // marker: uniform weights
        }
    }

    /// Effective weight of a net with base weight `base` and type `ty`.
    pub fn net_weight(self, base: f64, ty: NetType) -> f64 {
        if self == PlacementVariant::D {
            1.0
        } else {
            base * self.weight_scale(ty)
        }
    }
}

impl std::fmt::Display for PlacementVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip() {
        for v in PlacementVariant::ALL {
            assert_eq!(PlacementVariant::from_label(v.label()), Some(v));
        }
        assert_eq!(PlacementVariant::from_label("a"), Some(PlacementVariant::A));
        assert_eq!(PlacementVariant::from_label("x"), None);
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: Vec<_> = PlacementVariant::ALL.iter().map(|v| v.seed()).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn variant_d_is_uniform() {
        assert_eq!(PlacementVariant::D.net_weight(7.0, NetType::Input), 1.0);
        assert_eq!(PlacementVariant::D.net_weight(0.5, NetType::Power), 1.0);
    }

    #[test]
    fn variant_b_boosts_inputs() {
        let b = PlacementVariant::B.net_weight(2.0, NetType::Input);
        let a = PlacementVariant::A.net_weight(2.0, NetType::Input);
        assert!(b > a);
    }
}
