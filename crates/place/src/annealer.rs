//! Legal-by-construction simulated-annealing placer.
//!
//! The state is combinatorial, so every visited placement is legal:
//!
//! * symmetric device pairs and self-symmetric devices form a vertical stack
//!   centered on the symmetry axis (pairs straddle it, mirrored exactly);
//! * all remaining devices live in side columns flanking the stack;
//! * the annealer permutes the stack order and the side-column assignment,
//!   minimizing variant-weighted HPWL.
//!
//! Afterwards the die is wrapped around the layout with a routing margin and
//! boundary IO pads are emitted for input/output nets.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use af_geom::{Point, Rect};
use af_netlist::{Circuit, DeviceId, NetId, NetType, PinId, Terminal};

use crate::{PinSource, PlacedPin, Placement, PlacementVariant};

/// Tuning parameters of the placer.
#[derive(Debug, Clone)]
pub struct PlacerConfig {
    /// Annealing moves per placeable group.
    pub moves_per_item: usize,
    /// Vertical gap between stacked devices, dbu.
    pub vgap: i64,
    /// Horizontal gap between columns, dbu.
    pub colgap: i64,
    /// Gap between the two devices of a symmetric pair (axis corridor), dbu.
    pub inner_gap: i64,
    /// Empty routing margin around the layout, dbu.
    pub margin: i64,
    /// Number of side columns on each side of the symmetric stack.
    pub side_columns: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub t0_scale: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            moves_per_item: 300,
            vgap: 1_000,
            colgap: 1_700,
            inner_gap: 2_200,
            margin: 3_500,
            side_columns: 2,
            t0_scale: 0.2,
        }
    }
}

/// A placeable group in the symmetric stack or a side column.
#[derive(Debug, Clone, Copy)]
enum Group {
    /// Mirrored pair: `left` is placed left of the axis, `right` mirrored.
    Pair { left: DeviceId, right: DeviceId },
    /// Device centered on the axis.
    SelfSym(DeviceId),
    /// Unconstrained device.
    #[allow(dead_code)] // documented alternative to side columns
    Free(DeviceId),
}

/// Footprint rounded up to even dimensions so exact integer mirroring works.
fn even_footprint(circuit: &Circuit, d: DeviceId) -> (i64, i64) {
    let dev = circuit.device(d);
    ((dev.width + 1) & !1, (dev.height + 1) & !1)
}

struct Layout {
    /// Device rectangles indexed by `DeviceId`, axis at x = 0.
    rects: Vec<Rect>,
    /// Devices placed as the mirrored (right) member of a pair.
    mirrored: Vec<bool>,
}

/// State of the annealer: stack order + side column contents.
#[derive(Clone)]
struct State {
    /// Order of symmetric groups in the axis stack (indices into `sym`).
    stack: Vec<usize>,
    /// `columns[c]` = ordered free-device indices (into `free`) in column `c`.
    /// Columns `0..side_columns` are left of the stack, the rest right.
    columns: Vec<Vec<usize>>,
}

struct Problem<'a> {
    circuit: &'a Circuit,
    cfg: &'a PlacerConfig,
    sym: Vec<Group>,
    free: Vec<DeviceId>,
    /// Variant-effective weight per net.
    weights: Vec<f64>,
}

impl Problem<'_> {
    fn realize(&self, st: &State) -> Layout {
        let n = self.circuit.devices().len();
        let mut rects = vec![Rect::default(); n];
        let mut mirrored = vec![false; n];

        // Symmetric stack around x = 0.
        let mut y = 0i64;
        for &gi in &st.stack {
            match self.sym[gi] {
                Group::Pair { left, right } => {
                    let (w, h) = even_footprint(self.circuit, left);
                    let half_gap = self.cfg.inner_gap / 2;
                    let l = Rect::from_coords(-half_gap - w, y, -half_gap, y + h);
                    rects[left.index()] = l;
                    rects[right.index()] = l.mirror_x(0);
                    mirrored[right.index()] = true;
                    y += h + self.cfg.vgap;
                }
                Group::SelfSym(d) => {
                    let (w, h) = even_footprint(self.circuit, d);
                    rects[d.index()] = Rect::from_coords(-w / 2, y, w / 2, y + h);
                    y += h + self.cfg.vgap;
                }
                Group::Free(_) => unreachable!("free groups never join the stack"),
            }
        }

        // Width of the stack's half (for column offsets).
        let mut stack_half = self.cfg.inner_gap / 2;
        for &gi in &st.stack {
            let w = match self.sym[gi] {
                Group::Pair { left, .. } => {
                    self.cfg.inner_gap / 2 + even_footprint(self.circuit, left).0
                }
                Group::SelfSym(d) => even_footprint(self.circuit, d).0 / 2,
                Group::Free(_) => 0,
            };
            stack_half = stack_half.max(w);
        }

        // Side columns: left columns grow to -x, right columns to +x.
        let ncols = st.columns.len();
        let per_side = ncols / 2;
        let mut left_edge = -(stack_half + self.cfg.colgap);
        let mut right_edge = stack_half + self.cfg.colgap;
        for c in 0..ncols {
            let is_left = c < per_side;
            let col = &st.columns[c];
            let width = col
                .iter()
                .map(|&fi| even_footprint(self.circuit, self.free[fi]).0)
                .max()
                .unwrap_or(0);
            let mut cy = 0i64;
            for &fi in col {
                let d = self.free[fi];
                let (w, h) = even_footprint(self.circuit, d);
                let x0 = if is_left { left_edge - w } else { right_edge };
                rects[d.index()] = Rect::from_coords(x0, cy, x0 + w, cy + h);
                cy += h + self.cfg.vgap;
            }
            if is_left {
                left_edge -= width + self.cfg.colgap;
            } else {
                right_edge += width + self.cfg.colgap;
            }
        }

        Layout { rects, mirrored }
    }

    /// Variant-weighted HPWL over device pin centers.
    fn cost(&self, layout: &Layout) -> f64 {
        let mut lo = vec![(i64::MAX, i64::MAX); self.circuit.nets().len()];
        let mut hi = vec![(i64::MIN, i64::MIN); self.circuit.nets().len()];
        for pin in self.circuit.pins() {
            let r = &layout.rects[pin.device.index()];
            let c = r.center();
            let ni = pin.net.index();
            lo[ni] = (lo[ni].0.min(c.x), lo[ni].1.min(c.y));
            hi[ni] = (hi[ni].0.max(c.x), hi[ni].1.max(c.y));
        }
        let mut total = 0.0;
        for (ni, w) in self.weights.iter().enumerate() {
            if hi[ni].0 >= lo[ni].0 {
                let hp = (hi[ni].0 - lo[ni].0) + (hi[ni].1 - lo[ni].1);
                total += w * hp as f64;
            }
        }
        total
    }
}

/// Runs the placer.
pub(crate) fn run(circuit: &Circuit, variant: PlacementVariant, cfg: &PlacerConfig) -> Placement {
    let mut in_pair = vec![false; circuit.devices().len()];
    let mut sym = Vec::new();
    for &(a, b) in circuit.symmetry().device_pairs() {
        sym.push(Group::Pair { left: a, right: b });
        in_pair[a.index()] = true;
        in_pair[b.index()] = true;
    }
    for &d in circuit.symmetry().self_devices() {
        sym.push(Group::SelfSym(d));
        in_pair[d.index()] = true;
    }
    let free: Vec<DeviceId> = (0..circuit.devices().len())
        .filter(|&i| !in_pair[i])
        .map(|i| DeviceId::new(i as u32))
        .collect();

    let weights: Vec<f64> = circuit
        .nets()
        .iter()
        .map(|n| variant.net_weight(n.weight, n.ty))
        .collect();

    let problem = Problem {
        circuit,
        cfg,
        sym,
        free,
        weights,
    };

    let mut rng = ChaCha8Rng::seed_from_u64(variant.seed() ^ hash_name(circuit.name()));

    // Initial state: stack in declaration order; free devices round-robin.
    let ncols = (cfg.side_columns * 2).max(2);
    let mut columns = vec![Vec::new(); ncols];
    for (i, _) in problem.free.iter().enumerate() {
        columns[i % ncols].push(i);
    }
    let mut state = State {
        stack: (0..problem.sym.len()).collect(),
        columns,
    };

    let mut cost = problem.cost(&problem.realize(&state));
    let items = problem.sym.len() + problem.free.len();
    let total_moves = cfg.moves_per_item * items.max(1);
    let mut temp = cost.max(1.0) * cfg.t0_scale;
    let alpha = (1e-3f64).powf(1.0 / total_moves.max(1) as f64);

    let mut best_state = state.clone();
    let mut best_cost = cost;

    for _ in 0..total_moves {
        let candidate = propose(&state, &problem, &mut rng);
        let c = problem.cost(&problem.realize(&candidate));
        let accept = c <= cost || rng.gen::<f64>() < ((cost - c) / temp).exp();
        if accept {
            state = candidate;
            cost = c;
            if cost < best_cost {
                best_cost = cost;
                best_state = state.clone();
            }
        }
        temp *= alpha;
    }

    finalize(&problem, &best_state, variant)
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

fn propose(state: &State, problem: &Problem<'_>, rng: &mut ChaCha8Rng) -> State {
    let mut s = state.clone();
    let nsym = s.stack.len();
    let nfree = problem.free.len();
    let pick_stack = nsym >= 2 && (nfree == 0 || rng.gen_bool(0.5));
    if pick_stack {
        let i = rng.gen_range(0..nsym);
        let j = rng.gen_range(0..nsym);
        s.stack.swap(i, j);
    } else if nfree > 0 {
        // Move a random free device to a random column position, or swap two.
        if rng.gen_bool(0.5) {
            let from = pick_nonempty_column(&s, rng);
            let Some(from) = from else { return s };
            let idx = rng.gen_range(0..s.columns[from].len());
            let item = s.columns[from].remove(idx);
            let to = rng.gen_range(0..s.columns.len());
            let pos = rng.gen_range(0..=s.columns[to].len());
            s.columns[to].insert(pos, item);
        } else {
            let (Some(a), Some(b)) = (pick_nonempty_column(&s, rng), pick_nonempty_column(&s, rng))
            else {
                return s;
            };
            let ia = rng.gen_range(0..s.columns[a].len());
            let ib = rng.gen_range(0..s.columns[b].len());
            if a == b && ia == ib {
                return s;
            }
            let va = s.columns[a][ia];
            let vb = s.columns[b][ib];
            s.columns[a][ia] = vb;
            s.columns[b][ib] = va;
        }
    }
    s
}

fn pick_nonempty_column(s: &State, rng: &mut ChaCha8Rng) -> Option<usize> {
    let nonempty: Vec<usize> = (0..s.columns.len())
        .filter(|&c| !s.columns[c].is_empty())
        .collect();
    if nonempty.is_empty() {
        None
    } else {
        Some(nonempty[rng.gen_range(0..nonempty.len())])
    }
}

/// Pin square side (one routing track), dbu. Kept even for exact mirroring.
const PIN_SIZE: i64 = 140;

fn pin_rect(dev_rect: &Rect, terminal: Terminal, mirrored: bool) -> Rect {
    let c = dev_rect.center();
    // Gate on the left edge, bulk on the right (swapped for mirrored devices);
    // drain on top, source at bottom; capacitor/resistor plates top/bottom.
    let (x, y) = match (terminal, mirrored) {
        (Terminal::Gate, false) | (Terminal::Bulk, true) => (dev_rect.lo().x, c.y),
        (Terminal::Gate, true) | (Terminal::Bulk, false) => (dev_rect.hi().x, c.y),
        (Terminal::Drain | Terminal::Pos, _) => (c.x, dev_rect.hi().y),
        (Terminal::Source | Terminal::Neg, _) => (c.x, dev_rect.lo().y),
    };
    Rect::centered(Point::new(x, y), PIN_SIZE, PIN_SIZE)
}

fn finalize(problem: &Problem<'_>, state: &State, variant: PlacementVariant) -> Placement {
    let circuit = problem.circuit;
    let cfg = problem.cfg;
    let layout = problem.realize(state);

    // Wrap the die with a routing margin and translate to positive coords.
    let mut bbox: Option<Rect> = None;
    for r in &layout.rects {
        bbox = Some(match bbox {
            Some(b) => b.union(r),
            None => *r,
        });
    }
    let bbox = bbox.expect("circuit has at least one device");
    let die0 = bbox.expanded(cfg.margin);
    let delta = Point::new(-die0.lo().x, -die0.lo().y);
    // Keep the axis coordinate even so integer mirroring stays exact.
    let delta = Point::new((delta.x + 1) & !1, delta.y);
    let die = die0.translated(delta);
    let axis_x = delta.x; // axis was at x = 0

    let device_rects: Vec<Rect> = layout.rects.iter().map(|r| r.translated(delta)).collect();

    // Device pins.
    let mut pins = Vec::new();
    for (i, pin) in circuit.pins().iter().enumerate() {
        let dev_rect = &device_rects[pin.device.index()];
        let rect = pin_rect(dev_rect, pin.terminal, layout.mirrored[pin.device.index()]);
        pins.push(PlacedPin {
            net: pin.net,
            source: PinSource::Device(PinId::new(i as u32)),
            rect,
            layer: 0,
        });
    }

    // Boundary IO pads. Paired IO nets get mirrored pads; lone IO nets a
    // centered pad. Inputs at the bottom edge, outputs at the top.
    // Symmetric pads must stay inside the die even when the axis is
    // off-center, so derive the offset from the narrower half.
    let half_span = (axis_x - die.lo().x).min(die.hi().x - axis_x);
    let pad_off = ((half_span / 2) & !1).max(PIN_SIZE);
    let bottom_y = die.lo().y + cfg.margin / 3;
    let top_y = die.hi().y - cfg.margin / 3;
    let mut pad_done = vec![false; circuit.nets().len()];
    let add_pad = |pins: &mut Vec<PlacedPin>, net: NetId, x: i64, y: i64| {
        pins.push(PlacedPin {
            net,
            source: PinSource::Pad,
            rect: Rect::centered(Point::new(x, y), PIN_SIZE, PIN_SIZE),
            layer: 0,
        });
    };
    for &(a, b) in circuit.symmetry().net_pairs() {
        for (net, sgn) in [(a, -1), (b, 1)] {
            if pad_done[net.index()] {
                continue;
            }
            let ty = circuit.net(net).ty;
            let y = match ty {
                NetType::Input => bottom_y,
                NetType::Output => top_y,
                _ => continue,
            };
            add_pad(&mut pins, net, axis_x + sgn * pad_off, y);
            pad_done[net.index()] = true;
        }
    }
    for (i, net) in circuit.nets().iter().enumerate() {
        let id = NetId::new(i as u32);
        if pad_done[i] || net.pins.is_empty() {
            continue;
        }
        match net.ty {
            NetType::Input => add_pad(&mut pins, id, axis_x, bottom_y),
            NetType::Output => add_pad(&mut pins, id, axis_x, top_y),
            _ => continue,
        }
        pad_done[i] = true;
    }

    Placement::new(
        circuit.name().to_string(),
        variant,
        die,
        axis_x,
        device_rects,
        pins,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;

    #[test]
    fn even_footprints_are_even() {
        let c = benchmarks::ota1();
        for i in 0..c.devices().len() {
            let (w, h) = even_footprint(&c, DeviceId::new(i as u32));
            assert_eq!(w % 2, 0);
            assert!(h > 0);
        }
    }

    #[test]
    fn pin_rect_mirror_consistency() {
        let r = Rect::from_coords(0, 0, 1_000, 600);
        let axis = 2_000;
        let rm = r.mirror_x(axis);
        for t in [
            Terminal::Gate,
            Terminal::Drain,
            Terminal::Source,
            Terminal::Bulk,
        ] {
            let p = pin_rect(&r, t, false);
            let pm = pin_rect(&rm, t, true);
            assert_eq!(p.mirror_x(axis), pm, "terminal {t}");
        }
    }

    #[test]
    fn hash_name_distinguishes() {
        assert_ne!(hash_name("OTA1"), hash_name("OTA2"));
    }

    #[test]
    fn smaller_config_still_legal() {
        let c = benchmarks::ota2();
        let cfg = PlacerConfig {
            moves_per_item: 10,
            ..PlacerConfig::default()
        };
        let p = crate::place_with(&c, PlacementVariant::B, &cfg);
        p.check(&c).unwrap();
    }
}
