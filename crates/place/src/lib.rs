#![warn(missing_docs)]
//! Symmetry-aware analog placement for the AnalogFold reproduction.
//!
//! The paper takes placements as given (produced by MAGICAL's analog placer,
//! one per net-weight variant A/B/C…). This crate substitutes a
//! simulated-annealing placer that:
//!
//! * mirrors symmetric device pairs across a vertical symmetry axis,
//! * centers self-symmetric devices on the axis,
//! * minimizes net-weighted half-perimeter wirelength,
//! * legalizes to a non-overlapping placement inside the die,
//! * adds boundary IO pads for input/output nets (their routing targets),
//! * assigns every device pin a concrete M1 pin shape.
//!
//! [`PlacementVariant`] reproduces the paper's "A/B/C/D represents placements
//! of different net weights": each variant reweights net classes and reseeds
//! the annealer, yielding distinct legal placements of the same circuit.
//!
//! # Examples
//!
//! ```
//! use af_netlist::benchmarks;
//! use af_place::{place, PlacementVariant};
//!
//! let circuit = benchmarks::ota1();
//! let placement = place(&circuit, PlacementVariant::A);
//! placement.check(&circuit).unwrap();
//! ```

mod annealer;
mod variant;

pub use annealer::PlacerConfig;
pub use variant::PlacementVariant;

use serde::{Deserialize, Serialize};

use af_geom::Rect;
use af_netlist::{Circuit, NetId, PinId};

/// Where a routing pin target comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PinSource {
    /// A device terminal (refers back to the netlist pin).
    Device(PinId),
    /// A boundary IO pad synthesized by the placer.
    Pad,
}

/// A physical pin shape the router must reach: a rectangle on a metal layer,
/// belonging to a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedPin {
    /// Net this pin belongs to.
    pub net: NetId,
    /// Origin of the pin.
    pub source: PinSource,
    /// Pin geometry in dbu.
    pub rect: Rect,
    /// Metal layer of the pin shape (0 = M1).
    pub layer: u8,
}

/// Error from [`Placement::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementError(pub String);

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal placement: {}", self.0)
    }
}

impl std::error::Error for PlacementError {}

/// A legal placement of one circuit: die, device rectangles, pin shapes, and
/// the symmetry axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    circuit_name: String,
    variant: PlacementVariant,
    die: Rect,
    axis_x: i64,
    device_rects: Vec<Rect>,
    pins: Vec<PlacedPin>,
}

impl Placement {
    pub(crate) fn new(
        circuit_name: String,
        variant: PlacementVariant,
        die: Rect,
        axis_x: i64,
        device_rects: Vec<Rect>,
        pins: Vec<PlacedPin>,
    ) -> Self {
        Self {
            circuit_name,
            variant,
            die,
            axis_x,
            device_rects,
            pins,
        }
    }

    /// Name of the placed circuit.
    pub fn circuit_name(&self) -> &str {
        &self.circuit_name
    }

    /// The net-weight variant that produced this placement.
    pub fn variant(&self) -> PlacementVariant {
        self.variant
    }

    /// Die outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// X coordinate of the vertical symmetry axis.
    pub fn axis_x(&self) -> i64 {
        self.axis_x
    }

    /// Placed rectangle of each device, indexed by `DeviceId`.
    pub fn device_rects(&self) -> &[Rect] {
        &self.device_rects
    }

    /// Every routable pin shape (device pins + IO pads).
    pub fn pins(&self) -> &[PlacedPin] {
        &self.pins
    }

    /// Pin shapes belonging to `net`.
    pub fn pins_of_net(&self, net: NetId) -> impl Iterator<Item = &PlacedPin> {
        self.pins.iter().filter(move |p| p.net == net)
    }

    /// Net-weighted half-perimeter wirelength over placed pin centers.
    pub fn weighted_hpwl(&self, circuit: &Circuit) -> f64 {
        let mut total = 0.0;
        for (i, net) in circuit.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            let mut bbox: Option<Rect> = None;
            for pin in self.pins_of_net(id) {
                let c = pin.rect.center();
                let r = Rect::new(c, c);
                bbox = Some(match bbox {
                    Some(b) => b.union(&r),
                    None => r,
                });
            }
            if let Some(b) = bbox {
                total += net.weight * b.half_perimeter() as f64;
            }
        }
        total
    }

    /// Verifies legality:
    ///
    /// * every device inside the die, no interior overlap between devices,
    /// * symmetric pairs exactly mirrored, self-symmetric devices centered,
    /// * every non-supply net has at least two pin shapes,
    /// * every pin shape inside the die.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] describing the first violation.
    pub fn check(&self, circuit: &Circuit) -> Result<(), PlacementError> {
        let n = circuit.devices().len();
        if self.device_rects.len() != n {
            return Err(PlacementError(format!(
                "{} device rects for {} devices",
                self.device_rects.len(),
                n
            )));
        }
        for (i, r) in self.device_rects.iter().enumerate() {
            if !self.die.contains_rect(r) {
                return Err(PlacementError(format!(
                    "device `{}` {} outside die {}",
                    circuit.devices()[i].name,
                    r,
                    self.die
                )));
            }
            for (j, r2) in self.device_rects.iter().enumerate().skip(i + 1) {
                if r.overlaps_interior(r2) {
                    return Err(PlacementError(format!(
                        "devices `{}` and `{}` overlap",
                        circuit.devices()[i].name,
                        circuit.devices()[j].name
                    )));
                }
            }
        }
        for &(a, b) in circuit.symmetry().device_pairs() {
            let (ra, rb) = (self.device_rects[a.index()], self.device_rects[b.index()]);
            if ra.mirror_x(self.axis_x) != rb {
                return Err(PlacementError(format!(
                    "pair `{}`/`{}` not mirrored about x={}",
                    circuit.device(a).name,
                    circuit.device(b).name,
                    self.axis_x
                )));
            }
        }
        for &d in circuit.symmetry().self_devices() {
            let r = self.device_rects[d.index()];
            if r.mirror_x(self.axis_x) != r {
                return Err(PlacementError(format!(
                    "self-symmetric `{}` not centered on axis",
                    circuit.device(d).name
                )));
            }
        }
        for (i, net) in circuit.nets().iter().enumerate() {
            let count = self.pins_of_net(NetId::new(i as u32)).count();
            if !net.ty.is_supply() && count < 2 {
                return Err(PlacementError(format!(
                    "net `{}` has {count} placed pin(s)",
                    net.name
                )));
            }
        }
        for pin in &self.pins {
            if !self.die.contains_rect(&pin.rect) {
                return Err(PlacementError(format!(
                    "pin of net {} at {} outside die",
                    pin.net, pin.rect
                )));
            }
        }
        Ok(())
    }
}

/// Places `circuit` under the given net-weight variant with default placer
/// settings.
///
/// The result is always legal; legality is asserted in debug builds and
/// guaranteed by the legalizer in release builds.
pub fn place(circuit: &Circuit, variant: PlacementVariant) -> Placement {
    place_with(circuit, variant, &PlacerConfig::default())
}

/// Places with explicit annealer settings.
pub fn place_with(circuit: &Circuit, variant: PlacementVariant, cfg: &PlacerConfig) -> Placement {
    let placement = annealer::run(circuit, variant, cfg);
    debug_assert!(
        placement.check(circuit).is_ok(),
        "placer produced illegal placement: {:?}",
        placement.check(circuit)
    );
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_netlist::benchmarks;

    #[test]
    fn ota1_all_variants_legal() {
        let c = benchmarks::ota1();
        for v in PlacementVariant::ALL {
            let p = place(&c, v);
            p.check(&c).unwrap_or_else(|e| panic!("{v:?}: {e}"));
            assert_eq!(p.variant(), v);
            assert!(p.weighted_hpwl(&c) > 0.0);
        }
    }

    #[test]
    fn ota3_legal() {
        let c = benchmarks::ota3();
        let p = place(&c, PlacementVariant::A);
        p.check(&c).unwrap();
    }

    #[test]
    fn variants_differ() {
        let c = benchmarks::ota1();
        let a = place(&c, PlacementVariant::A);
        let b = place(&c, PlacementVariant::B);
        assert_ne!(a.device_rects(), b.device_rects());
    }

    #[test]
    fn placement_is_deterministic() {
        let c = benchmarks::ota2();
        let p1 = place(&c, PlacementVariant::A);
        let p2 = place(&c, PlacementVariant::A);
        assert_eq!(p1, p2);
    }

    #[test]
    fn io_nets_have_pads() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let vinp = c.net_by_name("vinp").unwrap();
        let pads: Vec<_> = p
            .pins_of_net(vinp)
            .filter(|pin| pin.source == PinSource::Pad)
            .collect();
        assert_eq!(pads.len(), 1);
        // the pad pair is symmetric with vinn's pad
        let vinn = c.net_by_name("vinn").unwrap();
        let pad_n = p
            .pins_of_net(vinn)
            .find(|pin| pin.source == PinSource::Pad)
            .unwrap();
        assert_eq!(pads[0].rect.mirror_x(p.axis_x()), pad_n.rect);
    }

    #[test]
    fn symmetric_pins_mirror() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let m1 = c.device_by_name("M1").unwrap();
        let m2 = c.device_by_name("M2").unwrap();
        let gate_pin = |d| {
            c.device_pins(d)
                .find(|(_, pin)| pin.terminal == af_netlist::Terminal::Gate)
                .map(|(id, _)| id)
                .unwrap()
        };
        let rect_of = |pid| {
            p.pins()
                .iter()
                .find(|pp| pp.source == PinSource::Device(pid))
                .unwrap()
                .rect
        };
        let (r1, r2) = (rect_of(gate_pin(m1)), rect_of(gate_pin(m2)));
        assert_eq!(r1.mirror_x(p.axis_x()), r2);
    }

    #[test]
    fn variant_d_is_legal_and_distinct() {
        let c = benchmarks::ota3();
        let d = place(&c, PlacementVariant::D);
        d.check(&c).unwrap();
        let a = place(&c, PlacementVariant::A);
        assert_ne!(a.device_rects(), d.device_rects());
    }

    #[test]
    fn single_side_column_config_is_legal() {
        let c = benchmarks::ota1();
        let cfg = PlacerConfig {
            side_columns: 1,
            moves_per_item: 50,
            ..PlacerConfig::default()
        };
        let p = place_with(&c, PlacementVariant::B, &cfg);
        p.check(&c).unwrap();
    }

    #[test]
    fn wider_margin_grows_die() {
        let c = benchmarks::ota1();
        let narrow = place_with(
            &c,
            PlacementVariant::A,
            &PlacerConfig {
                margin: 2_000,
                ..PlacerConfig::default()
            },
        );
        let wide = place_with(
            &c,
            PlacementVariant::A,
            &PlacerConfig {
                margin: 8_000,
                ..PlacerConfig::default()
            },
        );
        assert!(wide.die().area() > narrow.die().area());
    }

    #[test]
    fn hpwl_reflects_weights() {
        let c = benchmarks::ota1();
        let p = place(&c, PlacementVariant::A);
        let w = p.weighted_hpwl(&c);
        assert!(w.is_finite() && w > 0.0);
    }

    #[test]
    fn pins_inside_die_on_m1() {
        let c = benchmarks::ota4();
        let p = place(&c, PlacementVariant::C);
        for pin in p.pins() {
            assert!(p.die().contains_rect(&pin.rect));
            assert_eq!(pin.layer, 0);
        }
    }
}
