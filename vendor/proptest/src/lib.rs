//! Offline vendored stand-in for the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!`/
//! `collection::vec` strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! its seed and case index), and generation is driven by a deterministic
//! SplitMix64 stream derived from the test name — so failures reproduce
//! exactly across runs and machines.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derives the per-test seed from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

/// Test-runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator. Object-safe; combinators live in [`StrategyExt`].
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Combinators over [`Strategy`], blanket-implemented.
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy> StrategyExt for S {}

/// The [`StrategyExt::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds from the strategy list; panics when empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.index(self.choices.len());
        self.choices[k].generate(rng)
    }
}

/// Boxes a strategy (helper used by `prop_oneof!` for type inference).
pub fn boxed<T, S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
    Box::new(s)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted size arguments for [`vec`].
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.index(self.end - self.start)
        }
    }

    /// Strategy producing vectors of `element` values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::` namespace re-exports, mirroring the real prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        boxed, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Just, OneOf, ProptestConfig, Strategy, StrategyExt, TestRng,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — do not use directly.
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between listed strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_generate_in_domain() {
        let mut rng = TestRng::new(1);
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v));
            let x = (0i64..10).generate(&mut rng);
            assert!((0..10).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::new(2);
        let s = collection::vec(0.0f64..1.0, 3..8);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..8).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_works(a in -10i64..10, b in prop::collection::vec(0u8..4, 2)) {
            prop_assert!((-10..10).contains(&a));
            prop_assert_eq!(b.len(), 2);
        }
    }
}
