//! Offline vendored stand-in for the subset of `criterion` this workspace
//! uses: `criterion_group!` / `criterion_main!`, [`Criterion`],
//! benchmark groups, `bench_function`, `iter`, `iter_batched`, and
//! [`BatchSize`].
//!
//! Behavior mirrors the real crate's two modes:
//!
//! - **bench mode** (`cargo bench`, i.e. a `--bench` argument is present):
//!   each routine is warmed up once, then timed over an adaptive number of
//!   iterations; mean wall-clock per iteration is printed.
//! - **test mode** (`cargo test` runs the bench target without `--bench`):
//!   each routine runs exactly once so the target is smoke-tested quickly.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not load-bearing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Opaque black box preventing the optimizer from deleting benchmark code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Per-benchmark timing driver.
pub struct Bencher {
    bench_mode: bool,
    /// Mean seconds per iteration of the last run.
    last_mean_s: f64,
}

impl Bencher {
    /// Times `routine` (one closure call = one iteration).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.bench_mode {
            black_box(routine());
            self.last_mean_s = 0.0;
            return;
        }
        // Warm-up + calibration round.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~1 s of total measurement, capped at 50 iterations.
        let iters = ((Duration::from_secs(1).as_nanos() / once.as_nanos()).max(1) as usize).min(50);
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_mean_s = t1.elapsed().as_secs_f64() / iters as f64;
    }

    /// Times `routine` with a fresh `setup` product per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if !self.bench_mode {
            black_box(routine(setup()));
            self.last_mean_s = 0.0;
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = ((Duration::from_secs(1).as_nanos() / once.as_nanos()).max(1) as usize).min(50);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.last_mean_s = total.as_secs_f64() / iters as f64;
    }
}

fn report(name: &str, mean_s: f64, bench_mode: bool) {
    if bench_mode {
        if mean_s >= 1.0 {
            println!("{name:<44} {mean_s:>12.3} s/iter");
        } else if mean_s >= 1e-3 {
            println!("{name:<44} {:>12.3} ms/iter", mean_s * 1e3);
        } else {
            println!("{name:<44} {:>12.3} us/iter", mean_s * 1e6);
        }
    } else {
        println!("{name:<44}          ok (test mode)");
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the vendored harness sizes runs itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op; symmetry with the real API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            bench_mode: bench_mode(),
        }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            bench_mode: self.bench_mode,
            last_mean_s: 0.0,
        };
        f(&mut b);
        report(name, b.last_mean_s, self.bench_mode);
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.run_one(id.as_ref(), f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Finalizes the run (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
