//! Offline vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal deterministic implementation of the traits it relies on:
//! [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! It is *not* a drop-in statistical replacement for the real crate — the
//! generated streams differ — but every consumer in this repository only
//! requires a deterministic, seedable, reasonably uniform source, which this
//! provides.

/// Low-level random number generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            for &b in chunk.iter().take(dest.len() - i) {
                dest[i] = b;
                i += 1;
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step — used to expand `u64` seeds into full seed material.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it via SplitMix64 —
    /// mirrors `rand`'s default implementation.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the type's natural domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported items.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mix(u64);
    impl RngCore for Mix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Mix(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..1.75);
            assert!((0.25..1.75).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Mix(2);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(0..7);
            assert!(a < 7);
            let b: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Mix(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
