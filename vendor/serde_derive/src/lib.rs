//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the workspace serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline). Supports the shapes used in this repository:
//!
//! - structs with named fields,
//! - tuple structs (newtype and general),
//! - unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged).
//!
//! `#[serde(...)]` attributes and generic parameters are intentionally not
//! supported; the macro panics with a clear message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skips `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attrs(trees: &[TokenTree], mut i: usize) -> usize {
    while i < trees.len() && is_punct(&trees[i], '#') {
        i += 1; // '#'
        if i < trees.len() {
            if let TokenTree::Group(g) = &trees[i] {
                if g.delimiter() == Delimiter::Bracket {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(trees: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = trees.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = trees.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advances past type tokens until a top-level comma (or the end), tracking
/// angle-bracket depth; returns the index of the comma or `trees.len()`.
fn skip_type(trees: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0usize;
    let mut prev_dash = false;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    return i;
                }
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth = depth.saturating_sub(1);
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        i += 1;
    }
    i
}

/// Parses `name: Type, ...` named fields from a brace group body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, got {other}"),
        };
        i += 1;
        assert!(
            i < body.len() && is_punct(&body[i], ':'),
            "serde derive: expected `:` after field `{name}`"
        );
        i = skip_type(body, i + 1);
        if i < body.len() {
            i += 1; // the comma
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant from a paren body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        if i >= body.len() {
            break;
        }
        count += 1;
        i = skip_type(body, i);
        if i < body.len() {
            i += 1; // the comma
        }
    }
    count
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            _ => Fields::Unit,
        };
        if let Some(tree) = body.get(i) {
            if is_punct(tree, '=') {
                panic!("serde derive: explicit discriminants are not supported");
            }
            assert!(
                is_punct(tree, ','),
                "serde derive: expected `,` after variant `{name}`"
            );
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&trees, 0);
    i = skip_vis(&trees, i);
    let kind = match &trees[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &trees[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other}"),
    };
    i += 1;
    if i < trees.len() && is_punct(&trees[i], '<') {
        panic!(
            "serde derive: generic types are not supported by the vendored derive (type `{name}`)"
        );
    }
    match (kind.as_str(), trees.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(&body)),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(&body)),
            }
        }
        ("struct", _) => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::Enum {
                name,
                variants: parse_variants(&body),
            }
        }
        _ => panic!("serde derive: unsupported item shape for `{name}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("serde::Value::Map(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Map(vec![(\"{vn}\"\
                                 .to_string(), serde::Value::Map(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Expression deserializing named fields from the map value expression `src`.
fn named_fields_expr(type_path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {src}.get(\"{f}\") {{\n\
                     Some(x) => serde::Deserialize::from_value(x)?,\n\
                     None => serde::Deserialize::from_value(&serde::Value::Null).map_err(|_| \
                         serde::DeError(format!(\"missing field `{f}`\")))?,\n\
                 }}"
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let construct = named_fields_expr(name, names, "v");
                    format!(
                        "match v {{\n\
                             serde::Value::Map(_) => Ok({construct}),\n\
                             other => Err(serde::DeError::expected(\"object for {name}\", other)),\n\
                         }}"
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             serde::Value::Seq(items) if items.len() == {n} => \
                                 Ok({name}({})),\n\
                             other => Err(serde::DeError::expected(\"{n}-element array for {name}\", other)),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("serde::Value::Str(s) if s == \"{vn}\" => Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     serde::Value::Seq(items) if items.len() == {n} => \
                                         Ok({name}::{vn}({})),\n\
                                     other => Err(serde::DeError::expected(\"{n}-element array for \
                                         {name}::{vn}\", other)),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let construct =
                                named_fields_expr(&format!("{name}::{vn}"), fields, "inner");
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     serde::Value::Map(_) => Ok({construct}),\n\
                                     other => Err(serde::DeError::expected(\"object for \
                                         {name}::{vn}\", other)),\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             {}\n\
                             serde::Value::Map(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(serde::DeError(format!(\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::DeError::expected(\"variant of {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}

/// For unit-only enums, additionally implements `serde::MapKey` so the enum
/// can key a `HashMap`/`BTreeMap` — real `serde_json` likewise renders such
/// keys as the variant-name string.
fn gen_map_key(item: &Item) -> Option<String> {
    let Item::Enum { name, variants } = item else {
        return None;
    };
    if variants.is_empty() || !variants.iter().all(|v| matches!(v.fields, Fields::Unit)) {
        return None;
    }
    let to_arms: Vec<String> = variants
        .iter()
        .map(|v| format!("{name}::{vn} => \"{vn}\".to_string(),", vn = v.name))
        .collect();
    let from_arms: Vec<String> = variants
        .iter()
        .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
        .collect();
    Some(format!(
        "impl serde::MapKey for {name} {{\n\
             fn to_key(&self) -> String {{ match self {{ {} }} }}\n\
             fn from_key(s: &str) -> Result<Self, serde::DeError> {{\n\
                 match s {{\n\
                     {}\n\
                     other => Err(serde::DeError(format!(\
                         \"unknown map key `{{other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
         }}",
        to_arms.join(" "),
        from_arms.join("\n")
    ))
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = gen_serialize(&item);
    if let Some(map_key) = gen_map_key(&item) {
        out.push('\n');
        out.push_str(&map_key);
    }
    out.parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
