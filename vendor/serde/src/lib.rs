//! Offline vendored stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so serialization is
//! implemented against a small self-describing [`Value`] tree instead of the
//! real serde data model:
//!
//! - [`Serialize`] converts a value into a [`Value`],
//! - [`Deserialize`] reconstructs a value from a [`Value`],
//! - the companion `serde_derive` crate derives both for plain structs and
//!   enums (no `#[serde(...)]` attributes — none are used in this repo),
//! - the companion `serde_json` crate renders [`Value`] to/from JSON text.
//!
//! The JSON representation matches real serde's externally-tagged defaults
//! closely enough for this repository's round-trip persistence needs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Self-describing serialized tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (kept exact, not routed through f64).
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Marker mirroring serde's `DeserializeOwned` (every [`Deserialize`] here
/// already owns its data).
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// `serde::de` compatibility module.
pub mod de {
    pub use crate::{DeError, Deserialize, DeserializeOwned};
}

/// `serde::ser` compatibility module.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("integer {u} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as u64) <= i64::MAX as u64 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("integer {u} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_uint_wide!(u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // real serde_json emits null for non-finite floats
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected tuple of length {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple (array)", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Map keys serializable as JSON object keys (integers become strings, as in
/// real `serde_json`).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError(format!("bad integer map key {s:?}")))
            }
        }
    )*};
}
impl_map_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // HashMap iteration order is nondeterministic; sort for stable output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(pairs)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let tree = v.to_value();
        let back: Vec<Option<u32>> = Deserialize::from_value(&tree).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn hashmap_int_keys_sorted() {
        let mut m: HashMap<u32, f64> = HashMap::new();
        m.insert(10, 1.5);
        m.insert(2, -0.5);
        let tree = m.to_value();
        match &tree {
            Value::Map(pairs) => {
                assert_eq!(pairs[0].0, "10");
                assert_eq!(pairs[1].0, "2");
            }
            _ => panic!("expected map"),
        }
        let back: HashMap<u32, f64> = Deserialize::from_value(&tree).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn array_length_checked() {
        let tree = Value::Seq(vec![Value::Float(1.0); 4]);
        let err = <[f64; 5]>::from_value(&tree).unwrap_err();
        assert!(err.to_string().contains("length 5"));
    }
}
