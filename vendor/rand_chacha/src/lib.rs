//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the genuine ChaCha stream cipher core (D. J. Bernstein) with
//! 8 double-rounds, exposed through the workspace's vendored [`rand`]
//! traits. Deterministic, seedable, `Clone`, and platform-independent.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 generator: 32-byte key seed, 64-bit block counter, and a
/// 16-word output buffer refilled per block.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unconsumed word in `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Current block counter (diagnostic).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
