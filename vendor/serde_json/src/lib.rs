//! Offline vendored JSON serialization over the workspace `serde` stand-in.
//!
//! Provides the [`to_string`], [`to_string_pretty`], and [`from_str`] entry
//! points the repository uses. Numbers round-trip exactly: floats are
//! rendered with Rust's shortest-round-trip `{:?}` formatting, and
//! non-finite floats serialize as `null` (matching real `serde_json`).

use std::fmt::Write as _;

use serde::{DeserializeOwned, Serialize, Value};

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_value(out, item, indent.map(|d| d + 1));
            }
            if !items.is_empty() {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent.map(|d| d + 1));
            }
            if !pairs.is_empty() {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the vendored data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // multi-byte UTF-8: re-decode from the byte position
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Parses a JSON value tree from text.
///
/// # Errors
///
/// Malformed JSON.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a typed value from JSON text.
///
/// # Errors
///
/// Malformed JSON or a tree that does not match `T`.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = value_from_str(s)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn roundtrip_nested() {
        let mut m: HashMap<u32, Vec<(i64, f64)>> = HashMap::new();
        m.insert(3, vec![(1, 0.5), (-2, 1.25e-9)]);
        m.insert(7, vec![]);
        let text = to_string(&m).unwrap();
        let back: HashMap<u32, Vec<(i64, f64)>> = from_str(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn float_precision_roundtrips() {
        let xs = vec![0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MAX];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn nonfinite_serializes_as_null_and_parses_as_nan() {
        let xs = vec![f64::NAN, f64::INFINITY];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[null,null]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert!(back.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tüñî".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<Vec<f64>>("{not json").is_err());
        assert!(from_str::<Vec<f64>>("[1,2,]").is_err());
        assert!(from_str::<Vec<f64>>("[1,2] tail").is_err());
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let xs = vec![1u32, 2, 3];
        let text = to_string_pretty(&xs).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }
}
