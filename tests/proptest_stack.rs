//! Property-based tests across placement, routing, extraction and the
//! DEF/SPICE interchange formats, driven by benchmark/variant selection.

use analogfold_suite::extract::extract;
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{parse_def, write_def, Router, RouterConfig, RoutingGuidance};
use analogfold_suite::sim::to_spice;
use analogfold_suite::tech::Technology;
use proptest::prelude::*;

fn variants() -> impl Strategy<Value = PlacementVariant> {
    prop_oneof![
        Just(PlacementVariant::A),
        Just(PlacementVariant::B),
        Just(PlacementVariant::C),
        Just(PlacementVariant::D),
    ]
}

fn bench_names() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("OTA1"), Just("OTA2")]
}

proptest! {
    // full route runs are expensive; keep the case count small but the
    // properties strong
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn placement_always_legal(name in bench_names(), v in variants()) {
        let circuit = benchmarks::by_name(name).unwrap();
        let placement = place(&circuit, v);
        prop_assert!(placement.check(&circuit).is_ok());
        // die is nonempty and pins live inside it
        prop_assert!(placement.die().area() > 0);
        for pin in placement.pins() {
            prop_assert!(placement.die().contains_rect(&pin.rect));
        }
    }

    #[test]
    fn routing_connects_every_routable_net(name in bench_names(), v in variants()) {
        let circuit = benchmarks::by_name(name).unwrap();
        let tech = Technology::nm40();
        let placement = place(&circuit, v);
        let layout = Router::new(RouterConfig::default()).unwrap().route(&circuit, &placement, &tech, &RoutingGuidance::None).unwrap();
        for (i, net) in circuit.nets().iter().enumerate() {
            let id = analogfold_suite::netlist::NetId::new(i as u32);
            let placed_pins = placement.pins_of_net(id).count();
            if placed_pins >= 2 {
                let routed = layout.net(id);
                prop_assert!(routed.is_some(), "net `{}` unrouted", net.name);
                prop_assert!(
                    routed.unwrap().wirelength > 0 || placed_pins == 1,
                    "net `{}` has zero wire", net.name
                );
            }
        }
        // wires stay inside the die
        for rn in &layout.nets {
            for s in &rn.segments {
                for p in [s.start(), s.end()] {
                    prop_assert!(placement.die().contains(af_geom_point(p)));
                }
            }
        }
    }

    #[test]
    fn extraction_is_monotone_in_geometry(name in bench_names(), v in variants()) {
        let circuit = benchmarks::by_name(name).unwrap();
        let tech = Technology::nm40();
        let placement = place(&circuit, v);
        let layout = Router::new(RouterConfig::default()).unwrap().route(&circuit, &placement, &tech, &RoutingGuidance::None).unwrap();
        let px = extract(&circuit, &tech, &layout);
        for rn in &layout.nets {
            let rec = px.net(rn.net);
            prop_assert_eq!(rec.wirelength, rn.wirelength);
            prop_assert_eq!(rec.vias, rn.vias);
            if rn.wirelength > 0 {
                prop_assert!(rec.resistance > 0.0);
                prop_assert!(rec.cap_ground > 0.0);
            }
            // resistance at least the via stack, at most a generous bound
            let max_r = tech.wire_resistance(0, rn.wirelength)
                + tech.via_stack_resistance(rn.vias);
            prop_assert!(rec.resistance <= max_r * 1.001);
        }
    }

    #[test]
    fn def_roundtrip_any_variant(name in bench_names(), v in variants()) {
        let circuit = benchmarks::by_name(name).unwrap();
        let tech = Technology::nm40();
        let placement = place(&circuit, v);
        let layout = Router::new(RouterConfig::default()).unwrap().route(&circuit, &placement, &tech, &RoutingGuidance::None).unwrap();
        let text = write_def(&circuit, &placement, &layout);
        let back = parse_def(&circuit, &text).unwrap();
        prop_assert_eq!(back.total_wirelength(), layout.total_wirelength());
        prop_assert_eq!(back.total_vias(), layout.total_vias());
    }

    #[test]
    fn spice_deck_is_wellformed(name in bench_names(), v in variants()) {
        let circuit = benchmarks::by_name(name).unwrap();
        let tech = Technology::nm40();
        let placement = place(&circuit, v);
        let layout = Router::new(RouterConfig::default()).unwrap().route(&circuit, &placement, &tech, &RoutingGuidance::None).unwrap();
        let px = extract(&circuit, &tech, &layout);
        let deck = to_spice(&circuit, Some(&px));
        prop_assert!(deck.trim_end().ends_with(".end"));
        // every element line has at least name + 2 nodes + value
        for line in deck.lines() {
            let first = line.chars().next().unwrap_or('*');
            if matches!(first, 'R' | 'C' | 'G' | 'V') {
                prop_assert!(
                    line.split_whitespace().count() >= 4,
                    "short element line: {line}"
                );
            }
        }
    }
}

fn af_geom_point(p: analogfold_suite::geom::Point3) -> analogfold_suite::geom::Point {
    analogfold_suite::geom::Point::new(p.x, p.y)
}

mod def_fuzz {
    use analogfold_suite::geom::{Point3, Segment};
    use analogfold_suite::netlist::{benchmarks, NetId};
    use analogfold_suite::place::{place, PlacementVariant};
    use analogfold_suite::route::{parse_def, write_def, RoutedLayout, RoutedNet};
    use proptest::prelude::*;

    /// A random Manhattan segment (planar or via).
    fn arb_segment() -> impl Strategy<Value = Segment> {
        (
            -50_000i64..50_000,
            -50_000i64..50_000,
            0u8..4,
            prop_oneof![Just(0u8), Just(1), Just(2)],
            1i64..20_000,
        )
            .prop_map(|(x, y, l, kind, len)| {
                let a = Point3::new(x, y, l);
                let b = match kind {
                    0 => Point3::new(x + len, y, l),
                    1 => Point3::new(x, y + len, l),
                    _ => Point3::new(x, y, if l == 3 { 2 } else { l + 1 }),
                };
                Segment::new(a, b).expect("axis-aligned by construction")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn def_roundtrips_arbitrary_manhattan_layouts(
            segs in prop::collection::vec(arb_segment(), 1..40),
            net_idx in 0u32..10,
        ) {
            let circuit = benchmarks::ota1();
            let placement = place(&circuit, PlacementVariant::A);
            let layout = RoutedLayout {
                nets: vec![RoutedNet::from_segments(NetId::new(net_idx), segs)],
                iterations: 1,
                conflicts: 0,
                runtime_s: 0.0,
            };
            let text = write_def(&circuit, &placement, &layout);
            let back = parse_def(&circuit, &text).unwrap();
            prop_assert_eq!(back.nets.len(), 1);
            prop_assert_eq!(back.nets[0].net, NetId::new(net_idx));
            prop_assert_eq!(back.total_wirelength(), layout.total_wirelength());
            prop_assert_eq!(back.total_vias(), layout.total_vias());
            let mut sa = layout.nets[0].segments.clone();
            let mut sb = back.nets[0].segments.clone();
            let key = |s: &Segment| (s.start().z, s.start().x, s.start().y, s.end().x, s.end().y, s.end().z);
            sa.sort_by_key(key);
            sb.sort_by_key(key);
            prop_assert_eq!(sa, sb);
        }
    }
}
