//! Integration: the full netlist → placement → routing → extraction →
//! simulation pipeline across every benchmark.

use analogfold_suite::extract::extract;
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{check_layout, Router, RouterConfig, RoutingGuidance, ViolationKind};
use analogfold_suite::sim::{simulate, SimConfig};
use analogfold_suite::tech::Technology;

#[test]
fn all_benchmarks_route_extract_simulate() {
    let tech = Technology::nm40();
    let sim_cfg = SimConfig::default();
    for circuit in benchmarks::all() {
        let placement = place(&circuit, PlacementVariant::A);
        placement.check(&circuit).expect("legal placement");
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&circuit, &placement, &tech, &RoutingGuidance::None)
            .unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
        assert!(
            layout.conflicts <= 2,
            "{}: {} conflicts",
            circuit.name(),
            layout.conflicts
        );

        let parasitics = extract(&circuit, &tech, &layout);
        assert!(
            parasitics.nets().iter().any(|n| n.resistance > 0.0),
            "{}: no extracted resistance",
            circuit.name()
        );

        let schematic = simulate(&circuit, None, &sim_cfg).expect("schematic sim");
        let post = simulate(&circuit, Some(&parasitics), &sim_cfg).expect("post-layout sim");

        // physics sanity: parasitics can only hurt gain/bandwidth and create
        // offset
        assert!(
            post.dc_gain_db <= schematic.dc_gain_db + 0.5,
            "{}",
            circuit.name()
        );
        // Coupling capacitance can create high-frequency feedthrough that
        // extends the unity crossing past the schematic value (a real
        // measurement artifact), so the bound is loose on the high side.
        assert!(
            post.bandwidth_mhz <= schematic.bandwidth_mhz * 1.5,
            "{}: BW {} vs {}",
            circuit.name(),
            post.bandwidth_mhz,
            schematic.bandwidth_mhz
        );
        assert_eq!(schematic.offset_uv, 0.0);
        assert!(
            post.offset_uv > 0.0,
            "{}: routing must create offset",
            circuit.name()
        );
        assert!(post.cmrr_db <= schematic.cmrr_db, "{}", circuit.name());
    }
}

#[test]
fn no_hard_drc_violations_on_any_variant() {
    let tech = Technology::nm40();
    let circuit = benchmarks::ota2();
    for variant in PlacementVariant::ALL {
        let placement = place(&circuit, variant);
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&circuit, &placement, &tech, &RoutingGuidance::None)
            .unwrap();
        let violations = check_layout(&circuit, &placement, &tech, &layout);
        let hard: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v.kind, ViolationKind::Short | ViolationKind::OutOfBounds))
            .collect();
        assert!(hard.is_empty(), "{variant}: {hard:?}");
    }
}

#[test]
fn schematic_metric_relations_between_designs() {
    let cfg = SimConfig::default();
    let p1 = simulate(&benchmarks::ota1(), None, &cfg).unwrap();
    let p2 = simulate(&benchmarks::ota2(), None, &cfg).unwrap();
    let p3 = simulate(&benchmarks::ota3(), None, &cfg).unwrap();
    let p4 = simulate(&benchmarks::ota4(), None, &cfg).unwrap();
    // Table 2 schematic column orderings the benchmarks are designed to show
    assert!(p1.cmrr_db > p2.cmrr_db, "OTA1 vs OTA2 CMRR");
    assert!(p1.dc_gain_db > p2.dc_gain_db, "OTA1 vs OTA2 gain");
    assert!(p3.bandwidth_mhz > p1.bandwidth_mhz, "telescopic is faster");
    assert!(
        p4.bandwidth_mhz > p3.bandwidth_mhz * 0.8,
        "OTA4 comparable/faster"
    );
}

#[test]
fn placements_differ_and_affect_metrics() {
    let tech = Technology::nm40();
    let circuit = benchmarks::ota1();
    let cfg = SimConfig::default();
    let mut offsets = Vec::new();
    for variant in [
        PlacementVariant::A,
        PlacementVariant::B,
        PlacementVariant::C,
    ] {
        let placement = place(&circuit, variant);
        let layout = Router::new(RouterConfig::default())
            .unwrap()
            .route(&circuit, &placement, &tech, &RoutingGuidance::None)
            .unwrap();
        let px = extract(&circuit, &tech, &layout);
        let perf = simulate(&circuit, Some(&px), &cfg).unwrap();
        offsets.push(perf.offset_uv);
    }
    assert!(
        offsets.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6),
        "different placements must yield different offsets: {offsets:?}"
    );
}
