//! Reproducibility: the entire stack is seeded, so identical inputs must
//! produce identical outputs — placements, routes, datasets, trained
//! weights, and derived guidance.

use analogfold_suite::analogfold::{
    generate_dataset, relax, AnalogFoldFlow, DatasetConfig, FlowConfig, GnnConfig, GnnProgram,
    GraphTensors, HeteroGraph, Potential, RelaxConfig, ThreeDGnn,
};
use analogfold_suite::extract::extract;
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{Router, RouterConfig, RoutingGuidance};
use analogfold_suite::sim::{simulate, SimConfig};
use analogfold_suite::tech::Technology;

#[test]
fn placement_routing_extraction_simulation_deterministic() {
    let circuit = benchmarks::ota3();
    let tech = Technology::nm40();
    let run = || {
        let p = place(&circuit, PlacementVariant::C);
        let l = Router::new(RouterConfig::default())
            .unwrap()
            .route(&circuit, &p, &tech, &RoutingGuidance::None)
            .unwrap();
        let x = extract(&circuit, &tech, &l);
        let perf = simulate(&circuit, Some(&x), &SimConfig::default()).unwrap();
        (p, l, perf)
    };
    let (p1, l1, perf1) = run();
    let (p2, l2, perf2) = run();
    assert_eq!(p1, p2);
    assert_eq!(l1.nets, l2.nets);
    assert_eq!(perf1, perf2);
}

#[test]
fn dataset_and_flow_deterministic() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let ds_cfg = DatasetConfig {
        samples: 3,
        ..DatasetConfig::default()
    };
    let d1 = generate_dataset(&circuit, &placement, &tech, &graph, &ds_cfg).unwrap();
    let d2 = generate_dataset(&circuit, &placement, &tech, &graph, &ds_cfg).unwrap();
    assert_eq!(d1.samples.len(), d2.samples.len());
    for (a, b) in d1.samples.iter().zip(&d2.samples) {
        assert_eq!(a.guidance, b.guidance);
        assert_eq!(a.performance, b.performance);
    }

    let cfg = || FlowConfig {
        dataset: DatasetConfig {
            samples: 4,
            ..DatasetConfig::default()
        },
        gnn: GnnConfig {
            epochs: 3,
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        },
        relax: RelaxConfig {
            restarts: 2,
            n_derive: 1,
            lbfgs_iters: 5,
            ..RelaxConfig::default()
        },
        ..FlowConfig::default()
    };
    let o1 = AnalogFoldFlow::new(cfg())
        .run(&circuit, &placement)
        .unwrap();
    let o2 = AnalogFoldFlow::new(cfg())
        .run(&circuit, &placement)
        .unwrap();
    assert_eq!(o1.guidance, o2.guidance);
    assert_eq!(o1.performance, o2.performance);
    assert_eq!(o1.layout.nets, o2.layout.nets);
}

/// Observability must not perturb the computation: running the flow with a
/// sink installed (spans, counters, and histograms recording on every hot
/// path) must produce a bit-identical outcome to the silent run. Wall-clock
/// fields (`breakdown`) are excluded — they are measurements, not results.
#[test]
fn flow_outcome_identical_with_observability_enabled() {
    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let builder = || {
        FlowConfig::builder()
            .samples(4)
            .gnn(GnnConfig {
                epochs: 3,
                hidden: 8,
                layers: 1,
                ..GnnConfig::default()
            })
            .relax(RelaxConfig {
                restarts: 2,
                n_derive: 1,
                lbfgs_iters: 5,
                ..RelaxConfig::default()
            })
    };
    let off = AnalogFoldFlow::new(builder().build().unwrap())
        .run(&circuit, &placement)
        .unwrap();

    let sink = std::sync::Arc::new(analogfold_suite::obs::MemorySink::new());
    let on = AnalogFoldFlow::new(
        builder()
            .obs(std::sync::Arc::clone(&sink) as _)
            .build()
            .unwrap(),
    )
    .run(&circuit, &placement)
    .unwrap();

    // The sink must actually have observed the run ...
    let events = sink.events();
    assert!(!events.is_empty(), "obs-on run recorded no events");
    assert!(
        events.iter().any(|e| e.name() == "flow"),
        "missing flow span"
    );

    // ... and the outcome must be bit-identical to the silent run.
    assert_eq!(off.guidance, on.guidance);
    assert_eq!(off.layout.nets, on.layout.nets);
    assert_eq!(off.performance, on.performance);
    assert_eq!(off.train_report.epoch_losses, on.train_report.epoch_losses);
    assert_eq!(
        off.train_report.final_loss.to_bits(),
        on.train_report.final_loss.to_bits()
    );
}

/// The `afrt` contract applied to relaxation: one worker and eight workers
/// must produce bit-identical pools for the same root seed.
#[test]
fn relaxation_thread_count_invariant() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 2);
    let gnn = ThreeDGnn::new(&GnnConfig {
        hidden: 8,
        layers: 1,
        ..GnnConfig::default()
    });
    let potential = Potential::new(&gnn, &graph);
    let run = |threads: usize| {
        relax(
            &potential,
            &RelaxConfig {
                restarts: 8,
                pool_size: 4,
                n_derive: 3,
                lbfgs_iters: 8,
                threads,
                ..RelaxConfig::default()
            },
        )
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.guidance, b.guidance, "guidance must be bit-identical");
        assert!(
            a.potential.to_bits() == b.potential.to_bits(),
            "potential must be bit-identical: {} vs {}",
            a.potential,
            b.potential
        );
    }
}

/// The caching contract: memoization is a pure wall-clock optimization, so
/// a flow run with the caches enabled (tensor prefix, `f_theta` memo,
/// dataset result cache) must be bit-identical to a run with every cache
/// sized to zero — at any worker count.
#[test]
fn flow_outcome_identical_with_cache_on_and_off() {
    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let builder = |cache_mb: u64, threads: usize| {
        FlowConfig::builder()
            .samples(4)
            .threads(threads)
            .cache_mb(cache_mb)
            .gnn(GnnConfig {
                epochs: 3,
                hidden: 8,
                layers: 1,
                ..GnnConfig::default()
            })
            .relax(RelaxConfig {
                restarts: 2,
                n_derive: 1,
                lbfgs_iters: 5,
                cache_mb,
                ..RelaxConfig::default()
            })
            .build()
            .unwrap()
    };
    let off = AnalogFoldFlow::new(builder(0, 1))
        .run(&circuit, &placement)
        .unwrap();
    for (cache_mb, threads) in [(32, 1), (32, 4)] {
        let on = AnalogFoldFlow::new(builder(cache_mb, threads))
            .run(&circuit, &placement)
            .unwrap();
        assert_eq!(
            off.guidance, on.guidance,
            "guidance must be bit-identical (cache {cache_mb} MiB, {threads} threads)"
        );
        assert_eq!(off.layout.nets, on.layout.nets);
        assert_eq!(off.performance, on.performance);
        assert_eq!(off.train_report.epoch_losses, on.train_report.epoch_losses);
        assert_eq!(
            off.train_report.final_loss.to_bits(),
            on.train_report.final_loss.to_bits()
        );
    }
}

/// The same contract at the relaxation tier: enabling the `f_theta` memo
/// must not change a single bit of the relaxation pool, at any worker
/// count — a memo hit returns exactly the floats the evaluation would have
/// produced.
#[test]
fn relaxation_cache_on_off_thread_count_invariant() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 2);
    let gnn = ThreeDGnn::new(&GnnConfig {
        hidden: 8,
        layers: 1,
        ..GnnConfig::default()
    });
    let run = |threads: usize, cache_mb: u64| {
        let mut potential = Potential::new(&gnn, &graph);
        potential.enable_memo(cache_mb);
        relax(
            &potential,
            &RelaxConfig {
                restarts: 6,
                pool_size: 3,
                n_derive: 2,
                lbfgs_iters: 8,
                threads,
                cache_mb,
                ..RelaxConfig::default()
            },
        )
    };
    let base = run(1, 0);
    for (threads, cache_mb) in [(1, 16), (4, 16), (8, 16)] {
        let out = run(threads, cache_mb);
        assert_eq!(base.len(), out.len());
        for (a, b) in base.iter().zip(&out) {
            assert_eq!(
                a.guidance, b.guidance,
                "guidance must be bit-identical (cache {cache_mb} MiB, {threads} threads)"
            );
            assert_eq!(
                a.potential.to_bits(),
                b.potential.to_bits(),
                "potential must be bit-identical: {} vs {}",
                a.potential,
                b.potential
            );
        }
    }
}

/// The `afrt` contract applied to dataset generation: per-sample seed
/// splitting makes the dataset independent of the worker count.
#[test]
fn dataset_generation_thread_count_invariant() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 2);
    let run = |threads: usize| {
        generate_dataset(
            &circuit,
            &placement,
            &tech,
            &graph,
            &DatasetConfig {
                samples: 6,
                threads,
                ..DatasetConfig::default()
            },
        )
        .unwrap()
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.samples.len(), par.samples.len());
    for (a, b) in seq.samples.iter().zip(&par.samples) {
        assert_eq!(a.guidance, b.guidance, "sampled guidance must match");
        assert_eq!(a.performance, b.performance, "labels must match");
    }
}

/// The retry layer must be invisible when nothing fails: a dataset built
/// under the default retry policy is bit-identical to one built with
/// retries disabled, at any worker count. (Armed-failpoint determinism is
/// covered by `tests/chaos.rs`, which serializes scenarios; this test
/// deliberately never arms the global registry so it can run concurrently
/// with its neighbors.)
#[test]
fn dataset_retry_policy_is_invisible_without_faults() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 2);
    let run = |threads: usize, retry: analogfold_suite::fault::RetryPolicy| {
        generate_dataset(
            &circuit,
            &placement,
            &tech,
            &graph,
            &DatasetConfig {
                samples: 6,
                threads,
                retry,
                ..DatasetConfig::default()
            },
        )
        .unwrap()
    };
    let reference = run(1, analogfold_suite::fault::RetryPolicy::none());
    for threads in [1usize, 4, 8] {
        let with_retries = run(threads, analogfold_suite::fault::RetryPolicy::default());
        assert_eq!(reference.samples.len(), with_retries.samples.len());
        for (a, b) in reference.samples.iter().zip(&with_retries.samples) {
            assert_eq!(a.guidance, b.guidance);
            assert_eq!(a.performance, b.performance);
        }
    }
}

/// Deterministic guidance probes inside the box bounds (no RNG: the same
/// points must be fed to both GNN implementations).
fn guidance_probes(n: usize, dim: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    let mid = 0.5 * (lo + hi);
    let amp = 0.4 * (hi - lo);
    (0..n)
        .map(|j| {
            (0..dim)
                .map(|i| mid + amp * ((1 + i + j * dim) as f64).sin())
                .collect()
        })
        .collect()
}

/// The af-tensor contract: the compiled `GnnProgram` tape is a drop-in
/// replacement for the scalar `af_nn::Graph` oracle within ≤1e-9 —
/// predictions, FoM values, and guidance gradients. The deliberate
/// deviations are the polynomial exp (≲1e-13 relative vs libm) and, where
/// the runtime AVX2+FMA dispatch engages, fused multiply-add rounding; both
/// stay far inside the envelope (see `crates/tensor/src/lib.rs`).
#[test]
fn gnn_tensor_path_matches_scalar_oracle() {
    fn close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
            "{what} diverged: {a} vs {b} (|Δ| = {:e})",
            (a - b).abs()
        );
    }
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 2);
    let cfg = GnnConfig {
        hidden: 8,
        layers: 1,
        ..GnnConfig::default()
    };
    let gnn = ThreeDGnn::new(&cfg);
    let tensors = GraphTensors::new(&graph);
    let weights = [1.0, -1.0, -1.0, -1.0, 1.0];
    let probes = guidance_probes(4, tensors.guidance_len(), cfg.c_min, cfg.c_max);

    let mut predictor = GnnProgram::compile_predict(&gnn, &tensors);
    let mut fom = GnnProgram::compile_fom(&gnn, &tensors, &weights);
    for c in &probes {
        let fast = predictor.predict(c);
        let oracle = gnn.predict_oracle(&graph, c);
        assert_eq!(fast.len(), oracle.len());
        for (a, b) in fast.iter().zip(&oracle) {
            close(*a, *b, "prediction");
        }

        let (f_fast, g_fast) = fom.fom_and_grad(c);
        let (f_oracle, g_oracle) = gnn.fom_and_grad_oracle(&tensors, c, &weights);
        close(f_fast, f_oracle, "FoM");
        assert_eq!(g_fast.len(), g_oracle.len());
        for (a, b) in g_fast.iter().zip(&g_oracle) {
            close(*a, *b, "gradient");
        }
    }
}

/// Tape replay and recompilation are both deterministic: a recompiled
/// program gives the same bits as a fresh one, and a program returning to a
/// previously seen input reproduces it exactly even after evaluating other
/// points in between. (Thread-count and cache on/off invariance of the
/// tensor path is covered by `relaxation_thread_count_invariant` and
/// `relaxation_cache_on_off_thread_count_invariant` above, which run the
/// compiled tape unless `AF_GNN_ORACLE` forces the scalar path.)
#[test]
fn gnn_program_replay_and_recompilation_deterministic() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 2);
    let cfg = GnnConfig {
        hidden: 8,
        layers: 1,
        ..GnnConfig::default()
    };
    let gnn = ThreeDGnn::new(&cfg);
    let tensors = GraphTensors::new(&graph);
    let weights = [1.0, -1.0, -1.0, -1.0, 1.0];
    let probes = guidance_probes(3, tensors.guidance_len(), cfg.c_min, cfg.c_max);

    let mut p1 = GnnProgram::compile_fom(&gnn, &tensors, &weights);
    let mut p2 = GnnProgram::compile_fom(&gnn, &tensors, &weights);
    let first = p1.fom_and_grad(&probes[0]);
    for c in &probes {
        let (fa, ga) = p1.fom_and_grad(c);
        let (fb, gb) = p2.fom_and_grad(c);
        assert_eq!(fa.to_bits(), fb.to_bits(), "recompiled program diverged");
        assert_eq!(ga.len(), gb.len());
        for (a, b) in ga.iter().zip(&gb) {
            assert_eq!(a.to_bits(), b.to_bits(), "recompiled gradient diverged");
        }
    }
    let again = p1.fom_and_grad(&probes[0]);
    assert_eq!(first.0.to_bits(), again.0.to_bits(), "replay drifted");
    for (a, b) in first.1.iter().zip(&again.1) {
        assert_eq!(a.to_bits(), b.to_bits(), "replay gradient drifted");
    }
}

/// The router's parallel-negotiation contract: the routed layout is
/// bit-identical at every worker count — the per-round snapshot plus
/// deterministic task-order merge must hide scheduling entirely.
#[test]
fn routing_thread_count_invariant() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let run = |threads: usize| {
        let cfg = RouterConfig::builder().threads(threads).build().unwrap();
        Router::new(cfg)
            .unwrap()
            .route(&circuit, &placement, &tech, &RoutingGuidance::None)
            .unwrap()
    };
    let reference = run(1);
    for threads in [4usize, 8] {
        let layout = run(threads);
        assert_eq!(
            reference.nets, layout.nets,
            "layout must be bit-identical at {threads} threads"
        );
        assert_eq!(reference.conflicts, layout.conflicts);
        assert_eq!(reference.iterations, layout.iterations);
    }
}
