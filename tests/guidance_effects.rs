//! Integration: routing guidance must reach the router's cost function and
//! produce the expected qualitative effects.

use analogfold_suite::extract::extract;
use analogfold_suite::geom::{Axis, CostTriple, Point3};
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{
    GuidanceMap2D, NonUniformGuidance, Router, RouterConfig, RoutingGuidance,
};
use analogfold_suite::tech::Technology;

fn field_for(
    circuit: &analogfold_suite::netlist::Circuit,
    placement: &analogfold_suite::place::Placement,
    nets: &[&str],
    triple: CostTriple,
) -> RoutingGuidance {
    let mut g = NonUniformGuidance::new();
    for name in nets {
        let net = circuit.net_by_name(name).unwrap();
        for pin in placement.pins_of_net(net) {
            let c = pin.rect.center();
            g.set(net, Point3::new(c.x, c.y, pin.layer), triple);
        }
    }
    RoutingGuidance::NonUniform(g)
}

#[test]
fn via_penalty_reduces_vias_on_guided_net() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let cfg = RouterConfig::default();
    let vout = circuit.net_by_name("vout").unwrap();

    let base = Router::new(cfg.clone())
        .unwrap()
        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
        .unwrap();
    let guided = Router::new(cfg.clone())
        .unwrap()
        .route(
            &circuit,
            &placement,
            &tech,
            &field_for(&circuit, &placement, &["vout"], CostTriple([1.0, 1.0, 4.0])),
        )
        .unwrap();
    let base_vias = base.net(vout).map(|n| n.vias).unwrap_or(0);
    let guided_vias = guided.net(vout).map(|n| n.vias).unwrap_or(0);
    assert!(
        guided_vias <= base_vias,
        "via guidance must not increase vias: {base_vias} -> {guided_vias}"
    );
}

#[test]
fn uniform_scaling_is_a_noop() {
    // multiplying every direction of every guided AP by the same factor
    // leaves relative costs unchanged, so the routing must be identical
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let cfg = RouterConfig::default();
    let all_nets: Vec<String> = circuit
        .guided_nets()
        .iter()
        .map(|&n| circuit.net(n).name.clone())
        .collect();
    let refs: Vec<&str> = all_nets.iter().map(String::as_str).collect();

    let base = Router::new(cfg.clone())
        .unwrap()
        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
        .unwrap();
    let scaled = Router::new(cfg.clone())
        .unwrap()
        .route(
            &circuit,
            &placement,
            &tech,
            &field_for(&circuit, &placement, &refs, CostTriple::uniform(2.0)),
        )
        .unwrap();
    assert_eq!(base.nets, scaled.nets);
}

#[test]
fn guidance_multiplier_dispatch() {
    let mut g = NonUniformGuidance::new();
    let net = analogfold_suite::netlist::NetId::new(0);
    g.set(net, Point3::new(0, 0, 0), CostTriple([0.5, 2.0, 3.0]));
    let rg = RoutingGuidance::NonUniform(g);
    assert_eq!(rg.multiplier(net, Point3::new(5, 5, 0), Axis::X), 0.5);
    assert_eq!(rg.multiplier(net, Point3::new(5, 5, 0), Axis::Y), 2.0);
    assert_eq!(rg.multiplier(net, Point3::new(5, 5, 0), Axis::Z), 3.0);
}

#[test]
fn map_guidance_router_optimizes_the_guided_objective() {
    // The router's contract: with a 2-D cost map installed, the chosen route
    // should score no worse under that map than the unguided route does.
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let cfg = RouterConfig::default();
    let die = placement.die();

    let mut map = GuidanceMap2D::new(2, 1, (die.lo().x, die.lo().y), (die.width(), die.height()));
    let vout = circuit.net_by_name("vout").unwrap();
    map.set_net(vout, vec![6.0, 1.0]);
    let guidance = RoutingGuidance::Map(map);

    let base = Router::new(cfg.clone())
        .unwrap()
        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
        .unwrap();
    let guided = Router::new(cfg.clone())
        .unwrap()
        .route(&circuit, &placement, &tech, &guidance)
        .unwrap();

    let map_cost = |layout: &analogfold_suite::route::RoutedLayout| -> f64 {
        layout
            .net(vout)
            .map(|n| {
                n.segments
                    .iter()
                    .filter(|s| !s.is_via())
                    .map(|s| {
                        let mid = Point3::new(
                            (s.start().x + s.end().x) / 2,
                            (s.start().y + s.end().y) / 2,
                            s.layer(),
                        );
                        s.length() as f64 * guidance.multiplier(vout, mid, Axis::X)
                    })
                    .sum()
            })
            .unwrap_or(0.0)
    };
    let (b, g) = (map_cost(&base), map_cost(&guided));
    assert!(
        g <= b * 1.10,
        "guided route must score no worse under its own map: base {b:.0}, guided {g:.0}"
    );
}

#[test]
fn guided_routing_remains_connected_and_extractable() {
    let circuit = benchmarks::ota3();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::B);
    let cfg = RouterConfig::default();
    let nets: Vec<String> = circuit
        .guided_nets()
        .iter()
        .map(|&n| circuit.net(n).name.clone())
        .collect();
    let refs: Vec<&str> = nets.iter().map(String::as_str).collect();
    let guided = Router::new(cfg.clone())
        .unwrap()
        .route(
            &circuit,
            &placement,
            &tech,
            &field_for(&circuit, &placement, &refs, CostTriple([0.5, 1.8, 2.5])),
        )
        .unwrap();
    assert!(guided.total_wirelength() > 0);
    let px = extract(&circuit, &tech, &guided);
    assert!(px.nets().iter().any(|n| n.cap_ground > 0.0));
}
