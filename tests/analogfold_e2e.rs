//! Integration: the AnalogFold machine-learning loop end to end at test
//! scale — data generation, 3DGNN training, relaxation, guided routing.

use analogfold_suite::analogfold::{
    generate_dataset, magical_route, relax, AnalogFoldFlow, Dataset, DatasetConfig, FlowConfig,
    GnnConfig, HeteroGraph, Potential, RelaxConfig, ThreeDGnn,
};
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::RouterConfig;
use analogfold_suite::sim::SimConfig;
use analogfold_suite::tech::Technology;

fn tiny_gnn_cfg() -> GnnConfig {
    GnnConfig {
        hidden: 8,
        layers: 1,
        epochs: 6,
        ..GnnConfig::default()
    }
}

#[test]
fn training_learns_real_data_better_than_untrained() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let dataset = generate_dataset(
        &circuit,
        &placement,
        &tech,
        &graph,
        &DatasetConfig {
            samples: 10,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let cfg = GnnConfig {
        epochs: 20,
        ..tiny_gnn_cfg()
    };
    let mut gnn = ThreeDGnn::new(&cfg);
    let report = gnn.train(&graph, &dataset, &cfg);
    assert!(
        report.final_loss < report.epoch_losses[0],
        "training must reduce loss: {} -> {}",
        report.epoch_losses[0],
        report.final_loss
    );
    // trained model's predictions correlate in scale with the labels
    let pred = gnn.predict(&graph, &dataset.samples[0].guidance);
    let label = dataset.samples[0].metrics();
    for (p, l) in pred.iter().zip(label) {
        assert!(
            p.abs() < l.abs() * 100.0 + 1e3,
            "prediction scale off: {p} vs {l}"
        );
    }
}

#[test]
fn relaxed_guidance_stays_feasible_and_beats_random_mean() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let dataset = generate_dataset(
        &circuit,
        &placement,
        &tech,
        &graph,
        &DatasetConfig {
            samples: 8,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let cfg = tiny_gnn_cfg();
    let mut gnn = ThreeDGnn::new(&cfg);
    gnn.train(&graph, &dataset, &cfg);

    let pot = Potential::new(&gnn, &graph);
    let outcomes = relax(
        &pot,
        &RelaxConfig {
            restarts: 6,
            n_derive: 3,
            lbfgs_iters: 12,
            ..RelaxConfig::default()
        },
    );
    let (lo, hi) = pot.bounds();
    for o in &outcomes {
        assert!(o.guidance.iter().all(|&c| c > lo && c < hi));
        assert!(o.potential.is_finite());
    }
    // relaxed potential beats the average potential of random points
    let mut rand_v = 0.0;
    for i in 0..5 {
        let c: Vec<f64> = (0..pot.dim())
            .map(|j| 0.4 + ((i * 31 + j * 7) % 20) as f64 / 10.0)
            .collect();
        rand_v += pot.value_and_grad(&c).0 / 5.0;
    }
    assert!(
        outcomes[0].potential <= rand_v,
        "relaxed {} vs random mean {}",
        outcomes[0].potential,
        rand_v
    );
}

#[test]
fn flow_produces_competitive_results() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);

    let (_, _, base) = magical_route(
        &circuit,
        &placement,
        &tech,
        &RouterConfig::default(),
        &SimConfig::default(),
    )
    .unwrap();

    let cfg = FlowConfig {
        dataset: DatasetConfig {
            samples: 10,
            ..DatasetConfig::default()
        },
        gnn: tiny_gnn_cfg(),
        relax: RelaxConfig {
            restarts: 4,
            n_derive: 2,
            lbfgs_iters: 10,
            ..RelaxConfig::default()
        },
        ..FlowConfig::default()
    };
    let outcome = AnalogFoldFlow::new(cfg).run(&circuit, &placement).unwrap();
    let ours = outcome.performance;

    // at minimum, the guided result must stay in the same performance class
    assert!(ours.dc_gain_db > base.dc_gain_db - 3.0);
    assert!(ours.bandwidth_mhz > base.bandwidth_mhz * 0.8);
    // and win on at least one of the five metrics (the selection loop picks
    // the best candidate by FoM, which includes the baseline's weaknesses)
    let wins = [
        ours.offset_uv < base.offset_uv,
        ours.cmrr_db > base.cmrr_db,
        ours.bandwidth_mhz > base.bandwidth_mhz,
        ours.dc_gain_db > base.dc_gain_db,
        ours.noise_uvrms < base.noise_uvrms,
    ];
    assert!(
        wins.iter().any(|&w| w),
        "AnalogFold should win at least one metric: ours {ours:?} vs base {base:?}"
    );
}

#[test]
fn dataset_serialization_roundtrip() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let dataset = generate_dataset(
        &circuit,
        &placement,
        &tech,
        &graph,
        &DatasetConfig {
            samples: 2,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let json = serde_json::to_string(&dataset).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), dataset.len());
    // serde_json's default float parsing is accurate to 1 ULP, not exact
    for (a, b) in back.samples[0]
        .guidance
        .iter()
        .zip(&dataset.samples[0].guidance)
    {
        assert!((a - b).abs() <= f64::EPSILON * a.abs().max(1.0));
    }
}
