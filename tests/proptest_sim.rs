//! Property-based tests of the MNA simulator against analytic RC answers.

use analogfold_suite::netlist::{
    CapParams, CircuitBuilder, DeviceKind, DeviceParams, NetType, ResParams, Terminal,
};
use analogfold_suite::sim::{Complex, Network};
use proptest::prelude::*;

/// Builds `vinp -R- out -C- gnd` (plus a huge bleed resistor on vinn).
fn rc_circuit(r: f64, c: f64) -> analogfold_suite::netlist::Circuit {
    let mut b = CircuitBuilder::new("rc");
    b.add_net("vdd", NetType::Power).unwrap();
    b.add_net("vss", NetType::Ground).unwrap();
    b.add_net("vinp", NetType::Input).unwrap();
    b.add_net("vinn", NetType::Input).unwrap();
    b.add_net("out", NetType::Output).unwrap();
    b.add_device(
        "R1",
        DeviceKind::Resistor,
        DeviceParams::Res(ResParams { r }),
        &[(Terminal::Pos, "vinp"), (Terminal::Neg, "out")],
    )
    .unwrap();
    b.add_device(
        "C1",
        DeviceKind::Capacitor,
        DeviceParams::Cap(CapParams { c }),
        &[(Terminal::Pos, "out"), (Terminal::Neg, "vss")],
    )
    .unwrap();
    b.add_device(
        "RB",
        DeviceKind::Resistor,
        DeviceParams::Res(ResParams { r: 1e12 }),
        &[(Terminal::Pos, "vinn"), (Terminal::Neg, "out")],
    )
    .unwrap();
    b.set_io("vinp", "vinn", "out", None, "vdd", "vss").unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn rc_lowpass_matches_analytic(
        r_kohm in 0.1f64..100.0,
        c_pf in 1.0f64..1_000.0,
        f_rel in 0.01f64..100.0,
    ) {
        let r = r_kohm * 1e3;
        let c = c_pf * 1e-12;
        let circuit = rc_circuit(r, c);
        let network = Network::build(&circuit, None, 0.0, 0.8, 300.0);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let f = fc * f_rel;
        let w = 2.0 * std::f64::consts::PI * f;
        let sol = network.solve_at(w, [Complex::ONE, Complex::ZERO], &[]).unwrap();
        let mag = network.output(&sol).abs();
        let expected = 1.0 / (1.0 + (f / fc).powi(2)).sqrt();
        prop_assert!(
            (mag - expected).abs() < 0.01 * (1.0 + expected),
            "f/fc={f_rel}: got {mag}, expected {expected}"
        );
    }

    #[test]
    fn rc_phase_is_negative(
        r_kohm in 0.1f64..100.0,
        c_pf in 1.0f64..1_000.0,
    ) {
        let r = r_kohm * 1e3;
        let c = c_pf * 1e-12;
        let circuit = rc_circuit(r, c);
        let network = Network::build(&circuit, None, 0.0, 0.8, 300.0);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let w = 2.0 * std::f64::consts::PI * fc;
        let sol = network.solve_at(w, [Complex::ONE, Complex::ZERO], &[]).unwrap();
        let out = network.output(&sol);
        // at the pole frequency phase = -45 degrees
        prop_assert!(
            (out.arg() + std::f64::consts::FRAC_PI_4).abs() < 0.02,
            "phase {}",
            out.arg()
        );
    }

    #[test]
    fn resistor_divider_is_frequency_flat(
        r1_kohm in 0.1f64..100.0,
        r2_kohm in 0.1f64..100.0,
        f in 1.0f64..1e9,
    ) {
        let (r1, r2) = (r1_kohm * 1e3, r2_kohm * 1e3);
        let mut b = CircuitBuilder::new("div");
        b.add_net("vdd", NetType::Power).unwrap();
        b.add_net("vss", NetType::Ground).unwrap();
        b.add_net("vinp", NetType::Input).unwrap();
        b.add_net("vinn", NetType::Input).unwrap();
        b.add_net("out", NetType::Output).unwrap();
        b.add_device(
            "R1",
            DeviceKind::Resistor,
            DeviceParams::Res(ResParams { r: r1 }),
            &[(Terminal::Pos, "vinp"), (Terminal::Neg, "out")],
        )
        .unwrap();
        b.add_device(
            "R2",
            DeviceKind::Resistor,
            DeviceParams::Res(ResParams { r: r2 }),
            &[(Terminal::Pos, "out"), (Terminal::Neg, "vss")],
        )
        .unwrap();
        b.add_device(
            "RB",
            DeviceKind::Resistor,
            DeviceParams::Res(ResParams { r: 1e12 }),
            &[(Terminal::Pos, "vinn"), (Terminal::Neg, "out")],
        )
        .unwrap();
        b.set_io("vinp", "vinn", "out", None, "vdd", "vss").unwrap();
        let circuit = b.finish().unwrap();
        let network = Network::build(&circuit, None, 0.0, 0.8, 300.0);
        let w = 2.0 * std::f64::consts::PI * f;
        let sol = network.solve_at(w, [Complex::ONE, Complex::ZERO], &[]).unwrap();
        let mag = network.output(&sol).abs();
        let expected = r2 / (r1 + r2);
        prop_assert!((mag - expected).abs() < 1e-6 * (1.0 + expected));
    }
}
