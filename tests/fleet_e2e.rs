//! End-to-end fleet tests, in-process but over real loopback sockets:
//!
//! 1. A front proxying `/v1/predict` answers byte-identically to every
//!    replica, stamps which worker served the request, retries the other
//!    replica when the first is unreachable, and shrinks its ring once a
//!    worker's membership lease expires.
//! 2. Distributed dataset generation (coordinator + leasing workers over
//!    HTTP) assembles a dataset bit-identical to the single-process
//!    baseline — the determinism contract the healing story rests on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use analogfold_suite::analogfold::{
    assemble_dataset, generate_dataset, GnnConfig, ShardStore, ThreeDGnn,
};
use analogfold_suite::fleet::{
    run_gen_worker, spec_config, spec_design, Coordinator, CoordinatorConfig, Front, FrontConfig,
    FrontHandle, GenSpec, WorkerAgent, WorkerCaps, WorkerIdentity,
};
use analogfold_suite::guard::HedgeConfig;
use analogfold_suite::serve::{ModelBundle, ServeConfig, Server};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("af-fleet-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_gnn() -> ThreeDGnn {
    ThreeDGnn::new(&GnnConfig {
        hidden: 8,
        layers: 1,
        ..GnnConfig::default()
    })
}

struct Reply {
    status: u16,
    body: String,
    headers: Vec<(String, String)>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot HTTP exchange on a fresh connection (connection: close).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    request_with(addr, method, path, body, &[])
}

/// [`request`] with extra request headers (e.g. `x-deadline-ms`).
fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra: &[(&str, &str)],
) -> Reply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let extra_lines: String = extra
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n{extra_lines}connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap();
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    Reply {
        status,
        body: String::from_utf8(body).unwrap(),
        headers,
    }
}

fn wait_ring(front: &FrontHandle, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while front.worker_count() != want {
        assert!(
            Instant::now() < deadline,
            "front ring stuck at {} workers, wanted {want}",
            front.worker_count()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn guidance_body(guidance_len: usize, nonce: u64) -> String {
    let n = nonce as f64;
    format!(
        "{{\"guidance\":[{}]}}",
        (0..guidance_len)
            .map(|i| format!("{:?}", ((i as f64).mul_add(0.31, n * 0.83)).sin() * 0.3))
            .collect::<Vec<_>>()
            .join(",")
    )
}

#[test]
fn front_parity_failover_and_ring_shrink() {
    let gnn = small_gnn();
    let coord = Coordinator::bind(CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        // Short membership leases so the ring-shrink step stays fast.
        lease_ms: 400,
        gen: None,
    })
    .unwrap();
    let coordinator = coord.addr().to_string();

    let mut rigs = Vec::new();
    let mut guidance_len = 0;
    for i in 0..2 {
        let bundle = ModelBundle::with_model("OTA1", "A", gnn.clone()).unwrap();
        guidance_len = bundle.guidance_len();
        let model_hash = bundle.model_hash.clone();
        let server = Server::bind(
            bundle,
            ServeConfig {
                job_dir: Some(tmp_dir(&format!("serve-w{i}"))),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let id = format!("e{i}");
        let agent = WorkerAgent::start(
            &coordinator,
            WorkerIdentity {
                id: id.clone(),
                addr: server.addr().to_string(),
                caps: WorkerCaps {
                    serve: true,
                    gen: false,
                },
                model_hash,
                guidance_len: guidance_len as u64,
            },
        );
        rigs.push((id, server, agent));
    }
    let front = Front::bind(FrontConfig {
        addr: "127.0.0.1:0".to_string(),
        coordinator: coordinator.clone(),
        refresh_ms: 50,
        // Guard machinery off: this test pins down the plain ring contract
        // (who serves which key, failover, shrink) without hedged duplicates.
        hedge: HedgeConfig {
            enabled: false,
            ..HedgeConfig::default()
        },
        breaker_enabled: false,
        ..FrontConfig::default()
    })
    .unwrap();
    wait_ring(&front, 2);

    // Parity: the front's answer is byte-identical to what every replica
    // answers directly (same model, deterministic forward pass; on the
    // routed-to worker the direct call replays the front-warmed cache).
    let body = guidance_body(guidance_len, 1);
    let via_front = request(front.addr(), "POST", "/v1/predict", &body);
    assert_eq!(via_front.status, 200, "{}", via_front.body);
    let served_by = via_front
        .header("x-fleet-worker")
        .expect("front stamps the serving worker")
        .to_string();
    assert!(rigs.iter().any(|(id, ..)| *id == served_by));
    for (id, server, _) in &rigs {
        let direct = request(server.addr(), "POST", "/v1/predict", &body);
        assert_eq!(direct.status, 200);
        assert_eq!(
            direct.body, via_front.body,
            "replica {id} disagrees with the front"
        );
    }

    // Failover: kill the server that answered (but leave its agent
    // heartbeating, so the ring still lists it). The front's first-ranked
    // upstream is now unreachable and the request must land on the other
    // replica in the same client call.
    let idx = rigs.iter().position(|(id, ..)| *id == served_by).unwrap();
    let (_, dead_server, dead_agent) = rigs.remove(idx);
    dead_server.shutdown();
    dead_server.join();
    let survivor = rigs[0].0.clone();
    let failover = request(front.addr(), "POST", "/v1/predict", &body);
    assert_eq!(
        failover.status, 200,
        "single-hop retry must hide the dead replica: {}",
        failover.body
    );
    assert_eq!(failover.header("x-fleet-worker"), Some(survivor.as_str()));
    assert_eq!(failover.body, via_front.body);

    // Ring shrink: once the dead worker stops heartbeating, its membership
    // lease expires and the front drops it — every key now routes to the
    // survivor directly, no failover hop involved.
    dead_agent.stop();
    wait_ring(&front, 1);
    for nonce in 2..6 {
        let reply = request(
            front.addr(),
            "POST",
            "/v1/predict",
            &guidance_body(guidance_len, nonce),
        );
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-fleet-worker"), Some(survivor.as_str()));
    }

    front.shutdown();
    front.join();
    for (_, server, agent) in rigs {
        agent.stop();
        server.shutdown();
        server.join();
    }
    coord.shutdown();
    coord.join();
}

#[test]
fn distributed_gen_matches_single_process_dataset() {
    let checkpoint = tmp_dir("gen");
    let spec = GenSpec {
        bench: "OTA1".to_string(),
        variant: "A".to_string(),
        samples: 8,
        shard_size: 2,
        seed: 5,
        c_low: 0.4,
        c_high: 2.4,
        checkpoint: checkpoint.to_string_lossy().into_owned(),
        threads: 1,
        cache_mb: 0,
    };
    let cfg = spec_config(&spec).unwrap();
    let design = spec_design(&spec).unwrap();
    let baseline = generate_dataset(
        &design.circuit,
        &design.placement,
        &design.tech,
        &design.graph,
        &cfg,
    )
    .unwrap();

    let coord = Coordinator::bind(CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        lease_ms: 0,
        gen: Some(spec.clone()),
    })
    .unwrap();
    let coordinator = coord.addr().to_string();
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let coordinator = coordinator.clone();
            std::thread::spawn(move || {
                let id = format!("g{i}");
                let agent = WorkerAgent::start(
                    &coordinator,
                    WorkerIdentity {
                        id: id.clone(),
                        addr: String::new(),
                        caps: WorkerCaps {
                            serve: false,
                            gen: true,
                        },
                        model_hash: String::new(),
                        guidance_len: 0,
                    },
                );
                let result = run_gen_worker(&coordinator, &id, Some(&agent));
                agent.stop();
                result
            })
        })
        .collect();
    assert!(
        coord.wait_gen_done(Duration::from_millis(25)),
        "a configured gen job must report done"
    );
    let mut shards_seen = 0;
    for t in workers {
        let summary = t.join().unwrap().unwrap();
        shards_seen += summary.shards_computed + summary.shards_skipped;
    }
    assert_eq!(shards_seen, 4, "both workers together cover all 4 shards");
    coord.shutdown();
    coord.join();

    let store = ShardStore::new(&checkpoint);
    let distributed = assemble_dataset(&store, &cfg, &design.graph)
        .unwrap()
        .expect("all shards complete");
    assert_eq!(
        serde_json::to_string(&distributed).unwrap(),
        serde_json::to_string(&baseline).unwrap(),
        "distributed generation must be bit-identical to the single-process run"
    );
    let _ = std::fs::remove_dir_all(&checkpoint);
}

/// Deadline propagation through a real front→worker hop: a generous budget
/// rides along and the request completes; an exhausted or malformed budget
/// is shed/rejected at the front before any worker is dialed — in
/// particular, an expired `/v1/route` never creates route work.
#[test]
fn deadline_propagation_and_front_shedding() {
    let gnn = small_gnn();
    let coord = Coordinator::bind(CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        lease_ms: 0,
        gen: None,
    })
    .unwrap();
    let coordinator = coord.addr().to_string();

    let bundle = ModelBundle::with_model("OTA1", "A", gnn).unwrap();
    let guidance_len = bundle.guidance_len();
    let model_hash = bundle.model_hash.clone();
    let job_dir = tmp_dir("deadline-jobs");
    let server = Server::bind(
        bundle,
        ServeConfig {
            job_dir: Some(job_dir.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let agent = WorkerAgent::start(
        &coordinator,
        WorkerIdentity {
            id: "d0".to_string(),
            addr: server.addr().to_string(),
            caps: WorkerCaps {
                serve: true,
                gen: false,
            },
            model_hash,
            guidance_len: guidance_len as u64,
        },
    );
    let front = Front::bind(FrontConfig {
        addr: "127.0.0.1:0".to_string(),
        coordinator,
        refresh_ms: 50,
        ..FrontConfig::default()
    })
    .unwrap();
    wait_ring(&front, 1);

    // A live budget rides through the whole hop: the front re-encodes the
    // remaining budget, the worker's gates all pass, and the answer comes
    // back byte-identical to a direct, deadline-free call.
    let body = guidance_body(guidance_len, 3);
    let budgeted = request_with(
        front.addr(),
        "POST",
        "/v1/predict",
        &body,
        &[("x-deadline-ms", "30000")],
    );
    assert_eq!(budgeted.status, 200, "{}", budgeted.body);
    let direct = request(server.addr(), "POST", "/v1/predict", &body);
    assert_eq!(budgeted.body, direct.body);

    // An already-exhausted budget — relative or absolute-in-the-past — is
    // shed at the front with 408 before routing.
    for spent in ["0", "@1"] {
        let shed = request_with(
            front.addr(),
            "POST",
            "/v1/predict",
            &body,
            &[("x-deadline-ms", spent)],
        );
        assert_eq!(shed.status, 408, "value {spent:?}: {}", shed.body);
    }

    // Garbage is the client's bug: 400, not 408.
    let bad = request_with(
        front.addr(),
        "POST",
        "/v1/predict",
        &body,
        &[("x-deadline-ms", "soon-ish")],
    );
    assert_eq!(bad.status, 400, "{}", bad.body);

    // An expired /v1/route is shed before any job is enqueued: the worker's
    // job directory must hold no shard afterwards.
    let route = request_with(
        front.addr(),
        "POST",
        "/v1/route",
        "{\"bench\":\"OTA1\",\"variant\":\"A\"}",
        &[("x-deadline-ms", "0")],
    );
    assert_eq!(route.status, 408, "{}", route.body);
    let jobs = std::fs::read_dir(&job_dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(jobs, 0, "an expired route request must enqueue nothing");

    front.shutdown();
    front.join();
    agent.stop();
    server.shutdown();
    server.join();
    coord.shutdown();
    coord.join();
    let _ = std::fs::remove_dir_all(&job_dir);
}
