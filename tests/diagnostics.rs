//! Integration: diagnostic surfaces — congestion analysis, route reports,
//! per-layer statistics, SVG/DEF/SPICE artifacts — behave coherently on a
//! routed benchmark.

use analogfold_suite::extract::extract;
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{
    estimate_congestion, measure_congestion, render_svg, write_def, Router, RouterConfig,
    RoutingGuidance,
};
use analogfold_suite::sim::to_spice;
use analogfold_suite::tech::Technology;

#[test]
fn diagnostics_are_coherent() {
    let circuit = benchmarks::ota2();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let layout = Router::new(RouterConfig::default())
        .unwrap()
        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
        .unwrap();

    // per-layer wirelength sums to the total
    let by_layer = layout.wirelength_by_layer(tech.num_layers());
    assert_eq!(by_layer.iter().sum::<i64>(), layout.total_wirelength());
    assert!(
        by_layer.iter().filter(|&&l| l > 0).count() >= 2,
        "multi-layer routing expected: {by_layer:?}"
    );

    // report covers every routed net and the totals line
    let report = layout.report(&circuit);
    for rn in &layout.nets {
        assert!(report.contains(&circuit.net(rn.net).name));
    }
    assert!(report.contains("TOTAL"));

    // congestion: estimate and measurement agree on emptiness outside the die
    let est = estimate_congestion(&circuit, &placement, &tech, 10, 10);
    let meas = measure_congestion(&placement, &tech, &layout, 10, 10);
    assert_eq!(est.demand.len(), meas.demand.len());
    assert!(meas.peak_utilization() > 0.0);
    // the measured hotspot cell must carry estimated demand too
    let peak_cell = meas
        .utilization()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    assert!(
        est.demand[peak_cell] > 0.0,
        "estimator should see demand where routing concentrates"
    );

    // artifacts are generated and self-consistent
    let svg = render_svg(&circuit, &placement, &layout, "diag");
    assert!(svg.len() > 1_000);
    let def = write_def(&circuit, &placement, &layout);
    assert!(def.lines().count() > layout.nets.len());
    let px = extract(&circuit, &tech, &layout);
    let deck = to_spice(&circuit, Some(&px));
    assert!(deck.contains("Rw_"));
}

#[test]
fn ascii_congestion_is_plottable() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::B);
    let est = estimate_congestion(&circuit, &placement, &tech, 12, 6);
    let art = est.ascii();
    let lines: Vec<&str> = art.lines().collect();
    assert_eq!(lines.len(), 6);
    assert!(lines.iter().all(|l| l.len() == 12));
    assert!(art.chars().any(|c| c.is_ascii_digit()));
}
