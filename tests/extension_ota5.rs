//! Integration: the OTA5 folded-cascode extension benchmark (beyond the
//! paper's four designs) runs through the complete stack.

use analogfold_suite::extract::extract;
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{Router, RouterConfig, RoutingGuidance};
use analogfold_suite::sim::{simulate, SimConfig};
use analogfold_suite::tech::Technology;

#[test]
fn ota5_full_stack() {
    let circuit = benchmarks::ota5();
    let tech = Technology::nm40();
    let cfg = SimConfig::default();

    let schematic = simulate(&circuit, None, &cfg).expect("schematic sim");
    assert!(
        schematic.dc_gain_db > 25.0,
        "folded cascode should have decent gain: {schematic}"
    );
    assert!(schematic.bandwidth_mhz > 10.0, "{schematic}");

    let placement = place(&circuit, PlacementVariant::A);
    placement.check(&circuit).expect("legal placement");
    let layout = Router::new(RouterConfig::default())
        .unwrap()
        .route(&circuit, &placement, &tech, &RoutingGuidance::None)
        .expect("routable");
    assert!(layout.conflicts <= 2, "{} conflicts", layout.conflicts);

    let px = extract(&circuit, &tech, &layout);
    let post = simulate(&circuit, Some(&px), &cfg).expect("post-layout sim");
    assert!(post.offset_uv > 0.0);
    assert!(post.dc_gain_db <= schematic.dc_gain_db + 0.5);
    assert!(post.cmrr_db <= schematic.cmrr_db);
}
