//! The observability JSONL event log: a tiny flow run with a `JsonlSink`
//! installed must emit one valid, schema-conforming JSON object per line,
//! and the span paths must cover all five flow stages.

use std::collections::BTreeSet;
use std::sync::Arc;

use analogfold_suite::analogfold::{AnalogFoldFlow, FlowConfig, GnnConfig, RelaxConfig};
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::obs::{self, JsonlSink};
use analogfold_suite::place::{place, PlacementVariant};

#[test]
fn flow_jsonl_events_are_valid_and_cover_all_stages() {
    let dir = std::env::temp_dir().join("af_obs_jsonl_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");

    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let sink = JsonlSink::create(&path).unwrap();
    let cfg = FlowConfig::builder()
        .samples(3)
        .gnn(GnnConfig {
            epochs: 2,
            hidden: 8,
            layers: 1,
            ..GnnConfig::default()
        })
        .relax(RelaxConfig {
            restarts: 2,
            n_derive: 1,
            lbfgs_iters: 4,
            ..RelaxConfig::default()
        })
        .obs(Arc::new(sink))
        .build()
        .unwrap();
    AnalogFoldFlow::new(cfg).run(&circuit, &placement).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!text.trim().is_empty(), "no events were written");

    let mut span_paths: BTreeSet<String> = BTreeSet::new();
    let mut kinds: BTreeSet<String> = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        // Each line must satisfy the af-obs event schema ...
        obs::json::validate_event_line(line)
            .unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        // ... and round-trip through the independent vendored JSON parser.
        let value = serde_json::value_from_str(line)
            .unwrap_or_else(|e| panic!("line {}: serde_json rejected: {e:?}", i + 1));
        let serde::Value::Map(pairs) = value else {
            panic!("line {}: not a JSON object", i + 1);
        };
        let field = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        let Some(serde::Value::Str(kind)) = field("type") else {
            panic!("line {}: missing string `type`", i + 1);
        };
        kinds.insert(kind.clone());
        if kind == "span" {
            let Some(serde::Value::Str(p)) = field("path") else {
                panic!("line {}: span without string `path`", i + 1);
            };
            // Strip the per-instance `#idx` suffix to the aggregate path.
            span_paths.insert(p.split('#').next().unwrap().to_string());
        }
    }

    for stage in [
        "flow",
        "flow/placement",
        "flow/construct_db",
        "flow/training",
        "flow/guide_gen",
        "flow/guided_route",
    ] {
        assert!(
            span_paths.contains(stage),
            "missing stage span `{stage}`; saw {span_paths:?}"
        );
    }
    // Metric flush events must be present too (counters from the router and
    // histograms from the relaxation, flushed when the guard drops).
    assert!(kinds.contains("counter"), "no counter events: {kinds:?}");
    assert!(
        kinds.contains("histogram"),
        "no histogram events: {kinds:?}"
    );
}
