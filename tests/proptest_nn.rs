//! Property-based tests of the autograd engine: analytic gradients must
//! match central finite differences on randomly composed graphs.

use analogfold_suite::nn::{lbfgs_minimize, Graph, Tensor};
use proptest::prelude::*;

/// Builds a fixed nontrivial scalar function of a 2×3 input and returns its
/// value; `op_mix` selects among compositions.
fn eval(op_mix: u8, data: &[f64]) -> (f64, Option<Vec<f64>>) {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(data.to_vec(), 2, 3));
    let y = match op_mix % 5 {
        0 => {
            let s = g.silu(x);
            let q = g.square(s);
            g.sum(q)
        }
        1 => {
            let t = g.tanh(x);
            let m = g.mul(t, x);
            let sc = g.sum_cols(m);
            let sq = g.square(sc);
            g.sum(sq)
        }
        2 => {
            let w = g.input(Tensor::from_vec(
                vec![0.3, -0.2, 0.8, 0.5, -0.6, 0.1, 0.9, 0.2, -0.4],
                3,
                3,
            ));
            let mm = g.matmul(x, w);
            let sg = g.sigmoid(mm);
            g.sum(sg)
        }
        3 => {
            let gathered = g.gather(x, &[1, 0, 1]);
            let sc = g.scatter_add(gathered, &[0, 1, 1], 2);
            let e = g.exp(sc);
            g.sum(e)
        }
        _ => {
            let sq = g.square(x);
            let sc = g.sum_cols(sq);
            let d = g.sqrt(sc);
            let r = g.rbf(d, 1.5, &[0.0, 1.0, 2.5]);
            g.sum(r)
        }
    };
    g.backward(y);
    (g.value(y).get(0, 0), Some(g.grad(x).data().to_vec()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gradients_match_finite_differences(
        op_mix in 0u8..5,
        data in prop::collection::vec(-1.5f64..1.5, 6),
    ) {
        let (_, grad) = eval(op_mix, &data);
        let grad = grad.unwrap();
        let eps = 1e-6;
        for i in 0..data.len() {
            let mut plus = data.clone();
            plus[i] += eps;
            let mut minus = data.clone();
            minus[i] -= eps;
            let (fp, _) = eval(op_mix, &plus);
            let (fm, _) = eval(op_mix, &minus);
            let numeric = (fp - fm) / (2.0 * eps);
            prop_assert!(
                (grad[i] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "op {} grad[{}]: analytic {} vs numeric {}",
                op_mix, i, grad[i], numeric
            );
        }
    }

    #[test]
    fn lbfgs_solves_random_diagonal_quadratics(
        diag in prop::collection::vec(0.1f64..20.0, 3..8),
        x0 in prop::collection::vec(-3.0f64..3.0, 8),
    ) {
        let n = diag.len();
        let x0 = &x0[..n];
        let eval = |x: &[f64]| {
            let f: f64 = x.iter().zip(&diag).map(|(v, d)| d * v * v).sum();
            let g: Vec<f64> = x.iter().zip(&diag).map(|(v, d)| 2.0 * d * v).collect();
            (f, g)
        };
        let res = lbfgs_minimize(eval, x0, 100, 8, 1e-10);
        prop_assert!(res.f < 1e-10, "f = {}", res.f);
    }

    #[test]
    fn tensor_matmul_associative_with_identity(
        data in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let a = Tensor::from_vec(data, 2, 2);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], 2, 2);
        prop_assert_eq!(a.matmul(&i), a.clone());
        prop_assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn tensor_transpose_involution(
        rows in 1usize..6, cols in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let data: Vec<f64> = (0..rows * cols).map(|i| ((i as u64 + seed) % 17) as f64).collect();
        let t = Tensor::from_vec(data, rows, cols);
        prop_assert_eq!(t.transpose().transpose(), t);
    }
}
