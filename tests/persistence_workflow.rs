//! Integration: the train-once / guide-many workflow — train on one
//! placement, persist the model, reload it, and guide a *different*
//! placement of the same circuit.

use analogfold_suite::analogfold::{
    generate_dataset, AnalogFoldFlow, DatasetConfig, FlowConfig, GnnConfig, HeteroGraph,
    RelaxConfig, ThreeDGnn,
};
use analogfold_suite::netlist::benchmarks;
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::tech::Technology;

#[test]
fn model_transfers_across_placements() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();

    // Train on variant A.
    let pa = place(&circuit, PlacementVariant::A);
    let graph_a = HeteroGraph::build(&circuit, &pa, &tech, 3);
    let gnn_cfg = GnnConfig {
        hidden: 8,
        layers: 1,
        epochs: 5,
        ..GnnConfig::default()
    };
    let dataset = generate_dataset(
        &circuit,
        &pa,
        &tech,
        &graph_a,
        &DatasetConfig {
            samples: 6,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let mut gnn = ThreeDGnn::new(&gnn_cfg);
    gnn.train(&graph_a, &dataset, &gnn_cfg);

    // Persist + reload.
    let path =
        std::env::temp_dir().join(format!("analogfold-transfer-{}.json", std::process::id()));
    gnn.save(&path).unwrap();
    let loaded = ThreeDGnn::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Guide variant B with the reloaded model. The guided-AP layout matches
    // across placements of the same circuit (AP enumeration follows pin
    // order), so the model transfers.
    let pb = place(&circuit, PlacementVariant::B);
    let flow = AnalogFoldFlow::new(FlowConfig {
        relax: RelaxConfig {
            restarts: 2,
            n_derive: 1,
            lbfgs_iters: 6,
            ..RelaxConfig::default()
        },
        ..FlowConfig::default()
    });
    let outcome = flow.run_with_model(&circuit, &pb, &loaded).unwrap();
    assert!(outcome.performance.dc_gain_db.is_finite());
    assert_eq!(outcome.breakdown.training_s, 0.0);
    assert!(!outcome.guidance.is_empty());
    let (lo, hi) = (0.3, 2.5);
    assert!(outcome.guidance.iter().all(|&c| c > lo && c < hi));
}
