//! Property-based parity suite for the `af-tensor` core: on random shapes,
//! index lists, and op compositions, the tensor kernels and the reverse-mode
//! tape must reproduce the scalar autograd oracle (`af_nn::Graph`) within
//! 1e-9 — and bit-for-bit on hosts where the FMA matmul dispatch is off and
//! the composition avoids the polynomial exp (see `af_tensor`'s parity
//! contract).

use std::sync::Arc;

use analogfold_suite::nn::{Graph, Tensor};
use analogfold_suite::tensor::{
    colsum_acc, fma_active, matmul, matmul_a_bt_acc, matmul_at_b_acc, matmul_bias_relu, Act,
    CsrIndex, Tape,
};
use proptest::prelude::*;

/// Oracle parity check for algebraic results: bit-equal when the kernels run
/// unfused, ≤1e-9 when the FMA dispatch is active (the fused chains round
/// once where the oracle's mul-then-add rounds twice).
fn assert_parity(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if fma_active() {
            assert!(
                (g - w).abs() <= 1e-9,
                "{what}[{i}]: {g} vs oracle {w} (|Δ| = {:e})",
                (g - w).abs()
            );
        } else {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}[{i}]: {g} vs oracle {w} must be bit-identical without FMA"
            );
        }
    }
}

/// Oracle parity check for results routed through the polynomial exp
/// (RBF/sigmoid/SiLU): ≲1e-13 relative per exp compounds to well under the
/// crate's documented ≤1e-9 envelope on these small graphs.
fn assert_parity_exp(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
            "{what}[{i}]: {g} vs oracle {w} (|Δ| = {:e})",
            (g - w).abs()
        );
    }
}

/// One nontrivial composition of tensor/tape ops over a 3×2 input. The same
/// `op_mix` builds the identical graph in both engines; several mixes use a
/// value twice so gradients *accumulate* into already-populated buffers —
/// the case where a wrong summation order diverges from the oracle by ULPs.
const ROWS: usize = 3;
const COLS: usize = 2;
const GATHER_A: [usize; 4] = [1, 0, 2, 1];
const GATHER_B: [usize; 4] = [2, 2, 0, 1];
const SCATTER_TO: [usize; 4] = [0, 1, 1, 0];
const W_DATA: [f64; 6] = [0.4, -0.9, 0.25, 1.1, 0.3, -0.55];

/// Oracle evaluation: returns (loss, grad_x, grad_w-if-any).
fn oracle_eval(op_mix: u8, data: &[f64], gamma: f64) -> (f64, Vec<f64>, Option<Vec<f64>>) {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(data.to_vec(), ROWS, COLS));
    let mut w_node = None;
    let y = match op_mix % 5 {
        0 => {
            // Linear + relu: x·W through a tracked weight.
            let w = g.param(Tensor::from_vec(W_DATA.to_vec(), COLS, 3));
            w_node = Some(w);
            let mm = g.matmul(x, w);
            let r = g.relu(mm);
            g.sum(r)
        }
        1 => {
            // x gathered twice → its gradient receives two accumulated
            // contributions through the grouped backward walk.
            let ga = g.gather(x, &GATHER_A);
            let gb = g.gather(x, &GATHER_B);
            let s = g.add(ga, gb);
            let sq = g.square(s);
            g.sum(sq)
        }
        2 => {
            // Distance → RBF chain, the edge-feature path of the 3DGNN.
            let sq = g.square(x);
            let sc = g.sum_cols(sq);
            let d = g.sqrt(sc);
            let r = g.rbf(d, gamma, &[0.0, 0.8, 1.6, 2.4]);
            g.sum(r)
        }
        3 => {
            // Shared weight used by two matmuls: both dW and dX accumulate
            // into buffers that already hold the other consumer's terms.
            let w = g.param(Tensor::from_vec(W_DATA.to_vec(), COLS, 3));
            w_node = Some(w);
            let y1 = g.matmul(x, w);
            let y2 = g.matmul(x, w);
            let s = g.add(y1, y2);
            let m = g.mul(s, s);
            g.sum(m)
        }
        _ => {
            // Message-passing shape: gather → scatter-add → sigmoid.
            let ga = g.gather(x, &GATHER_A);
            let sc = g.scatter_add(ga, &SCATTER_TO, 2);
            let sg = g.sigmoid(sc);
            g.sum(sg)
        }
    };
    g.backward(y);
    let gw = w_node.map(|w| g.grad(w).data().to_vec());
    (g.value(y).get(0, 0), g.grad(x).data().to_vec(), gw)
}

/// Tape evaluation of the same composition; reusable for replay checks.
fn tape_build(
    op_mix: u8,
    gamma: f64,
) -> (
    Tape,
    analogfold_suite::tensor::Var,
    Vec<analogfold_suite::tensor::Var>,
) {
    let mut t = Tape::new();
    let x = t.input(ROWS, COLS);
    let mut wanted = vec![x];
    let loss = match op_mix % 5 {
        0 => {
            let w = t.leaf(&W_DATA, COLS, 3);
            wanted.push(w);
            let mm = t.matmul(x, w);
            let r = t.activation(mm, Act::Relu);
            t.sum(r)
        }
        1 => {
            let ca = t.register_csr(Arc::new(CsrIndex::new(&GATHER_A, ROWS)));
            let cb = t.register_csr(Arc::new(CsrIndex::new(&GATHER_B, ROWS)));
            let ga = t.gather(x, ca);
            let gb = t.gather(x, cb);
            let s = t.add(ga, gb);
            let sq = t.square(s);
            t.sum(sq)
        }
        2 => {
            let sq = t.square(x);
            let sc = t.sum_cols(sq);
            let d = t.sqrt(sc);
            let r = t.rbf(d, gamma, &[0.0, 0.8, 1.6, 2.4]);
            t.sum(r)
        }
        3 => {
            let w = t.leaf(&W_DATA, COLS, 3);
            wanted.push(w);
            let y1 = t.matmul(x, w);
            let y2 = t.matmul(x, w);
            let s = t.add(y1, y2);
            let m = t.mul(s, s);
            t.sum(m)
        }
        _ => {
            let ca = t.register_csr(Arc::new(CsrIndex::new(&GATHER_A, ROWS)));
            let cs = t.register_csr(Arc::new(CsrIndex::new(&SCATTER_TO, 2)));
            let ga = t.gather(x, ca);
            let sc = t.scatter_add(ga, cs);
            let sg = t.activation(sc, Act::Sigmoid);
            t.sum(sg)
        }
    };
    t.seal(Some(loss), &wanted);
    (t, loss, wanted)
}

fn tape_eval(
    t: &mut Tape,
    loss: analogfold_suite::tensor::Var,
    wanted: &[analogfold_suite::tensor::Var],
    data: &[f64],
) -> (f64, Vec<Vec<f64>>) {
    t.set_value(wanted[0], data);
    t.forward();
    t.backward();
    (
        t.value(loss)[0],
        wanted.iter().map(|&v| t.grad(v).to_vec()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_matches_oracle_tensor(
        m in 1usize..7, k in 1usize..7, n in 1usize..7,
        a in prop::collection::vec(-2.0f64..2.0, 49),
        b in prop::collection::vec(-2.0f64..2.0, 49),
    ) {
        let a = &a[..m * k];
        let b = &b[..k * n];
        let mut out = vec![f64::NAN; m * n];
        matmul(&mut out, a, b, m, k, n);
        let want = Tensor::from_vec(a.to_vec(), m, k)
            .matmul(&Tensor::from_vec(b.to_vec(), k, n));
        assert_parity(&out, want.data(), "matmul");
    }

    #[test]
    fn fused_linear_matches_oracle_graph_nodes(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        x in prop::collection::vec(-2.0f64..2.0, 36),
        w in prop::collection::vec(-1.5f64..1.5, 36),
        bias in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let x = &x[..m * k];
        let w = &w[..k * n];
        let bias = &bias[..n];
        let mut out = vec![f64::NAN; m * n];
        let mut pre = vec![f64::NAN; m * n];
        matmul_bias_relu(&mut out, &mut pre, x, w, bias, m, k, n);

        let mut g = Graph::new();
        let xn = g.input(Tensor::from_vec(x.to_vec(), m, k));
        let wn = g.input(Tensor::from_vec(w.to_vec(), k, n));
        let bn = g.input(Tensor::from_vec(bias.to_vec(), 1, n));
        let mm = g.matmul(xn, wn);
        let ab = g.add_bias(mm, bn);
        let r = g.relu(ab);
        assert_parity(&pre, g.value(ab).data(), "fused linear pre-activation");
        assert_parity(&out, g.value(r).data(), "fused linear output");
    }

    #[test]
    fn backward_matmul_kernels_accumulate_like_oracle(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        a in prop::collection::vec(-2.0f64..2.0, 36),
        b in prop::collection::vec(-2.0f64..2.0, 36),
        grad in prop::collection::vec(-2.0f64..2.0, 36),
        seed in prop::collection::vec(-1.0f64..1.0, 36),
    ) {
        let a = &a[..m * k];
        let b = &b[..k * n];
        let grad = &grad[..m * n];
        // Destinations start non-zero: the kernels must build each element's
        // full dot product locally and add it exactly once, like the oracle's
        // materialize-then-accumulate, or the sums associate differently.
        let mut ga = seed[..m * k].to_vec();
        let mut gb = seed[..k * n].to_vec();
        let mut tmp = Vec::new();
        matmul_a_bt_acc(&mut ga, grad, b, m, n, k, &mut tmp);
        matmul_at_b_acc(&mut gb, a, grad, m, k, n, &mut tmp);

        let gt = Tensor::from_vec(grad.to_vec(), m, n);
        let want_ga = gt.matmul(&Tensor::from_vec(b.to_vec(), k, n).transpose());
        let want_gb = Tensor::from_vec(a.to_vec(), m, k).transpose().matmul(&gt);
        let exp_ga: Vec<f64> = seed[..m * k].iter().zip(want_ga.data()).map(|(s, v)| s + v).collect();
        let exp_gb: Vec<f64> = seed[..k * n].iter().zip(want_gb.data()).map(|(s, v)| s + v).collect();
        assert_parity(&ga, &exp_ga, "matmul backward dA");
        assert_parity(&gb, &exp_gb, "matmul backward dB");

        let mut gbias = seed[..n].to_vec();
        colsum_acc(&mut gbias, grad, m, n);
        let mut exp_bias = seed[..n].to_vec();
        for (c, e) in exp_bias.iter_mut().enumerate() {
            let mut acc = 0.0;
            for r in 0..m {
                acc += grad[r * n + c];
            }
            *e += acc;
        }
        assert_parity(&gbias, &exp_bias, "bias column sums");
    }

    #[test]
    fn gather_scatter_match_scalar_loops(
        n_rows in 1usize..6, cols in 1usize..5,
        raw_idx in prop::collection::vec(0usize..1_000, 0..10),
        x in prop::collection::vec(-3.0f64..3.0, 30),
        gout in prop::collection::vec(-3.0f64..3.0, 50),
        seed in prop::collection::vec(-1.0f64..1.0, 30),
    ) {
        let idx: Vec<usize> = raw_idx.iter().map(|&i| i % n_rows).collect();
        let e = idx.len();
        let csr = CsrIndex::new(&idx, n_rows);
        let x = &x[..n_rows * cols];

        // Gather forward: pure row copies.
        let mut gathered = vec![f64::NAN; e * cols];
        csr.gather_rows(&mut gathered, x, cols);
        for (ei, &i) in idx.iter().enumerate() {
            for c in 0..cols {
                assert_eq!(gathered[ei * cols + c].to_bits(), x[i * cols + c].to_bits());
            }
        }

        // Scatter-add forward: ascending-edge accumulation per target row.
        let msgs = &gout[..e * cols];
        let mut scattered = vec![f64::NAN; n_rows * cols];
        csr.scatter_add_rows(&mut scattered, msgs, cols);
        let mut want = vec![0.0; n_rows * cols];
        for (ei, &i) in idx.iter().enumerate() {
            for c in 0..cols {
                want[i * cols + c] += msgs[ei * cols + c];
            }
        }
        assert_parity(&scattered, &want, "scatter_add forward");

        // Gather backward into a pre-populated gradient, vs the oracle's
        // build-full-gradient-then-accumulate-once scheme.
        let mut gx = seed[..n_rows * cols].to_vec();
        csr.gather_backward_acc(&mut gx, msgs, cols);
        let mut full = vec![0.0; n_rows * cols];
        for (ei, &i) in idx.iter().enumerate() {
            for c in 0..cols {
                full[i * cols + c] += msgs[ei * cols + c];
            }
        }
        let exp: Vec<f64> = seed[..n_rows * cols].iter().zip(&full).map(|(s, v)| s + v).collect();
        assert_parity(&gx, &exp, "gather backward");

        // Scatter backward: row copies from the upstream gradient.
        let up = &gout[..n_rows * cols];
        let mut gmsgs = vec![0.0; e * cols];
        csr.scatter_backward_acc(&mut gmsgs, up, cols);
        for (ei, &i) in idx.iter().enumerate() {
            for c in 0..cols {
                assert_eq!(gmsgs[ei * cols + c].to_bits(), up[i * cols + c].to_bits());
            }
        }
    }

    #[test]
    fn tape_gradients_match_oracle_graph(
        op_mix in 0u8..5,
        data in prop::collection::vec(-1.5f64..1.5, 6),
        gamma in 0.5f64..3.0,
    ) {
        let (want_loss, want_gx, want_gw) = oracle_eval(op_mix, &data, gamma);
        let (mut t, loss, wanted) = tape_build(op_mix, gamma);
        let (got_loss, grads) = tape_eval(&mut t, loss, &wanted, &data);
        // Mixes 2 (RBF) and 4 (sigmoid) route through the polynomial exp,
        // which deliberately differs from the oracle's libm by ≲1e-13; the
        // purely algebraic mixes hold the strict (bitwise-without-FMA)
        // contract.
        let check: fn(&[f64], &[f64], &str) = if matches!(op_mix % 5, 2 | 4) {
            assert_parity_exp
        } else {
            assert_parity
        };
        check(&[got_loss], &[want_loss], "loss");
        check(&grads[0], &want_gx, "grad x");
        if let Some(gw) = want_gw {
            check(&grads[1], &gw, "grad w");
        }
    }

    #[test]
    fn tape_replay_is_bit_identical(
        op_mix in 0u8..5,
        data in prop::collection::vec(-1.5f64..1.5, 6),
        other in prop::collection::vec(-1.5f64..1.5, 6),
    ) {
        // One sealed tape replayed across different inputs must give the
        // same bits when it returns to an input it has seen before — the
        // contract that lets one tape serve a whole relaxation descent.
        let (mut t, loss, wanted) = tape_build(op_mix, 1.25);
        let first = tape_eval(&mut t, loss, &wanted, &data);
        let _ = tape_eval(&mut t, loss, &wanted, &other);
        let again = tape_eval(&mut t, loss, &wanted, &data);
        assert_eq!(first.0.to_bits(), again.0.to_bits(), "loss drifted on replay");
        for (a, b) in first.1.iter().zip(&again.1) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "gradient drifted on replay");
            }
        }
    }
}
