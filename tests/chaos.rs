//! Chaos suite: the pipeline and the server under armed failpoints.
//!
//! Every test holds [`fault::scenario`] for its whole body, so the suite
//! serializes and the global failpoint registry never leaks into (or out
//! of) a test. Firing decisions are pure functions of the fault seed and
//! the site key, so each of these tests is deterministic: a seed that
//! passes once passes always.
//!
//! The two properties under test, per ISSUE acceptance criteria:
//!
//! 1. **Transient faults are invisible** — once retries succeed, results
//!    are bit-identical to a fault-free run (the retried work is recomputed
//!    from the same per-sample seeds).
//! 2. **Permanent faults degrade, never hang or abort** — failed samples
//!    are recorded in the checkpoint, a flow with no routable candidate
//!    falls back to unguided routing, and a panicked batch collector
//!    answers in-flight requests with `503` while `/healthz` reports
//!    `degraded` until the supervisor's replacement thread proves stable.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use analogfold_suite::analogfold::{
    generate_dataset, generate_dataset_checkpointed, magical_route, relax, AnalogFoldFlow,
    DatasetConfig, FlowConfig, GnnConfig, HeteroGraph, Potential, RelaxConfig, SampleRecord,
    ShardStore, ThreeDGnn,
};
use analogfold_suite::fault::{self, FaultMode, RetryPolicy};
use analogfold_suite::netlist::{benchmarks, NetId};
use analogfold_suite::place::{place, PlacementVariant};
use analogfold_suite::route::{Router, RouterConfig, RoutingGuidance};
use analogfold_suite::serve::{ModelBundle, ServeConfig, Server};
use analogfold_suite::sim::SimConfig;
use analogfold_suite::tech::Technology;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("af-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_gnn() -> ThreeDGnn {
    ThreeDGnn::new(&GnnConfig {
        hidden: 8,
        layers: 1,
        ..GnnConfig::default()
    })
}

fn small_dataset_cfg() -> DatasetConfig {
    DatasetConfig {
        samples: 6,
        shard_size: 3,
        cache_mb: 0,
        // Quick (zero-delay) retries: the injected faults are keyed by
        // (sample, attempt), so later attempts draw fresh and recover.
        retry: RetryPolicy::quick(5),
        ..DatasetConfig::default()
    }
}

#[test]
fn dataset_bit_identical_under_transient_faults() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let cfg = small_dataset_cfg();

    let baseline = {
        let _guard = fault::scenario();
        let store = ShardStore::new(tmp_dir("ds-baseline"));
        generate_dataset_checkpointed(&circuit, &placement, &tech, &graph, &cfg, Some(&store))
            .unwrap()
    };

    let _guard = fault::scenario();
    fault::set_seed(7);
    fault::arm("sim.eval", FaultMode::Err, 0.3);
    fault::arm("persist.save_shard", FaultMode::Err, 0.3);
    let store = ShardStore::new(tmp_dir("ds-faulty")).with_retry(RetryPolicy::quick(6));
    let faulty =
        generate_dataset_checkpointed(&circuit, &placement, &tech, &graph, &cfg, Some(&store))
            .unwrap();

    let fired =
        fault::stats("sim.eval").unwrap().fires + fault::stats("persist.save_shard").unwrap().fires;
    assert!(fired > 0, "the chaos run must actually inject faults");

    assert_eq!(baseline.samples.len(), faulty.samples.len());
    for (a, b) in baseline.samples.iter().zip(&faulty.samples) {
        assert_eq!(a.guidance, b.guidance, "retries must recompute, not skew");
        assert_eq!(a.performance, b.performance);
    }
}

#[test]
fn permanent_failures_are_recorded_then_healed_on_resume() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let cfg = DatasetConfig {
        retry: RetryPolicy::quick(2),
        ..small_dataset_cfg()
    };
    let dir = tmp_dir("ds-permanent");

    {
        let _guard = fault::scenario();
        fault::arm("sim.eval", FaultMode::Err, 1.0);
        let store = ShardStore::new(&dir);
        let ds =
            generate_dataset_checkpointed(&circuit, &placement, &tech, &graph, &cfg, Some(&store))
                .unwrap();
        assert!(
            ds.samples.is_empty(),
            "every sample permanently fails, yet generation completes"
        );
        let shard: Vec<SampleRecord> = store.load_shard(0).unwrap().unwrap();
        assert_eq!(shard.len(), cfg.shard_size);
        for record in &shard {
            assert!(record.performance.is_none());
            assert!(record.error.as_deref().unwrap().contains("sim.eval"));
        }
    }

    // A disarmed resume over the same checkpoint regenerates the failed
    // shards and lands on the fault-free result exactly.
    let _guard = fault::scenario();
    let store = ShardStore::new(&dir);
    let healed =
        generate_dataset_checkpointed(&circuit, &placement, &tech, &graph, &cfg, Some(&store))
            .unwrap();
    let reference = generate_dataset(&circuit, &placement, &tech, &graph, &cfg).unwrap();
    assert_eq!(healed.samples.len(), cfg.samples);
    for (a, b) in healed.samples.iter().zip(&reference.samples) {
        assert_eq!(a.guidance, b.guidance);
        assert_eq!(a.performance, b.performance);
    }
}

#[test]
fn flow_degrades_to_unguided_fallback_when_every_candidate_fails() {
    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let gnn = small_gnn();
    let cfg = FlowConfig::builder()
        .relax(RelaxConfig {
            restarts: 3,
            pool_size: 2,
            n_derive: 2,
            lbfgs_iters: 3,
            cache_mb: 0,
            ..RelaxConfig::default()
        })
        .build()
        .unwrap();
    let flow = AnalogFoldFlow::new(cfg);

    let _guard = fault::scenario();
    fault::arm("flow.candidate", FaultMode::Err, 1.0);
    let outcome = flow.run_with_model(&circuit, &placement, &gnn).unwrap();
    assert!(fault::stats("flow.candidate").unwrap().fires >= 2);
    assert!(
        outcome.guidance.is_empty(),
        "the fallback is unguided, so the outcome carries no guidance"
    );

    let (_, _, unguided) = magical_route(
        &circuit,
        &placement,
        &Technology::nm40(),
        &RouterConfig::default(),
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(outcome.performance, unguided);
}

#[test]
fn relax_reinitializes_injected_nonfinite_restarts() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let gnn = small_gnn();
    let potential = Potential::new(&gnn, &graph);
    let cfg = RelaxConfig {
        restarts: 4,
        pool_size: 3,
        n_derive: 2,
        lbfgs_iters: 4,
        cache_mb: 0,
        ..RelaxConfig::default()
    };

    let _guard = fault::scenario();
    fault::set_seed(3);
    fault::arm("relax.nonfinite", FaultMode::Err, 0.5);
    let outcomes = relax(&potential, &cfg);
    assert!(fault::stats("relax.nonfinite").unwrap().fires > 0);
    assert!(!outcomes.is_empty());
    for o in &outcomes {
        assert!(o.potential.is_finite());
        assert!(o.guidance.iter().all(|g| g.is_finite()));
    }
}

#[test]
fn relax_survives_nan_value_grad_injection() {
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let gnn = small_gnn();
    let potential = Potential::new(&gnn, &graph);
    let cfg = RelaxConfig {
        restarts: 4,
        pool_size: 3,
        n_derive: 2,
        lbfgs_iters: 4,
        cache_mb: 0,
        ..RelaxConfig::default()
    };

    let _guard = fault::scenario();
    // The first three surrogate evaluations return (NaN, 0⃗): whichever
    // restarts they poison must be re-initialized, never pooled.
    fault::arm_limited("relax.value_grad", FaultMode::Nan, 1.0, Some(3));
    let outcomes = relax(&potential, &cfg);
    assert_eq!(fault::stats("relax.value_grad").unwrap().fires, 3);
    assert!(!outcomes.is_empty());
    for o in &outcomes {
        assert!(o.potential.is_finite());
        assert!(o.guidance.iter().all(|g| g.is_finite()));
    }
}

/// CI hook: arms whatever `AF_FAULT` / `AF_FAULT_SEED` specify (falling
/// back to a fixed local schedule when unset) and asserts the guided flow
/// still completes — degraded if it must, but never hung or aborted.
#[test]
fn env_armed_flow_completes() {
    let _guard = fault::scenario();
    if fault::arm_from_env().unwrap() == 0 {
        fault::set_seed(7);
        fault::arm_spec("flow.candidate:err:0.4,relax.nonfinite:err:0.3").unwrap();
    }

    let circuit = benchmarks::ota1();
    let placement = place(&circuit, PlacementVariant::A);
    let cfg = FlowConfig::builder()
        .relax(RelaxConfig {
            restarts: 3,
            pool_size: 2,
            n_derive: 2,
            lbfgs_iters: 3,
            cache_mb: 0,
            ..RelaxConfig::default()
        })
        .build()
        .unwrap();
    let outcome = AnalogFoldFlow::new(cfg)
        .run_with_model(&circuit, &placement, &small_gnn())
        .unwrap();
    assert!(outcome.performance.dc_gain_db.is_finite());
}

// ---------------------------------------------------------------------------
// Serving tier: collector panic → 503 for in-flight work, degraded health,
// supervisor restart, full recovery. Minimal HTTP/1.1 client over loopback.

struct HttpResponse {
    status: u16,
    body: String,
}

fn read_response(reader: &mut impl BufRead) -> HttpResponse {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    HttpResponse {
        status,
        body: String::from_utf8(body).unwrap(),
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    read_response(&mut BufReader::new(stream))
}

fn json_f64(body: &str, field: &str) -> f64 {
    let key = format!("\"{field}\":");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    rest[..rest.find([',', '}', ']']).unwrap()].parse().unwrap()
}

fn json_str(body: &str, field: &str) -> String {
    let key = format!("\"{field}\":\"");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    rest[..rest.find('"').unwrap()].to_string()
}

#[test]
fn serve_recovers_from_collector_panic() {
    let _guard = fault::scenario();
    // Exactly one panic, armed before the server starts: the first batch
    // the collector assembles kills it.
    fault::arm_limited("serve.batch", FaultMode::Panic, 1.0, Some(1));

    let bundle = ModelBundle::with_model("OTA1", "A", small_gnn()).unwrap();
    let guidance_len = bundle.guidance_len();
    let cfg = ServeConfig {
        job_dir: Some(tmp_dir("serve")),
        supervisor_backoff_ms: 20,
        supervisor_grace_ms: 400,
        ..ServeConfig::default()
    };
    let server = Server::bind(bundle, cfg).unwrap();
    let addr = server.addr();
    let body = format!("{{\"guidance\":{:?}}}", vec![0.0; guidance_len]);

    let first = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(
        first.status, 503,
        "the in-flight request gets an error, not a hang: {}",
        first.body
    );

    // The supervisor marks the server degraded for backoff + grace
    // (≥ 420 ms here), so polling right after the 503 must observe it.
    let deadline = Instant::now() + Duration::from_millis(300);
    let mut saw_degraded = false;
    while Instant::now() < deadline {
        let health = request(addr, "GET", "/healthz", "");
        assert_eq!(health.status, 200, "health stays up while degraded");
        if json_str(&health.body, "status") == "degraded" {
            saw_degraded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_degraded, "/healthz must report the restart window");

    // ... and clears the flag once the replacement collector holds.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = request(addr, "GET", "/healthz", "");
        if json_str(&health.body, "status") == "ok" {
            assert!(json_f64(&health.body, "restarts") >= 1.0);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never recovered: {}",
            health.body
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let second = request(addr, "POST", "/v1/predict", &body);
    assert_eq!(second.status, 200, "body: {}", second.body);

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Fleet tier: a gen worker killed between lease and computation leaves a
// leased-but-never-renewed shard behind; the lease expires, the survivor
// re-leases it, and the assembled dataset is bit-identical to a fault-free
// single-process run. CI's chaos job also drives this test with
// `AF_FAULT=fleet.worker_kill:err:1.0:1` as the fleet scenario.

#[test]
fn fleet_worker_kill_heals_bit_identically() {
    use analogfold_suite::analogfold::assemble_dataset;
    use analogfold_suite::fleet::{
        run_gen_worker, spec_config, spec_design, Coordinator, CoordinatorConfig, GenSpec,
        WorkerAgent, WorkerCaps, WorkerIdentity,
    };

    let checkpoint = tmp_dir("fleet-kill");
    let spec = GenSpec {
        bench: "OTA1".to_string(),
        variant: "A".to_string(),
        samples: 6,
        shard_size: 2,
        seed: 9,
        c_low: 0.4,
        c_high: 2.4,
        checkpoint: checkpoint.to_string_lossy().into_owned(),
        threads: 1,
        cache_mb: 0,
    };
    let cfg = spec_config(&spec).unwrap();
    let design = spec_design(&spec).unwrap();

    let baseline = {
        let _guard = fault::scenario();
        generate_dataset(
            &design.circuit,
            &design.placement,
            &design.tech,
            &design.graph,
            &cfg,
        )
        .unwrap()
    };

    let _guard = fault::scenario();
    fault::set_seed(7);
    // The CI fleet scenario arms the kill through AF_FAULT; a run whose env
    // doesn't name this failpoint arms the same fixed schedule itself.
    let env_has_kill =
        std::env::var("AF_FAULT").is_ok_and(|spec| spec.contains("fleet.worker_kill"));
    if !env_has_kill || fault::arm_from_env().unwrap() == 0 {
        fault::arm_limited("fleet.worker_kill", FaultMode::Err, 1.0, Some(1));
    }

    let coord = Coordinator::bind(CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        // Short shard leases so the killed worker's shard re-assigns fast.
        lease_ms: 300,
        gen: Some(spec.clone()),
    })
    .unwrap();
    let coordinator = coord.addr().to_string();
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let coordinator = coordinator.clone();
            std::thread::spawn(move || {
                let id = format!("k{i}");
                let agent = WorkerAgent::start(
                    &coordinator,
                    WorkerIdentity {
                        id: id.clone(),
                        addr: String::new(),
                        caps: WorkerCaps {
                            serve: false,
                            gen: true,
                        },
                        model_hash: String::new(),
                        guidance_len: 0,
                    },
                );
                let result = run_gen_worker(&coordinator, &id, Some(&agent));
                agent.stop();
                result
            })
        })
        .collect();
    assert!(coord.wait_gen_done(Duration::from_millis(25)));
    let results: Vec<_> = workers.into_iter().map(|t| t.join().unwrap()).collect();
    coord.shutdown();
    coord.join();

    assert!(
        fault::stats("fleet.worker_kill").unwrap().fires >= 1,
        "the kill must actually fire"
    );
    assert!(
        results.iter().any(std::result::Result::is_err),
        "the injected kill must take a worker down"
    );
    assert!(
        results.iter().any(std::result::Result::is_ok),
        "the surviving worker must finish the job"
    );

    let healed = assemble_dataset(&ShardStore::new(&checkpoint), &cfg, &design.graph)
        .unwrap()
        .expect("every shard healed to completion");
    assert_eq!(healed.samples.len(), baseline.samples.len());
    for (a, b) in healed.samples.iter().zip(&baseline.samples) {
        assert_eq!(a.guidance, b.guidance, "healing must recompute, not skew");
        assert_eq!(a.performance, b.performance);
    }
    let _ = std::fs::remove_dir_all(&checkpoint);
}

/// A panic injected into one parallel net-routing task must degrade that
/// task to a supervised sequential re-route — same clean layout contract,
/// no corruption, no hang — and the layout must still be identical at
/// every worker count (the fallback merges at a deterministic point).
#[test]
fn routing_task_panic_degrades_to_sequential_without_corruption() {
    let _guard = fault::scenario();
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let route_with_threads = |threads: usize| {
        let cfg = RouterConfig::builder().threads(threads).build().unwrap();
        Router::new(cfg)
            .unwrap()
            .route(&circuit, &placement, &tech, &RoutingGuidance::None)
            .unwrap()
    };

    // Probability-armed under a fixed seed: whether a task panics is a pure
    // function of (seed, task index), so the same task set faults at every
    // worker count. A `max_fires` cap would instead crown whichever worker
    // raced to the failpoint first, which is exactly the nondeterminism this
    // test must not depend on.
    fault::set_seed(11);
    fault::arm("route.task", FaultMode::Panic, 0.4);
    let faulted = route_with_threads(4);
    let stats = fault::stats("route.task").unwrap();
    assert!(stats.fires >= 1, "the failpoint must actually fire");
    assert!(
        faulted.is_clean(),
        "degraded run must still converge: {} conflicts",
        faulted.conflicts
    );
    for (i, net) in circuit.nets().iter().enumerate() {
        if net.is_routable() {
            assert!(
                faulted.net(NetId::new(i as u32)).is_some(),
                "net `{}` dropped by the fallback",
                net.name
            );
        }
    }

    // Same injection at other worker counts: identical layout (the
    // sequential fallback is part of the deterministic merge order).
    for threads in [1usize, 8] {
        fault::disarm_all();
        fault::set_seed(11);
        fault::arm("route.task", FaultMode::Panic, 0.4);
        let other = route_with_threads(threads);
        assert_eq!(
            faulted.nets, other.nets,
            "fault-degraded layout must be thread-count invariant"
        );
    }
}

/// Mirrors the trainer's job-shard mirror format: one done `/v1/route` job
/// as af-serve persists it.
fn write_done_job(dir: &std::path::Path, id: u64, guidance_len: usize, scale: f64) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(
        dir.join(format!("shard-{id:04}.json")),
        format!(
            "{{\"id\":{id},\"status\":\"done\",\"error\":null,\"result\":{{\"wirelength_um\":1.0,\
             \"vias\":2,\"conflicts\":0,\"performance\":{{\"offset_uv\":{},\"cmrr_db\":80.0,\
             \"bandwidth_mhz\":45.0,\"dc_gain_db\":60.0,\"noise_uvrms\":30.0}},\"guidance\":[{}]}}}}",
            120.0 * scale,
            vec!["0.5"; guidance_len].join(",")
        ),
    )
    .unwrap();
}

#[test]
fn trainer_killed_mid_finetune_never_exposes_a_half_written_candidate() {
    use analogfold_suite::model::{
        train_once, ModelRegistry, TrainOutcome, Trainer, TrainerConfig,
    };

    let root = tmp_dir("trainer-kill");
    let cfg = TrainerConfig {
        epochs: 2,
        interval_ms: 50,
        backoff_ms: 10,
        ..TrainerConfig::new(
            root.join("registry"),
            root.join("jobs"),
            root.join("dataset"),
            "OTA1",
            "A",
        )
    };
    let circuit = benchmarks::ota1();
    let tech = Technology::nm40();
    let placement = place(&circuit, PlacementVariant::A);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let glen = small_gnn().session(&graph).guidance_len();
    write_done_job(&cfg.jobs, 0, glen, 1.0);
    write_done_job(&cfg.jobs, 1, glen, 1.2);

    let _guard = fault::scenario();
    fault::arm_spec("model.train:panic:1:1").unwrap();

    // The kill: one training pass dies inside the fine-tune window, after
    // the dataset was ingested but before any candidate was published.
    let killed = std::panic::catch_unwind(|| train_once(&cfg));
    assert!(killed.is_err(), "the armed failpoint must kill the pass");

    // The registry the kill left behind is clean: it opens, exposes no
    // entry, and holds no torn temp files a reader could mistake for one.
    let registry = ModelRegistry::open(&cfg.registry).unwrap();
    assert!(
        registry.list().is_empty(),
        "a killed trainer must not expose a half-written candidate"
    );
    assert!(registry.current().is_none());
    drop(registry);
    let models_dir = cfg.registry.join("models");
    if models_dir.exists() {
        for entry in std::fs::read_dir(&models_dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().contains(".tmp"),
                "stray temp file after kill: {name:?}"
            );
        }
    }

    // Supervised recovery: the failpoint is exhausted, so the restarted
    // trainer loop re-runs the same pass and registers the candidate a
    // never-killed trainer would have produced (ingest state was only
    // persisted after a successful registration, so nothing was lost).
    let mut trainer = Trainer::start(cfg.clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    let hash = loop {
        let registry = ModelRegistry::open(&cfg.registry).unwrap();
        if let Some(entry) = registry.list().first() {
            break entry.hash.clone();
        }
        assert!(
            Instant::now() < deadline,
            "trainer did not register after recovery"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    trainer.shutdown();

    let registry = ModelRegistry::open(&cfg.registry).unwrap();
    assert_eq!(registry.list().len(), 1, "exactly one candidate");
    let entry = registry.entry(&hash).unwrap();
    assert_eq!(entry.lineage.samples, Some(2));
    // The published file is whole: the content-hash envelope validates at
    // load, so a torn write could not have survived unnoticed.
    registry.load(&hash).unwrap();

    // And the recovered pass is the deterministic one: re-running over the
    // same shards is a no-op, not a divergent duplicate.
    assert_eq!(train_once(&cfg).unwrap(), TrainOutcome::Unchanged);
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// Tail tolerance: one of three serve replicas is deterministically slow (a
// seeded `serve.batch.delay` failpoint fires on every batch of exactly one
// worker), the front hedges around it, the latency breaker trips it out of
// the ring, and a disarmed run heals the breaker back to closed — while the
// prediction bodies stay bit-identical at every server thread count.

#[test]
fn fleet_slow_worker_is_hedged_tripped_and_healed() {
    use analogfold_suite::fleet::{
        Coordinator, CoordinatorConfig, Front, FrontConfig, WorkerAgent, WorkerCaps, WorkerIdentity,
    };
    use analogfold_suite::guard::{BreakerConfig, HedgeConfig};

    let _guard = fault::scenario();
    const WORKERS: u64 = 3;
    const PROB: f64 = 0.34;
    const DELAY_MS: u64 = 120;
    const NONCES: u64 = 32;

    // Whether the delay fires is a pure function of (seed, fault_key), so a
    // small scan finds a seed under which exactly one of the three replicas
    // is slow — on every batch, at every thread count, in every run.
    let fault_seed = (1u64..100_000)
        .find(|&s| {
            (0..WORKERS)
                .filter(|&k| fault::would_fire(s, "serve.batch.delay", k, PROB))
                .count()
                == 1
        })
        .expect("some seed slows exactly one of three workers");
    let slow_idx = (0..WORKERS)
        .find(|&k| fault::would_fire(fault_seed, "serve.batch.delay", k, PROB))
        .unwrap();
    let slow_id = format!("cw{slow_idx}");

    let gnn = small_gnn();
    let bodies_for = |guidance_len: usize, nonce: u64| {
        let n = nonce as f64;
        format!(
            "{{\"guidance\":[{}]}}",
            (0..guidance_len)
                .map(|i| format!("{:?}", ((i as f64).mul_add(0.29, n * 0.77)).sin() * 0.3))
                .collect::<Vec<_>>()
                .join(",")
        )
    };

    let mut reference: Option<Vec<String>> = None;
    for threads in [1usize, 4, 8] {
        fault::disarm_all();
        fault::set_seed(fault_seed);
        fault::arm_spec(&format!("serve.batch.delay:delay:{DELAY_MS}:{PROB}")).unwrap();

        let coord = Coordinator::bind(CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            lease_ms: 0,
            gen: None,
        })
        .unwrap();
        let coordinator = coord.addr().to_string();
        let mut rigs = Vec::new();
        let mut guidance_len = 0;
        for i in 0..WORKERS {
            let bundle = ModelBundle::with_model("OTA1", "A", gnn.clone()).unwrap();
            guidance_len = bundle.guidance_len();
            let model_hash = bundle.model_hash.clone();
            let server = Server::bind(
                bundle,
                ServeConfig {
                    workers: threads,
                    fault_key: i,
                    job_dir: Some(tmp_dir(&format!("slow-{threads}-{i}"))),
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let id = format!("cw{i}");
            let agent = WorkerAgent::start(
                &coordinator,
                WorkerIdentity {
                    id: id.clone(),
                    addr: server.addr().to_string(),
                    caps: WorkerCaps {
                        serve: true,
                        gen: false,
                    },
                    model_hash,
                    guidance_len: guidance_len as u64,
                },
            );
            rigs.push((id, server, agent));
        }
        let front = Front::bind(FrontConfig {
            addr: "127.0.0.1:0".to_string(),
            coordinator,
            refresh_ms: 50,
            // A fixed hedge delay well under the injected slowness (and well
            // over a healthy small-model prediction) keeps both phases of
            // the test off the flakiness cliff.
            hedge: HedgeConfig {
                delay_ms: 30,
                seed: 1,
                ..HedgeConfig::default()
            },
            breaker: BreakerConfig {
                window: 8,
                min_samples: 2,
                slow_ms: DELAY_MS / 3,
                open_ms: 300,
                probe_interval_ms: 50,
                close_after: 2,
                ..BreakerConfig::default()
            },
            ..FrontConfig::default()
        })
        .unwrap();
        let ring_deadline = Instant::now() + Duration::from_secs(10);
        while front.worker_count() != WORKERS as usize {
            assert!(Instant::now() < ring_deadline, "front ring never filled");
            std::thread::sleep(Duration::from_millis(20));
        }

        let bodies: Vec<String> = (0..NONCES)
            .map(|nonce| {
                let reply = request(
                    front.addr(),
                    "POST",
                    "/v1/predict",
                    &bodies_for(guidance_len, nonce),
                );
                assert_eq!(reply.status, 200, "{}", reply.body);
                reply.body
            })
            .collect();

        // Parity with every replica answered directly — the hedge winner is
        // whichever leg was fastest, so this is only safe because replicas
        // agree byte-for-byte.
        for (id, server, _) in &rigs {
            let direct = request(
                server.addr(),
                "POST",
                "/v1/predict",
                &bodies_for(guidance_len, 0),
            );
            assert_eq!(direct.status, 200);
            assert_eq!(
                direct.body, bodies[0],
                "replica {id} disagrees with the front"
            );
        }

        match &reference {
            None => reference = Some(bodies),
            Some(want) => assert_eq!(
                want, &bodies,
                "prediction bodies must be thread-count invariant under the slow worker"
            ),
        }

        let stats = front.hedge_stats();
        assert!(
            stats.issued >= 1,
            "at least one hedge must fire around the slow worker (issued {})",
            stats.issued
        );
        let tripped = front
            .breakers()
            .into_iter()
            .find(|b| b.worker == slow_id)
            .expect("the slow worker has a breaker");
        assert!(
            tripped.opened >= 1,
            "the latency breaker must trip the slow worker (state {})",
            tripped.state
        );

        // Heal: disarm the fault and keep sending traffic. The open breaker
        // moves to half-open after `open_ms`, `allow` lets probes through,
        // the now-fast replica answers, and `close_after` successes close it.
        fault::disarm_all();
        let heal_deadline = Instant::now() + Duration::from_secs(20);
        let mut nonce = 1_000u64;
        loop {
            let b = front
                .breakers()
                .into_iter()
                .find(|b| b.worker == slow_id)
                .unwrap();
            if b.state == "closed" {
                break;
            }
            assert!(
                Instant::now() < heal_deadline,
                "breaker never healed: stuck {} after {} trips",
                b.state,
                b.opened
            );
            let reply = request(
                front.addr(),
                "POST",
                "/v1/predict",
                &bodies_for(guidance_len, nonce),
            );
            assert_eq!(reply.status, 200);
            nonce += 1;
            std::thread::sleep(Duration::from_millis(10));
        }

        front.shutdown();
        front.join();
        for (_, server, agent) in rigs {
            agent.stop();
            server.shutdown();
            server.join();
        }
        coord.shutdown();
        coord.join();
    }
}
