//! Property-based tests of the geometry substrate.

use analogfold_suite::geom::{
    cost_distance, CostTriple, GridDim, GridPoint, Point, Point3, Rect, Segment,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-100_000i64..100_000, -100_000i64..100_000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn rect_normalization(a in arb_point(), b in arb_point()) {
        let r = Rect::new(a, b);
        prop_assert!(r.lo().x <= r.hi().x);
        prop_assert!(r.lo().y <= r.hi().y);
        prop_assert!(r.width() >= 0 && r.height() >= 0);
        prop_assert_eq!(r.area(), r.width() * r.height());
    }

    #[test]
    fn rect_union_contains_both(r1 in arb_rect(), r2 in arb_rect()) {
        let u = r1.union(&r2);
        prop_assert!(u.contains_rect(&r1));
        prop_assert!(u.contains_rect(&r2));
    }

    #[test]
    fn rect_intersection_inside_union(r1 in arb_rect(), r2 in arb_rect()) {
        if let Some(i) = r1.intersection(&r2) {
            prop_assert!(r1.contains_rect(&i));
            prop_assert!(r2.contains_rect(&i));
            prop_assert!(r1.intersects(&r2));
        } else {
            prop_assert!(!r1.intersects(&r2));
        }
    }

    #[test]
    fn mirror_involution(r in arb_rect(), axis in -50_000i64..50_000) {
        prop_assert_eq!(r.mirror_x(axis).mirror_x(axis), r);
        prop_assert_eq!(r.mirror_x(axis).area(), r.area());
    }

    #[test]
    fn manhattan_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
    }

    #[test]
    fn grid_flat_index_roundtrip(
        nx in 1u32..50, ny in 1u32..50, layers in 1u8..6,
        x in 0u32..50, y in 0u32..50, l in 0u8..6,
    ) {
        let dim = GridDim::new(Point::ORIGIN, nx, ny, layers, 10);
        let g = GridPoint::new(x % nx, y % ny, l % layers);
        prop_assert_eq!(dim.from_flat(dim.flat_index(g)), g);
        prop_assert!(dim.flat_index(g) < dim.len());
    }

    #[test]
    fn grid_snap_roundtrip(
        nx in 2u32..40, ny in 2u32..40,
        x in 0u32..40, y in 0u32..40,
        pitch in 1i64..1_000,
    ) {
        let dim = GridDim::new(Point::new(-500, 700), nx, ny, 2, pitch);
        let g = GridPoint::new(x % nx, y % ny, 1);
        let p = dim.to_dbu(g);
        prop_assert_eq!(dim.snap(p.xy(), 1), Some(g));
    }

    #[test]
    fn cost_distance_properties(
        dx in -10_000i64..10_000, dy in -10_000i64..10_000, dz in 0u8..4,
        cx in 0.01f64..5.0, cy in 0.01f64..5.0, cz in 0.01f64..5.0,
        k in 1.0f64..3.0,
    ) {
        let a = Point3::new(0, 0, 0);
        let b = Point3::new(dx, dy, dz);
        let c1 = CostTriple([cx, cy, cz]);
        let d1 = cost_distance(a, b, c1, 100);
        // symmetry in geometry
        prop_assert!((d1 - cost_distance(b, a, c1, 100)).abs() < 1e-9 * (1.0 + d1));
        // homogeneous of degree 1 in the guidance
        let c2 = CostTriple([cx * k, cy * k, cz * k]);
        let d2 = cost_distance(a, b, c2, 100);
        prop_assert!((d2 - k * d1).abs() < 1e-6 * (1.0 + d2));
        // non-negative, zero iff same point
        prop_assert!(d1 >= 0.0);
        if dx == 0 && dy == 0 && dz == 0 {
            prop_assert_eq!(d1, 0.0);
        }
    }

    #[test]
    fn segment_order_independence(
        x0 in -1_000i64..1_000, y in -1_000i64..1_000,
        len in 1i64..1_000, layer in 0u8..4,
    ) {
        let a = Point3::new(x0, y, layer);
        let b = Point3::new(x0 + len, y, layer);
        let s1 = Segment::new(a, b).unwrap();
        let s2 = Segment::new(b, a).unwrap();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(s1.length(), len);
        prop_assert!(!s1.is_via());
    }
}
