//! `analogfold` command-line interface: drive the reproduction stack from a
//! shell — route, simulate, export, train, and guide without writing Rust.
//!
//! ```text
//! analogfold-cli route    <OTA1..OTA4> <A..D> [--svg FILE] [--def FILE] [--report]
//!                         [--route-threads N]
//! analogfold-cli simulate <OTA1..OTA4> [A..D] [--schematic]
//! analogfold-cli spice    <OTA1..OTA4> [A..D] [--schematic] [--out FILE]
//! analogfold-cli train    <OTA1..OTA4> <A..D> [--samples N] [--epochs N] [--threads N] [--out FILE]
//!                         [--registry DIR]
//! analogfold-cli guide    <OTA1..OTA4> <A..D> --model FILE [--restarts N] [--threads N]
//! analogfold-cli flow     <OTA1..OTA4> <A..D> [--samples N] [--epochs N] [--restarts N]
//!                         [--threads N] [--route-threads N] [--cache-mb N] [--no-cache]
//!                         [--obs-jsonl FILE] [--obs-report]
//! analogfold-cli serve    <OTA1..OTA4> <A..D> [--model FILE] [--registry DIR] [--addr HOST:PORT]
//!                         [--threads N] [--jobs DIR] [--cache-mb N] [--no-cache]
//!                         [--canary-fraction X] [--train] [--train-interval-ms N]
//!                         [--train-min-samples N] [--train-epochs N] [--obs-jsonl FILE]
//! analogfold-cli models   <list|show HASH|promote [HASH] [--force]|rollback|gc [--keep N]>
//!                         --registry DIR
//! analogfold-cli fleet-coord  [--addr HOST:PORT] [--lease-ms N]
//! analogfold-cli fleet-worker <OTA1..OTA4> <A..D> --coordinator HOST:PORT [--model FILE]
//!                         [--registry DIR] [--addr HOST:PORT] [--id NAME] [--threads N]
//!                         [--cache-mb N]
//! analogfold-cli fleet-front  --coordinator HOST:PORT [--addr HOST:PORT] [--refresh-ms N]
//! analogfold-cli fleet-gen    <OTA1..OTA4> <A..D> --checkpoint DIR [--samples N]
//!                         [--shard-size N] [--seed N] [--workers N] [--out FILE]
//!                         [--addr HOST:PORT] [--lease-ms N] [--threads N] [--cache-mb N]
//! analogfold-cli fleet-gen    --join HOST:PORT [--id NAME]
//! analogfold-cli bench-info
//! ```
//!
//! Every subcommand additionally accepts `--fault NAME:MODE:PROB[:MAX]` and
//! `--fault-seed N` (or the `AF_FAULT` / `AF_FAULT_SEED` environment) to arm
//! deterministic fault injection for chaos testing.

use std::fs;
use std::process::ExitCode;

use analogfold_suite::analogfold::{
    generate_dataset, guidance_field, relax, AnalogFoldFlow, DatasetConfig, FlowConfig, GnnConfig,
    HeteroGraph, Potential, RelaxConfig, ThreeDGnn,
};
use analogfold_suite::extract::extract;
use analogfold_suite::netlist::{benchmarks, Circuit, DeviceKind};
use analogfold_suite::place::{place, Placement};
use analogfold_suite::route::{render_svg, write_def, Router, RouterConfig, RoutingGuidance};
use analogfold_suite::sim::{psrr_db, simulate, to_spice, Performance, SimConfig};
use analogfold_suite::tech::Technology;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  analogfold-cli route    <OTA1..OTA4> <A..D> [--svg FILE] [--def FILE] [--report]
                          [--route-threads N]
  analogfold-cli simulate <OTA1..OTA4> [A..D] [--schematic]
  analogfold-cli spice    <OTA1..OTA4> [A..D] [--schematic] [--out FILE]
  analogfold-cli train    <OTA1..OTA4> <A..D> [--samples N] [--epochs N] [--threads N] [--out FILE]
                          [--registry DIR]
  analogfold-cli guide    <OTA1..OTA4> <A..D> --model FILE [--restarts N] [--threads N]
  analogfold-cli flow     <OTA1..OTA4> <A..D> [--samples N] [--epochs N] [--restarts N]
                          [--threads N] [--route-threads N] [--cache-mb N] [--no-cache]
                          [--obs-jsonl FILE] [--obs-report]
  analogfold-cli serve    <OTA1..OTA4> <A..D> [--model FILE] [--registry DIR] [--addr HOST:PORT]
                          [--threads N] [--jobs DIR] [--cache-mb N] [--no-cache]
                          [--canary-fraction X] [--train] [--train-interval-ms N]
                          [--train-min-samples N] [--train-epochs N] [--obs-jsonl FILE]
                          [--deadline-max-ms N] [--admission-target-ms N]
                          [--admission-interval-ms N] [--fault-key N]
  analogfold-cli models   <list|show HASH|promote [HASH] [--force]|rollback|gc [--keep N]>
                          --registry DIR
  analogfold-cli fleet-coord  [--addr HOST:PORT] [--lease-ms N]
  analogfold-cli fleet-worker <OTA1..OTA4> <A..D> --coordinator HOST:PORT [--model FILE]
                          [--registry DIR] [--addr HOST:PORT] [--id NAME] [--threads N]
                          [--cache-mb N]
  analogfold-cli fleet-front  --coordinator HOST:PORT [--addr HOST:PORT] [--refresh-ms N]
                          [--deadline-max-ms N] [--no-hedge] [--hedge-delay-ms N]
                          [--no-breaker] [--breaker-open-ms N] [--breaker-slow-ms N]
  analogfold-cli fleet-gen    <OTA1..OTA4> <A..D> --checkpoint DIR [--samples N]
                          [--shard-size N] [--seed N] [--workers N] [--out FILE]
                          [--addr HOST:PORT] [--lease-ms N] [--threads N] [--cache-mb N]
  analogfold-cli fleet-gen    --join HOST:PORT [--id NAME]
  analogfold-cli bench-info

every subcommand also accepts fault injection for chaos testing:
                          [--fault NAME:MODE:PROB[:MAX]] [--fault-seed N]
                          (or the AF_FAULT / AF_FAULT_SEED environment)";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    // Any subcommand can run under fault injection (`--fault SPEC`,
    // `--fault-seed N`, or the AF_FAULT / AF_FAULT_SEED environment);
    // disarmed, the registry costs one atomic load per failpoint site.
    fault_flag(args)?;
    match cmd.as_str() {
        "route" => cmd_route(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "spice" => cmd_spice(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "guide" => cmd_guide(&args[1..]),
        "flow" => cmd_flow(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "models" => cmd_models(&args[1..]),
        "fleet-coord" => cmd_fleet_coord(&args[1..]),
        "fleet-worker" => cmd_fleet_worker(&args[1..]),
        "fleet-front" => cmd_fleet_front(&args[1..]),
        "fleet-gen" => cmd_fleet_gen(&args[1..]),
        "bench-info" => {
            cmd_bench_info();
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_circuit(args: &[String]) -> Result<Circuit, String> {
    let name = args.first().ok_or("missing benchmark name")?;
    benchmarks::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))
}

use analogfold_suite::cli::{
    cache_mb_flag, fault_flag, flag_f64, flag_num, flag_value, has_flag, obs_flags, obs_install,
    route_threads_flag, threads_flag, variant_arg as parse_variant,
};

fn print_perf(label: &str, p: &Performance) {
    println!("{label}:");
    println!("  Offset Voltage : {:>12.2} uV", p.offset_uv);
    println!("  CMRR           : {:>12.2} dB", p.cmrr_db);
    println!("  BandWidth      : {:>12.2} MHz", p.bandwidth_mhz);
    println!("  DC Gain        : {:>12.2} dB", p.dc_gain_db);
    println!("  Noise          : {:>12.2} uVrms", p.noise_uvrms);
}

fn routed(
    circuit: &Circuit,
    placement: &Placement,
    tech: &Technology,
    guidance: &RoutingGuidance,
    threads: usize,
) -> Result<analogfold_suite::route::RoutedLayout, String> {
    let cfg = RouterConfig::builder()
        .threads(threads)
        .build()
        .map_err(|e| e.to_string())?;
    Router::new(cfg)
        .map_err(|e| e.to_string())?
        .route(circuit, placement, tech, guidance)
        .map_err(|e| e.to_string())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let circuit = parse_circuit(args)?;
    let variant = parse_variant(args, 1);
    let tech = Technology::nm40();
    let placement = place(&circuit, variant);
    let layout = routed(
        &circuit,
        &placement,
        &tech,
        &RoutingGuidance::None,
        route_threads_flag(args),
    )?;
    println!(
        "{}-{variant}: {} nets, {:.1} um wire, {} vias, {} conflicts, {:.2}s",
        circuit.name(),
        layout.nets.len(),
        layout.total_wirelength() as f64 / 1e3,
        layout.total_vias(),
        layout.conflicts,
        layout.runtime_s
    );
    if has_flag(args, "--report") {
        print!("{}", layout.report(&circuit));
    }
    if let Some(path) = flag_value(args, "--svg") {
        let svg = render_svg(
            &circuit,
            &placement,
            &layout,
            &format!("{}-{variant}", circuit.name()),
        );
        fs::write(path, svg).map_err(|e| e.to_string())?;
        println!("svg written to {path}");
    }
    if let Some(path) = flag_value(args, "--def") {
        fs::write(path, write_def(&circuit, &placement, &layout)).map_err(|e| e.to_string())?;
        println!("def written to {path}");
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let circuit = parse_circuit(args)?;
    let cfg = SimConfig::default();
    let schematic = simulate(&circuit, None, &cfg).map_err(|e| e.to_string())?;
    print_perf(&format!("{} schematic", circuit.name()), &schematic);
    let psrr = psrr_db(&circuit, None, &cfg).map_err(|e| e.to_string())?;
    println!("  PSRR           : {psrr:>12.2} dB");
    if !has_flag(args, "--schematic") {
        let variant = parse_variant(args, 1);
        let tech = Technology::nm40();
        let placement = place(&circuit, variant);
        let layout = routed(
            &circuit,
            &placement,
            &tech,
            &RoutingGuidance::None,
            route_threads_flag(args),
        )?;
        let px = extract(&circuit, &tech, &layout);
        let post = simulate(&circuit, Some(&px), &cfg).map_err(|e| e.to_string())?;
        print_perf(&format!("{}-{variant} post-layout", circuit.name()), &post);
        let psrr = psrr_db(&circuit, Some(&px), &cfg).map_err(|e| e.to_string())?;
        println!("  PSRR           : {psrr:>12.2} dB");
    }
    Ok(())
}

fn cmd_spice(args: &[String]) -> Result<(), String> {
    let circuit = parse_circuit(args)?;
    let deck = if has_flag(args, "--schematic") {
        to_spice(&circuit, None)
    } else {
        let variant = parse_variant(args, 1);
        let tech = Technology::nm40();
        let placement = place(&circuit, variant);
        let layout = routed(
            &circuit,
            &placement,
            &tech,
            &RoutingGuidance::None,
            route_threads_flag(args),
        )?;
        let px = extract(&circuit, &tech, &layout);
        to_spice(&circuit, Some(&px))
    };
    match flag_value(args, "--out") {
        Some(path) => {
            fs::write(path, &deck).map_err(|e| e.to_string())?;
            println!("deck written to {path}");
        }
        None => print!("{deck}"),
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let circuit = parse_circuit(args)?;
    let variant = parse_variant(args, 1);
    let samples = flag_num(args, "--samples", 40);
    let epochs = flag_num(args, "--epochs", 20);
    let threads = threads_flag(args);
    let out = flag_value(args, "--out").unwrap_or("analogfold-model.json");

    let tech = Technology::nm40();
    let placement = place(&circuit, variant);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    eprintln!("generating {samples} samples ...");
    let dataset = generate_dataset(
        &circuit,
        &placement,
        &tech,
        &graph,
        &DatasetConfig {
            samples,
            threads,
            ..DatasetConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let cfg = GnnConfig {
        epochs,
        ..GnnConfig::default()
    };
    let mut gnn = ThreeDGnn::new(&cfg);
    let report = gnn.train(&graph, &dataset, &cfg);
    println!(
        "trained: loss {:.4} -> {:.4}",
        report.epoch_losses[0], report.final_loss
    );
    gnn.save(out).map_err(|e| e.to_string())?;
    println!("model saved to {out}");
    if let Some(dir) = flag_value(args, "--registry") {
        use analogfold_suite::analogfold::content_hash_of;
        use analogfold_suite::model::{Lineage, ModelRegistry};
        let mut registry = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
        let entry = registry
            .register(
                &gnn,
                Lineage {
                    parent: None,
                    dataset_hash: Some(content_hash_of(&dataset).to_hex()),
                    train_seed: Some(cfg.seed),
                    train_epochs: Some(epochs as u64),
                    samples: Some(dataset.samples.len() as u64),
                    eval_mse: None,
                    note: Some("cli-train".to_string()),
                },
            )
            .map_err(|e| e.to_string())?;
        let hash = entry.hash.clone();
        // Bootstrap: the first registered model becomes current so a serve
        // started against the same registry has something to load.
        if registry.current().is_none() {
            registry.promote(&hash, false).map_err(|e| e.to_string())?;
            println!("model {hash} registered and promoted (registry bootstrap)");
        } else {
            println!("model {hash} registered as candidate");
        }
    }
    Ok(())
}

fn cmd_guide(args: &[String]) -> Result<(), String> {
    let circuit = parse_circuit(args)?;
    let variant = parse_variant(args, 1);
    let model_path = flag_value(args, "--model").ok_or("missing --model FILE")?;
    let restarts = flag_num(args, "--restarts", 12);
    let threads = threads_flag(args);

    let tech = Technology::nm40();
    let placement = place(&circuit, variant);
    let graph = HeteroGraph::build(&circuit, &placement, &tech, 3);
    let gnn = ThreeDGnn::load(model_path).map_err(|e| e.to_string())?;
    let potential = Potential::new(&gnn, &graph);
    let outcomes = relax(
        &potential,
        &RelaxConfig {
            restarts,
            n_derive: 1,
            threads,
            ..RelaxConfig::default()
        },
    );
    let best = &outcomes[0];
    println!("best potential: {:.5}", best.potential);

    let field = RoutingGuidance::NonUniform(guidance_field(&graph, &best.guidance));
    let layout = routed(
        &circuit,
        &placement,
        &tech,
        &field,
        route_threads_flag(args),
    )?;
    let px = extract(&circuit, &tech, &layout);
    let perf = simulate(&circuit, Some(&px), &SimConfig::default()).map_err(|e| e.to_string())?;
    print_perf(&format!("{}-{variant} guided", circuit.name()), &perf);
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), String> {
    let circuit = parse_circuit(args)?;
    let variant = parse_variant(args, 1);
    let samples = flag_num(args, "--samples", 24);
    let epochs = flag_num(args, "--epochs", 12);
    let restarts = flag_num(args, "--restarts", 6);
    let threads = threads_flag(args);
    let obs = obs_flags(args);
    let guard = obs_install(&obs)?;

    let t0 = std::time::Instant::now();
    let placement = place(&circuit, variant);
    let placement_s = t0.elapsed().as_secs_f64();

    let cfg = FlowConfig::builder()
        .samples(samples)
        .epochs(epochs)
        .restarts(restarts)
        .n_derive(flag_num(args, "--n-derive", 3).min(restarts))
        .threads(threads)
        .route_threads(route_threads_flag(args))
        .cache_mb(cache_mb_flag(args, 64))
        .placement_s(placement_s)
        .build()
        .map_err(|e| e.to_string())?;
    eprintln!(
        "running AnalogFold flow on {}-{variant} ({samples} samples, {epochs} epochs, \
         {restarts} restarts) ...",
        circuit.name()
    );
    let outcome = AnalogFoldFlow::new(cfg)
        .run(&circuit, &placement)
        .map_err(|e| e.to_string())?;

    print_perf(
        &format!("{}-{variant} AnalogFold", circuit.name()),
        &outcome.performance,
    );
    let b = &outcome.breakdown;
    println!("runtime breakdown (total {:.2} s):", b.total());
    use analogfold_suite::obs::fmt::{Cell, Table};
    let table = Table::new(16).col(10).col(8).indent(2);
    println!("{}", table.header("stage", &["sec", "%"]));
    let [db, tr, gg, gr, pl] = b.percentages();
    for (name, secs, pct) in [
        ("construct_db", b.construct_db_s, db),
        ("training", b.training_s, tr),
        ("guide_gen", b.guide_gen_s, gg),
        ("guided_route", b.guided_route_s, gr),
        ("placement", b.placement_s, pl),
    ] {
        println!(
            "{}",
            table.row(name, &[Cell::Float(secs, 3), Cell::Float(pct, 1)])
        );
    }

    if let Some(g) = &guard {
        g.flush();
        if obs.report {
            println!();
            print!("{}", g.report_text());
        }
        if let Some(path) = &obs.jsonl {
            eprintln!("obs events written to {path}");
        }
    }
    Ok(())
}

/// Loads the serving model: `--model FILE` when given, otherwise the
/// registry's promoted model.
fn load_serve_bundle(
    args: &[String],
    bench: &str,
    variant_label: &str,
    registry_dir: Option<&std::path::Path>,
) -> Result<analogfold_suite::serve::ModelBundle, String> {
    use analogfold_suite::model::ModelRegistry;
    use analogfold_suite::serve::ModelBundle;

    match (flag_value(args, "--model"), registry_dir) {
        (Some(path), _) => ModelBundle::load(bench, variant_label, path).map_err(|e| e.to_string()),
        (None, Some(dir)) => {
            let registry = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
            let hash = registry
                .current()
                .ok_or(
                    "registry has no promoted model; pass --model FILE or run `train --registry`",
                )?
                .to_string();
            let gnn = registry.load(&hash).map_err(|e| e.to_string())?;
            ModelBundle::with_model(bench, variant_label, gnn).map_err(|e| e.to_string())
        }
        (None, None) => {
            Err("missing --model FILE (or --registry DIR with a promoted model)".into())
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use analogfold_suite::model::{Trainer, TrainerConfig};
    use analogfold_suite::serve::{ServeConfig, Server};

    let circuit = parse_circuit(args)?; // validates the name early
    let variant = parse_variant(args, 1);
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:8080");
    let threads = threads_flag(args);
    let registry_dir = flag_value(args, "--registry").map(std::path::PathBuf::from);
    let guard = obs_on(args)?;

    let bundle = load_serve_bundle(
        args,
        circuit.name(),
        variant.label(),
        registry_dir.as_deref(),
    )?;
    let dflt = ServeConfig::default();
    let cfg = ServeConfig {
        addr: addr.to_string(),
        workers: threads,
        job_dir: flag_value(args, "--jobs").map(std::path::PathBuf::from),
        cache_mb: cache_mb_flag(args, dflt.cache_mb),
        registry: registry_dir.clone(),
        canary_fraction: flag_f64(args, "--canary-fraction", dflt.canary_fraction),
        deadline_max_ms: flag_num(args, "--deadline-max-ms", dflt.deadline_max_ms as usize) as u64,
        admission_target_ms: flag_num(
            args,
            "--admission-target-ms",
            dflt.admission_target_ms as usize,
        ) as u64,
        admission_interval_ms: flag_num(
            args,
            "--admission-interval-ms",
            dflt.admission_interval_ms as usize,
        ) as u64,
        fault_key: flag_num(args, "--fault-key", dflt.fault_key as usize) as u64,
        ..dflt
    };
    let job_dir = cfg.resolved_job_dir();

    // The background trainer folds completed `/v1/route` jobs into a
    // growing dataset and registers fine-tuned candidates; the serve
    // registry watcher then canaries them. Promotion stays explicit
    // (`models promote` or POST /v1/models/promote).
    let mut trainer = if has_flag(args, "--train") {
        let dir = registry_dir
            .clone()
            .ok_or("--train requires --registry DIR")?;
        let base = TrainerConfig::new(
            &dir,
            &job_dir,
            dir.join("trainer-data"),
            circuit.name(),
            variant.label(),
        );
        let tcfg = TrainerConfig {
            interval_ms: flag_num(args, "--train-interval-ms", base.interval_ms as usize) as u64,
            min_new_samples: flag_num(args, "--train-min-samples", base.min_new_samples),
            epochs: flag_num(args, "--train-epochs", base.epochs),
            ..base
        };
        Some(Trainer::start(tcfg).map_err(|e| e.to_string())?)
    } else {
        None
    };

    let handle = Server::bind(bundle, cfg).map_err(|e| e.to_string())?;
    println!(
        "serving {}-{variant} at http://{}",
        circuit.name(),
        handle.addr()
    );
    println!(
        "routes: GET /healthz /metrics /v1/jobs/<id> /v1/models; POST /v1/predict /v1/guide /v1/route /v1/models/promote"
    );
    println!(
        "stop with: curl -X POST http://{}/v1/shutdown",
        handle.addr()
    );
    handle.join();
    if let Some(t) = trainer.as_mut() {
        t.shutdown();
    }
    guard.flush();
    Ok(())
}

fn cmd_models(args: &[String]) -> Result<(), String> {
    use analogfold_suite::model::ModelRegistry;

    let action = args
        .first()
        .ok_or("missing models action (list|show|promote|rollback|gc)")?;
    let dir = flag_value(args, "--registry").ok_or("missing --registry DIR")?;
    let mut registry = ModelRegistry::open(dir).map_err(|e| e.to_string())?;
    // Positional hash argument (absent when the next token is a flag).
    let hash_arg = args.get(1).filter(|a| !a.starts_with("--")).cloned();
    match action.as_str() {
        "list" => {
            println!(
                "{:<34}{:<11}{:>8}{:>8}{:>12}  parent",
                "hash", "state", "present", "samples", "eval-mse"
            );
            for e in registry.list() {
                let lineage = &e.lineage;
                println!(
                    "{:<34}{:<11}{:>8}{:>8}{:>12}  {}",
                    e.hash,
                    registry.state(e).label(),
                    if e.present { "yes" } else { "no" },
                    lineage
                        .samples
                        .map_or_else(|| "-".to_string(), |s| s.to_string()),
                    lineage
                        .eval_mse
                        .map_or_else(|| "-".to_string(), |m| format!("{m:.5}")),
                    lineage.parent.as_deref().unwrap_or("-"),
                );
            }
            if let Some(current) = registry.current() {
                println!("current: {current}");
            } else {
                println!("current: (none)");
            }
        }
        "show" => {
            let prefix = hash_arg.ok_or("missing HASH argument to `models show`")?;
            let hash = registry.resolve(&prefix).map_err(|e| e.to_string())?;
            let entry = registry.entry(&hash).ok_or("entry vanished")?;
            println!("hash      : {}", entry.hash);
            println!("state     : {}", registry.state(entry).label());
            println!("present   : {}", entry.present);
            println!("promotions: {}", entry.promotions);
            let l = &entry.lineage;
            println!("parent    : {}", l.parent.as_deref().unwrap_or("-"));
            println!("dataset   : {}", l.dataset_hash.as_deref().unwrap_or("-"));
            for (label, v) in [
                ("seed", l.train_seed),
                ("epochs", l.train_epochs),
                ("samples", l.samples),
            ] {
                println!(
                    "{label:<10}: {}",
                    v.map_or_else(|| "-".to_string(), |n| n.to_string())
                );
            }
            println!(
                "eval-mse  : {}",
                l.eval_mse
                    .map_or_else(|| "-".to_string(), |m| format!("{m:.6}"))
            );
            println!("note      : {}", l.note.as_deref().unwrap_or("-"));
            if let Some(v) = &entry.verdict {
                println!("verdict   : {v}");
            }
        }
        "promote" => {
            let target = match hash_arg {
                Some(h) => h,
                None => registry
                    .latest_candidate()
                    .map(|e| e.hash.clone())
                    .ok_or("no candidate to promote (and no HASH given)")?,
            };
            let previous = registry.current().unwrap_or("-").to_string();
            let hash = registry
                .promote(&target, has_flag(args, "--force"))
                .map_err(|e| e.to_string())?;
            println!("promoted {hash} (previous: {previous})");
        }
        "rollback" => {
            let hash = registry.rollback().map_err(|e| e.to_string())?;
            println!("rolled back to {hash}");
        }
        "gc" => {
            let removed = registry
                .gc(flag_num(args, "--keep", 3))
                .map_err(|e| e.to_string())?;
            if removed.is_empty() {
                println!("nothing to remove");
            } else {
                for hash in &removed {
                    println!("removed {hash}");
                }
            }
        }
        other => return Err(format!("unknown models action `{other}`")),
    }
    Ok(())
}

/// Installs observability with recording always on, honoring any explicit
/// obs flags. Server-style subcommands need this even without flags: their
/// `/metrics` endpoints render from the in-memory registry, so an empty
/// tee sink is installed as the fallback.
fn obs_on(args: &[String]) -> Result<analogfold_suite::obs::ObsGuard, String> {
    Ok(match obs_install(&obs_flags(args))? {
        Some(g) => g,
        None => analogfold_suite::obs::install(std::sync::Arc::new(
            analogfold_suite::obs::TeeSink::new(),
        )),
    })
}

fn cmd_fleet_coord(args: &[String]) -> Result<(), String> {
    use analogfold_suite::fleet::{Coordinator, CoordinatorConfig};

    let guard = obs_on(args)?;
    let handle = Coordinator::bind(CoordinatorConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:8400")
            .to_string(),
        lease_ms: flag_num(args, "--lease-ms", 0) as u64,
        gen: None,
    })
    .map_err(|e| e.to_string())?;
    println!("fleet coordinator at http://{}", handle.addr());
    println!(
        "routes: GET /healthz /metrics /fleet/workers /fleet/status; POST /fleet/register /fleet/heartbeat /fleet/lease /fleet/complete"
    );
    println!(
        "stop with: curl -X POST http://{}/fleet/shutdown",
        handle.addr()
    );
    handle.join();
    guard.flush();
    Ok(())
}

fn cmd_fleet_worker(args: &[String]) -> Result<(), String> {
    use analogfold_suite::fleet::{ModelHooks, WorkerAgent, WorkerCaps, WorkerIdentity};
    use analogfold_suite::model::ModelRegistry;
    use analogfold_suite::serve::{ServeConfig, Server};

    let circuit = parse_circuit(args)?;
    let variant = parse_variant(args, 1);
    let coordinator = flag_value(args, "--coordinator")
        .ok_or("missing --coordinator HOST:PORT")?
        .to_string();
    let registry_dir = flag_value(args, "--registry").map(std::path::PathBuf::from);
    let guard = obs_on(args)?;

    let bundle = load_serve_bundle(
        args,
        circuit.name(),
        variant.label(),
        registry_dir.as_deref(),
    )?;
    let model_hash = bundle.model_hash.clone();
    let guidance_len = bundle.guidance_len() as u64;
    let handle = Server::bind(
        bundle,
        ServeConfig {
            addr: flag_value(args, "--addr")
                .unwrap_or("127.0.0.1:0")
                .to_string(),
            workers: threads_flag(args),
            cache_mb: cache_mb_flag(args, ServeConfig::default().cache_mb),
            registry: registry_dir.clone(),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let id = flag_value(args, "--id").map_or_else(
        || format!("w{}-{}", std::process::id(), handle.addr().port()),
        str::to_string,
    );
    // Heartbeats report the live resident hash (tracking hot-swaps), and a
    // fleet-wide promotion converges through the shared registry: the
    // promote hook moves the registry's CURRENT pointer, which the serve
    // watcher picks up and swaps without dropping in-flight work.
    let slot = handle.slot();
    let hooks = ModelHooks {
        resident_hash: Some(std::sync::Arc::new(move || slot.get().model_hash.clone())),
        on_promote: registry_dir.map(|dir| {
            std::sync::Arc::new(move |hash: &str| match ModelRegistry::open(&dir) {
                Ok(mut reg) => {
                    if let Err(e) = reg.promote(hash, true) {
                        analogfold_suite::obs::warn(&format!(
                            "fleet promotion of {hash} not applied locally: {e}"
                        ));
                    }
                }
                Err(e) => analogfold_suite::obs::warn(&format!(
                    "fleet promotion of {hash}: cannot open registry: {e}"
                )),
            }) as analogfold_suite::fleet::PromoteFn
        }),
    };
    let agent = WorkerAgent::start_with_hooks(
        &coordinator,
        WorkerIdentity {
            id: id.clone(),
            addr: handle.addr().to_string(),
            caps: WorkerCaps {
                serve: true,
                gen: false,
            },
            model_hash,
            guidance_len,
        },
        hooks,
    );
    println!(
        "fleet worker {id} serving {}-{variant} at http://{} (coordinator {coordinator})",
        circuit.name(),
        handle.addr()
    );
    handle.join();
    agent.stop();
    guard.flush();
    Ok(())
}

fn cmd_fleet_front(args: &[String]) -> Result<(), String> {
    use analogfold_suite::fleet::{Front, FrontConfig};
    use analogfold_suite::guard::{BreakerConfig, HedgeConfig};

    let coordinator = flag_value(args, "--coordinator")
        .ok_or("missing --coordinator HOST:PORT")?
        .to_string();
    let guard = obs_on(args)?;
    let dflt = FrontConfig::default();
    let hedge_dflt = HedgeConfig::default();
    let breaker_dflt = BreakerConfig::default();
    let handle = Front::bind(FrontConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:8401")
            .to_string(),
        coordinator: coordinator.clone(),
        refresh_ms: flag_num(args, "--refresh-ms", 500) as u64,
        deadline_max_ms: flag_num(args, "--deadline-max-ms", dflt.deadline_max_ms as usize) as u64,
        hedge: HedgeConfig {
            enabled: !has_flag(args, "--no-hedge"),
            delay_ms: flag_num(args, "--hedge-delay-ms", hedge_dflt.delay_ms as usize) as u64,
            ..hedge_dflt
        },
        breaker: BreakerConfig {
            open_ms: flag_num(args, "--breaker-open-ms", breaker_dflt.open_ms as usize) as u64,
            slow_ms: flag_num(args, "--breaker-slow-ms", breaker_dflt.slow_ms as usize) as u64,
            ..breaker_dflt
        },
        breaker_enabled: !has_flag(args, "--no-breaker"),
    })
    .map_err(|e| e.to_string())?;
    println!(
        "fleet front at http://{} (coordinator {coordinator}, {} workers)",
        handle.addr(),
        handle.worker_count()
    );
    println!(
        "stop with: curl -X POST http://{}/v1/shutdown",
        handle.addr()
    );
    handle.join();
    guard.flush();
    Ok(())
}

fn cmd_fleet_gen(args: &[String]) -> Result<(), String> {
    use analogfold_suite::fleet::{
        run_gen_worker, spec_config, spec_design, Coordinator, CoordinatorConfig, GenSpec,
        WorkerAgent, WorkerCaps, WorkerIdentity,
    };

    let guard = obs_on(args)?;

    // Join mode: this process is a pure gen worker attached to an external
    // coordinator. It leases shards until the job finishes, then exits —
    // killing it mid-shard is safe (the lease expires and re-assigns).
    if let Some(coordinator) = flag_value(args, "--join") {
        let id = flag_value(args, "--id")
            .map_or_else(|| format!("gen{}", std::process::id()), str::to_string);
        let agent = WorkerAgent::start(
            coordinator,
            WorkerIdentity {
                id: id.clone(),
                addr: String::new(),
                caps: WorkerCaps {
                    serve: false,
                    gen: true,
                },
                model_hash: String::new(),
                guidance_len: 0,
            },
        );
        let summary = run_gen_worker(coordinator, &id, Some(&agent)).map_err(|e| e.to_string())?;
        agent.stop();
        println!(
            "gen worker {id}: {} shards computed ({} samples), {} found on disk",
            summary.shards_computed, summary.samples, summary.shards_skipped
        );
        guard.flush();
        return Ok(());
    }

    // Coordinator mode: own the job, run local worker threads, accept
    // external joiners, assemble when every shard is in.
    let circuit = parse_circuit(args)?;
    let variant = parse_variant(args, 1);
    let checkpoint = flag_value(args, "--checkpoint").ok_or("missing --checkpoint DIR")?;
    let dflt = DatasetConfig::default();
    let spec = GenSpec {
        bench: circuit.name().to_string(),
        variant: variant.label().to_string(),
        samples: flag_num(args, "--samples", 24) as u64,
        shard_size: flag_num(args, "--shard-size", 4) as u64,
        seed: flag_num(args, "--seed", dflt.seed as usize) as u64,
        c_low: dflt.c_low,
        c_high: dflt.c_high,
        checkpoint: checkpoint.to_string(),
        threads: threads_flag(args) as u64,
        cache_mb: cache_mb_flag(args, dflt.cache_mb),
    };
    let workers = flag_num(args, "--workers", 2);
    let coord = Coordinator::bind(CoordinatorConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        lease_ms: flag_num(args, "--lease-ms", 0) as u64,
        gen: Some(spec.clone()),
    })
    .map_err(|e| e.to_string())?;
    let coord_addr = coord.addr().to_string();
    println!(
        "fleet gen coordinator at http://{coord_addr} ({} samples, shard size {}, {workers} local workers)",
        spec.samples, spec.shard_size
    );

    let local: Vec<_> = (0..workers)
        .map(|i| {
            let coord_addr = coord_addr.clone();
            std::thread::spawn(move || {
                let id = format!("gen{}-{i}", std::process::id());
                let agent = WorkerAgent::start(
                    &coord_addr,
                    WorkerIdentity {
                        id: id.clone(),
                        addr: String::new(),
                        caps: WorkerCaps {
                            serve: false,
                            gen: true,
                        },
                        model_hash: String::new(),
                        guidance_len: 0,
                    },
                );
                let result = run_gen_worker(&coord_addr, &id, Some(&agent));
                agent.stop();
                (id, result)
            })
        })
        .collect();
    coord.wait_gen_done(std::time::Duration::from_millis(50));
    for t in local {
        match t.join() {
            Ok((id, Ok(s))) => println!(
                "  {id}: {} shards computed ({} samples), {} found on disk",
                s.shards_computed, s.samples, s.shards_skipped
            ),
            Ok((id, Err(e))) => eprintln!("  {id} failed: {e}"),
            Err(_) => eprintln!("  local gen worker panicked"),
        }
    }
    coord.shutdown();
    coord.join();

    let dcfg = spec_config(&spec).map_err(|e| e.to_string())?;
    let design = spec_design(&spec).map_err(|e| e.to_string())?;
    let store = analogfold_suite::analogfold::ShardStore::new(checkpoint);
    let dataset = analogfold_suite::analogfold::assemble_dataset(&store, &dcfg, &design.graph)
        .map_err(|e| e.to_string())?
        .ok_or("job reported done but checkpoint shards are incomplete")?;
    println!("dataset assembled: {} samples", dataset.samples.len());
    if let Some(out) = flag_value(args, "--out") {
        let json = serde_json::to_string(&dataset).map_err(|e| e.to_string())?;
        fs::write(out, json).map_err(|e| e.to_string())?;
        println!("dataset written to {out}");
    }
    guard.flush();
    Ok(())
}

fn cmd_bench_info() {
    println!(
        "{:<10}{:>7}{:>7}{:>6}{:>6}{:>7}{:>7}{:>9}",
        "bench", "PMOS", "NMOS", "Cap", "Res", "Total", "nets", "sym-pairs"
    );
    for c in benchmarks::all() {
        println!(
            "{:<10}{:>7}{:>7}{:>6}{:>6}{:>7}{:>7}{:>9}",
            c.name(),
            c.count_kind(DeviceKind::Pmos),
            c.count_kind(DeviceKind::Nmos),
            c.count_kind(DeviceKind::Capacitor),
            c.count_kind(DeviceKind::Resistor),
            c.total_modules(),
            c.nets().len(),
            c.symmetric_net_pairs().len()
        );
    }
}
