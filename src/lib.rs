#![warn(missing_docs)]
//! Umbrella crate for the AnalogFold reproduction workspace.
//!
//! This crate re-exports every subsystem so that examples and integration
//! tests can use a single dependency. The actual implementation lives in the
//! `crates/` workspace members:
//!
//! * [`geom`] — geometry primitives (points, rects, directions, grids).
//! * [`tech`] — technology description (layers, design rules, parasitics).
//! * [`netlist`] — circuits, devices, nets, symmetry constraints, benchmarks.
//! * [`place`] — symmetry-aware analog placement.
//! * [`route`] — 3-D grid detailed routing with guidance hooks.
//! * [`extract`] — geometric parasitic extraction (R + C + coupling C).
//! * [`sim`] — small-signal MNA simulator and metric extraction.
//! * [`nn`] — pure-Rust autograd, MLPs, optimizers, VAE.
//! * [`analogfold`] — the paper's contribution: heterogeneous graph, 3DGNN,
//!   potential relaxation, baselines, and the end-to-end flow.
//! * [`obs`] — zero-dependency observability: spans, metrics, sinks, and the
//!   shared table formatter (`--obs-jsonl` / `--obs-report` in the CLI).
//! * [`fleet`] — coordinator/worker multi-process serving and distributed
//!   dataset generation (registration, heartbeats, rendezvous-hashed
//!   fronting, leased shard generation).
//! * [`guard`] — tail tolerance for the serve/fleet tier: end-to-end
//!   deadline propagation, per-worker circuit breakers, hedged requests,
//!   and CoDel-style adaptive admission.
//! * [`model`] — versioned model registry (content-hash ids, lineage,
//!   promote/rollback/gc), canary scoring, and the background trainer that
//!   closes the train→serve loop.
//!
//! # Quick start
//!
//! ```
//! use analogfold_suite::netlist::benchmarks;
//!
//! let ota1 = benchmarks::ota1();
//! assert_eq!(ota1.name(), "OTA1");
//! ```

pub mod cli;

pub use af_cache as cache;
pub use af_extract as extract;
pub use af_fault as fault;
pub use af_fleet as fleet;
pub use af_geom as geom;
pub use af_guard as guard;
pub use af_model as model;
pub use af_netlist as netlist;
pub use af_nn as nn;
pub use af_obs as obs;
pub use af_place as place;
pub use af_route as route;
pub use af_serve as serve;
pub use af_sim as sim;
pub use af_tech as tech;
pub use af_tensor as tensor;
pub use analogfold;
