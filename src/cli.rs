//! Argument-parsing helpers for `analogfold-cli` (kept in the library so
//! they are unit-testable without spawning the binary).

use crate::place::PlacementVariant;

/// Returns the value following `flag`, if present.
///
/// # Examples
///
/// ```
/// use analogfold_suite::cli::flag_value;
///
/// let args: Vec<String> = ["--out", "file.json"].iter().map(|s| s.to_string()).collect();
/// assert_eq!(flag_value(&args, "--out"), Some("file.json"));
/// assert_eq!(flag_value(&args, "--model"), None);
/// ```
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses the numeric value following `flag`, falling back to `default` when
/// missing or malformed.
pub fn flag_num(args: &[String], flag: &str, default: usize) -> usize {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses the float value following `flag`, falling back to `default` when
/// missing or malformed.
pub fn flag_f64(args: &[String], flag: &str, default: f64) -> f64 {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare switch is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses the `--threads N` worker-count flag. `0` (also the default when
/// the flag is absent or malformed) means "auto": the `afrt` runtime then
/// honors the `AFRT_THREADS` environment variable and finally falls back to
/// the hardware parallelism. Every thread count produces bit-identical
/// results; the flag only changes wall-clock time.
pub fn threads_flag(args: &[String]) -> usize {
    flag_num(args, "--threads", 0)
}

/// Parses the `--route-threads N` flag controlling the detailed router's
/// parallel negotiation rounds, independently of the flow-level `--threads`.
/// Defaults to `0` ("auto"): the `afrt` runtime honors `AFRT_THREADS` and
/// then the hardware parallelism. The router's determinism contract makes
/// every value produce a bit-identical layout.
pub fn route_threads_flag(args: &[String]) -> usize {
    flag_num(args, "--route-threads", 0)
}

/// Observability options parsed from `--obs-jsonl FILE` / `--obs-report`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsFlags {
    /// JSONL event-log destination (`--obs-jsonl FILE`).
    pub jsonl: Option<String>,
    /// Whether to print the span-tree report after the run (`--obs-report`).
    pub report: bool,
}

impl ObsFlags {
    /// Whether any observability output was requested.
    #[must_use]
    pub fn active(&self) -> bool {
        self.jsonl.is_some() || self.report
    }
}

/// Parses the observability flags shared by the CLI subcommands.
pub fn obs_flags(args: &[String]) -> ObsFlags {
    ObsFlags {
        jsonl: flag_value(args, "--obs-jsonl").map(str::to_string),
        report: has_flag(args, "--obs-report"),
    }
}

/// Installs the observability sinks requested by `flags`. Returns `None`
/// (recording stays disabled, zero overhead) when no flag was given.
///
/// # Errors
///
/// When the `--obs-jsonl` file cannot be created.
pub fn obs_install(flags: &ObsFlags) -> Result<Option<af_obs::ObsGuard>, String> {
    if !flags.active() {
        return Ok(None);
    }
    let mut tee = af_obs::TeeSink::new();
    if let Some(path) = &flags.jsonl {
        let sink = af_obs::JsonlSink::create(std::path::Path::new(path))
            .map_err(|e| format!("cannot create `{path}`: {e}"))?;
        tee = tee.with(Box::new(sink));
    }
    // `--obs-report` alone still needs recording on: the report renders from
    // the in-memory registry, so an empty tee suffices as the sink.
    Ok(Some(af_obs::install(std::sync::Arc::new(tee))))
}

/// Parses the caching flags shared by the `flow` and `serve` subcommands:
/// `--cache-mb N` sizes the memoization caches in MiB (falling back to
/// `default` when absent or malformed) and `--no-cache` disables caching
/// entirely, returning `0` and switching the process-wide
/// [`analogfold::set_cache_enabled`](crate::analogfold::set_cache_enabled)
/// kill switch off. Caching never changes results — cached and uncached
/// runs are bit-identical — so `--no-cache` is a debugging/benchmarking
/// aid, not a correctness knob.
pub fn cache_mb_flag(args: &[String], default: u64) -> u64 {
    if has_flag(args, "--no-cache") {
        crate::analogfold::set_cache_enabled(false);
        return 0;
    }
    flag_value(args, "--cache-mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Arms the fault-injection registry from `--fault SPEC` (optionally
/// seeded by `--fault-seed N`) and from the `AF_FAULT` / `AF_FAULT_SEED`
/// environment variables. The env is applied first, so an explicit flag
/// extends or overrides it per failpoint. Returns the number of armed
/// failpoints (`0` leaves the zero-overhead disarmed fast path in place).
///
/// # Errors
///
/// When either spec is malformed (see [`af_fault::arm_spec`] for the
/// `name:mode:prob[:max_fires]` grammar).
pub fn fault_flag(args: &[String]) -> Result<usize, String> {
    let mut armed = af_fault::arm_from_env()?;
    if let Some(spec) = flag_value(args, "--fault") {
        if let Some(seed) = flag_value(args, "--fault-seed") {
            af_fault::set_seed(
                seed.parse()
                    .map_err(|_| format!("bad --fault-seed `{seed}`"))?,
            );
        }
        armed += af_fault::arm_spec(spec).map_err(|e| format!("bad --fault spec: {e}"))?;
    }
    if armed > 0 {
        eprintln!(
            "fault injection armed: {armed} failpoint(s), seed {}",
            af_fault::seed()
        );
    }
    Ok(armed)
}

/// Parses a placement-variant positional argument (defaults to `A`).
pub fn variant_arg(args: &[String], idx: usize) -> PlacementVariant {
    args.get(idx)
        .and_then(|v| PlacementVariant::from_label(v))
        .unwrap_or(PlacementVariant::A)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_finds_pairs() {
        let args = argv(&["route", "OTA1", "--svg", "x.svg", "--def", "y.def"]);
        assert_eq!(flag_value(&args, "--svg"), Some("x.svg"));
        assert_eq!(flag_value(&args, "--def"), Some("y.def"));
        assert_eq!(flag_value(&args, "--missing"), None);
        // flag at the end without value
        let tail = argv(&["--svg"]);
        assert_eq!(flag_value(&tail, "--svg"), None);
    }

    #[test]
    fn flag_num_parses_and_defaults() {
        let args = argv(&["--samples", "42", "--epochs", "abc"]);
        assert_eq!(flag_num(&args, "--samples", 7), 42);
        assert_eq!(flag_num(&args, "--epochs", 7), 7, "malformed falls back");
        assert_eq!(flag_num(&args, "--restarts", 9), 9, "missing falls back");
    }

    #[test]
    fn flag_f64_parses_and_defaults() {
        let args = argv(&["--canary-fraction", "0.5", "--tolerance", "abc"]);
        assert_eq!(flag_f64(&args, "--canary-fraction", 0.25), 0.5);
        assert_eq!(flag_f64(&args, "--tolerance", 0.1), 0.1, "malformed");
        assert_eq!(flag_f64(&args, "--missing", 2.0), 2.0, "absent");
    }

    #[test]
    fn has_flag_exact_match() {
        let args = argv(&["--report", "--svg"]);
        assert!(has_flag(&args, "--report"));
        assert!(!has_flag(&args, "--rep"));
    }

    #[test]
    fn threads_flag_parsing() {
        assert_eq!(threads_flag(&argv(&["train", "OTA1", "--threads", "8"])), 8);
        assert_eq!(threads_flag(&argv(&["train", "OTA1"])), 0, "absent is auto");
        assert_eq!(
            threads_flag(&argv(&["--threads", "many"])),
            0,
            "malformed is auto"
        );
        assert_eq!(threads_flag(&argv(&["--threads", "0"])), 0);
    }

    #[test]
    fn route_threads_flag_parsing() {
        let args = argv(&["route", "OTA1", "A", "--route-threads", "4"]);
        assert_eq!(route_threads_flag(&args), 4);
        assert_eq!(route_threads_flag(&argv(&["route", "OTA1"])), 0, "auto");
        // `--threads` and `--route-threads` are independent knobs.
        let both = argv(&["flow", "OTA1", "--threads", "2", "--route-threads", "8"]);
        assert_eq!(threads_flag(&both), 2);
        assert_eq!(route_threads_flag(&both), 8);
    }

    #[test]
    fn obs_flags_parsing() {
        let args = argv(&["flow", "OTA1", "--obs-jsonl", "out.jsonl", "--obs-report"]);
        let f = obs_flags(&args);
        assert_eq!(f.jsonl.as_deref(), Some("out.jsonl"));
        assert!(f.report);
        assert!(f.active());
        let none = obs_flags(&argv(&["flow", "OTA1"]));
        assert_eq!(none, ObsFlags::default());
        assert!(!none.active());
    }

    #[test]
    fn cache_flag_parsing() {
        assert_eq!(
            cache_mb_flag(&argv(&["flow", "OTA1", "--cache-mb", "128"]), 64),
            128
        );
        assert_eq!(cache_mb_flag(&argv(&["flow", "OTA1"]), 64), 64, "default");
        assert_eq!(
            cache_mb_flag(&argv(&["--cache-mb", "lots"]), 32),
            32,
            "malformed falls back"
        );
        assert_eq!(
            cache_mb_flag(&argv(&["--no-cache", "--cache-mb", "128"]), 64),
            0,
            "--no-cache wins over --cache-mb"
        );
        // The kill switch flipped as a side effect; restore it so other
        // tests in this process see the default-enabled state.
        assert!(!crate::analogfold::cache_enabled());
        crate::analogfold::set_cache_enabled(true);
    }

    #[test]
    fn fault_flag_parsing() {
        // Serialize against any other registry user and disarm afterwards.
        let _guard = crate::fault::scenario();
        let armed = fault_flag(&argv(&[
            "flow",
            "OTA1",
            "--fault",
            "sim.eval:err:0.5",
            "--fault-seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(armed, 1);
        assert_eq!(crate::fault::seed(), 9);
        assert!(crate::fault::stats("sim.eval").is_some());
        assert!(fault_flag(&argv(&["--fault", "nonsense"])).is_err());
        assert!(fault_flag(&argv(&["--fault", "a:err:0.1", "--fault-seed", "x"])).is_err());
        crate::fault::disarm_all();
        assert_eq!(fault_flag(&argv(&["flow", "OTA1"])).unwrap(), 0);
    }

    #[test]
    fn variant_parsing() {
        let args = argv(&["OTA1", "b"]);
        assert_eq!(variant_arg(&args, 1), PlacementVariant::B);
        assert_eq!(variant_arg(&args, 5), PlacementVariant::A, "default");
        let bad = argv(&["OTA1", "zz"]);
        assert_eq!(variant_arg(&bad, 1), PlacementVariant::A);
    }
}
